//! Vendored stand-in for `serde_derive` (the container image has no registry
//! access). The real derives generate `Serialize`/`Deserialize` impls; this
//! repository never serializes through serde (persistence is the hand-rolled
//! text image in `damocles-meta`), so the derives expand to nothing. The
//! `serde` helper attribute (`#[serde(skip)]` etc.) is accepted and ignored.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

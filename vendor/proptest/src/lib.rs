//! Vendored generative-testing harness exposing the slice of the `proptest`
//! API this workspace uses (the container image has no registry access).
//!
//! Strategies here are pure generators driven by a deterministic splitmix64
//! stream seeded from the test name: every `proptest!` test runs its body
//! over `cases` generated inputs and panics with the failing input's case
//! number on the first violated `prop_assert!`. Shrinking, persistence and
//! configurable runners are deliberately not implemented — a failing case is
//! reproduced exactly by re-running the test, which is what CI needs.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

pub mod test_runner {
    //! The runner types the `proptest!` macro expands against.

    /// Deterministic 64-bit generator stream (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a stream; the macro hashes the test name into `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// The next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (`bound` must be non-zero).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// A failed test case, carried out of the body by `prop_assert!`.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Records a failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// FNV-1a hash used to derive per-test seeds from test names.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01B3);
        }
        hash
    }
}

use test_runner::TestRng;

/// Per-block configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------
// The Strategy trait and combinators
// ---------------------------------------------------------------------

/// A value generator. The combinator methods mirror proptest's names.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred` (regenerating, with a bounded
    /// number of attempts).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erases the strategy type behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: `f` receives the strategy for the previous
    /// depth and returns the composite layer. Leaves stay reachable at every
    /// depth. `_desired_size`/`_expected_branch` are accepted for API
    /// compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = BoxedStrategy(Rc::new(self));
        let mut current = leaf.clone();
        for _ in 0..depth {
            let composite = f(current).boxed();
            current = Union {
                arms: vec![leaf.clone(), composite],
            }
            .boxed();
        }
        current
    }
}

/// A clonable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.reason);
    }
}

/// Uniform choice between strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over already-boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// Tuples of strategies generate tuples of values.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// A Vec of strategies generates a Vec of values, element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// String literals are regex-subset strategies generating matching strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate_matching(self, rng)
    }
}

mod regex {
    //! Generator for the regex subset the workspace's patterns use:
    //! character classes with ranges and escapes, `\PC` (printable), and
    //! the `{m}`/`{m,n}`/`*`/`+`/`?` quantifiers over single atoms.

    use super::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        /// Inclusive character ranges to draw from, weighted by width.
        Class(Vec<(char, char)>),
        /// A literal character.
        Lit(char),
    }

    fn printable() -> Vec<(char, char)> {
        vec![(' ', '~'), ('à', 'ö')]
    }

    fn escape_char(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated character class");
            match c {
                ']' => break,
                '\\' => {
                    let e = escape_char(chars.next().expect("trailing backslash in class"));
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    pending = Some(e);
                }
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let start = pending.take().expect("checked above");
                    let mut end = chars.next().expect("unterminated range");
                    if end == '\\' {
                        end = escape_char(chars.next().expect("trailing backslash in class"));
                    }
                    ranges.push((start, end));
                }
                other => {
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    pending = Some(other);
                }
            }
        }
        if let Some(p) = pending {
            ranges.push((p, p));
        }
        assert!(!ranges.is_empty(), "empty character class");
        ranges
    }

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => {
                    let e = chars.next().expect("trailing backslash");
                    if e == 'P' || e == 'p' {
                        // \PC / \pC — treat every unicode category query as
                        // "printable", which the workspace's patterns use it
                        // for (robustness fuzzing).
                        chars.next();
                        Atom::Class(printable())
                    } else {
                        Atom::Lit(escape_char(e))
                    }
                }
                other => Atom::Lit(other),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("bad quantifier"),
                            hi.parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = spec.parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            atoms.push((atom, min, max));
        }
        atoms
    }

    fn draw(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Lit(c) => *c,
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(a, b)| (b as u64).saturating_sub(a as u64) + 1)
                    .sum();
                let mut pick = rng.below(total);
                for &(a, b) in ranges {
                    let width = (b as u64) - (a as u64) + 1;
                    if pick < width {
                        return char::from_u32(a as u32 + pick as u32).unwrap_or(a);
                    }
                    pick -= width;
                }
                ranges[0].0
            }
        }
    }

    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let count = if max > min {
                *min + rng.below((*max - *min + 1) as u64) as usize
            } else {
                *min
            };
            for _ in 0..count {
                out.push(draw(atom, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collection and option strategies
// ---------------------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::test_runner::TestRng;
    use super::Strategy;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A size specification: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    impl SizeRange {
        fn draw(self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; bounded retries top it back up.
            for _ in 0..target * 4 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            if out.len() < self.size.min {
                for _ in 0..1000 {
                    if out.len() >= self.size.min {
                        break;
                    }
                    out.insert(self.element.generate(rng));
                }
            }
            out
        }
    }

    /// `BTreeSet`s of `size` distinct elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::test_runner::TestRng;
    use super::Strategy;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Some` values from `inner` (3 in 4), otherwise `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Marker so `BTreeSet` imports through the prelude keep working.
pub type _BTreeSetReexport = BTreeSet<()>;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares generative tests over named strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($config) $($rest)*);
    };
    (@block ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::test_runner::seed_from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut rng = $crate::test_runner::TestRng::new(seed);
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )*
                    let outcome = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{}` == `{}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{}` != `{}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategy expressions with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_shapes() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = Strategy::generate(&"[a-z]{1,5}", &mut rng);
            assert!((1..=5).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections_compose(
            n in 1usize..10,
            bytes in crate::collection::vec(any::<u8>(), 4),
            opt in crate::option::of(0i64..5),
            pick in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(bytes.len(), 4);
            if let Some(v) = opt {
                prop_assert!((0..5).contains(&v));
            }
            prop_assert!((1..5).contains(&pick));
        }

        #[test]
        fn mapped_and_filtered_strategies_run(
            word in "[a-z]{1,6}".prop_filter("nonempty", |s| !s.is_empty()),
            doubled in (0u32..50).prop_map(|n| n * 2),
        ) {
            prop_assert!(word.len() <= 6);
            prop_assert_eq!(doubled % 2, 0);
        }
    }
}

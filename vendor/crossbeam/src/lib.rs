//! Vendored subset of `crossbeam` (the container image has no registry
//! access). Only `crossbeam::channel::{unbounded, Sender, Receiver}` is
//! used by this workspace — multi-producer wrapper threads feeding the
//! single-consumer event queue — which `std::sync::mpsc` models exactly,
//! so this facade wraps the standard channel with crossbeam's names.

/// MPMC-flavoured channel API over `std::sync::mpsc`.
pub mod channel {
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    /// The sending half; cheap to clone across producer threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                depth: Arc::clone(&self.depth),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Count before the send so a consumer that receives the
            // message can never observe a depth that excludes it.
            self.depth.fetch_add(1, Ordering::SeqCst);
            self.inner.send(value).map_err(|mpsc::SendError(v)| {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                SendError(v)
            })
        }
    }

    /// The receiving half (single consumer).
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let got = self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })?;
            self.depth.fetch_sub(1, Ordering::SeqCst);
            Ok(got)
        }

        /// Blocking receive; `None` once all senders are gone.
        pub fn recv(&self) -> Option<T> {
            let got = self.inner.recv().ok()?;
            self.depth.fetch_sub(1, Ordering::SeqCst);
            Some(got)
        }

        /// Receive with a deadline — for consumers that interleave
        /// channel work with background polling (the command loop pumps
        /// finished tool invocations while idle).
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let got = self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })?;
            self.depth.fetch_sub(1, Ordering::SeqCst);
            Ok(got)
        }

        /// Messages sent but not yet received — the queue depth. Like
        /// crossbeam's, the value is a racy snapshot: producers may be
        /// mid-send, so use it as a hint (batch sizing), not an invariant.
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::SeqCst)
        }

        /// Whether [`Receiver::len`] is zero right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: tx,
                depth: Arc::clone(&depth),
            },
            Receiver { inner: rx, depth },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_and_try_recv() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::unbounded();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(100)),
            Ok(9)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn clone_across_threads() {
        let (tx, rx) = channel::unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.try_recv() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}

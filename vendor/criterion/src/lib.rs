//! Vendored micro-benchmark harness exposing the slice of the `criterion`
//! 0.5 API this workspace uses (the container image has no registry access).
//!
//! Unlike the other vendor stubs this one really measures: each benchmark is
//! warmed up, an iteration count is calibrated so one sample lasts roughly
//! `measurement_time / sample_size`, and the per-iteration times of all
//! samples are reported (median and mean, in nanoseconds). Results are
//! printed to stdout and, when the `BENCH_JSON` environment variable names a
//! file, appended to it as JSON lines — that file is how the repository's
//! recorded bench summaries (e.g. `BENCH_pr1.json`) are produced.
//!
//! No statistical outlier analysis, plotting, or baseline comparison is
//! attempted; this is a stopwatch with criterion's entry points.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted and ignored (every batch
/// re-runs the setup closure outside the timed section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Declared throughput of one benchmark, echoed in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as a name.
pub trait IntoBenchmarkId {
    /// The rendered `group/label` suffix.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    warm_up: Duration,
    measurement: Duration,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, recording per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: count how many iterations fit.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget = self.measurement.as_nanos() as f64 / self.sample_count as f64;
        let iters_per_sample = ((budget / per_iter).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / iters_per_sample as f64);
        }
    }

    /// Times `routine` on fresh inputs produced (outside the timed section)
    /// by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_spent = Duration::ZERO;
        while warm_spent < self.warm_up {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            warm_spent += t.elapsed();
            warm_iters += 1;
            if warm_start.elapsed() > self.warm_up * 20 {
                break; // setup dominates; stop warming
            }
        }
        let per_iter = (warm_spent.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let budget = self.measurement.as_nanos() as f64 / self.sample_count as f64;
        let iters_per_sample = ((budget / per_iter).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let mut nanos = 0f64;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                nanos += t.elapsed().as_nanos() as f64;
            }
            self.samples.push(nanos / iters_per_sample as f64);
        }
    }
}

/// The harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_count: 20,
        }
    }
}

impl Criterion {
    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up/calibration budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets how many samples are taken.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    /// Accepted for API compatibility; command-line configuration is not
    /// implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        run_one(self, &label, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_count = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(self.criterion, &label, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        warm_up: criterion.warm_up,
        measurement: criterion.measurement,
        sample_count: criterion.sample_count,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<56} (no measurement)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 * 1e9 / median),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 * 1e9 / median),
        None => String::new(),
    };
    println!("{label:<56} median {median:>12.1} ns/iter  mean {mean:>12.1} ns/iter{rate}");
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                file,
                "{{\"id\":\"{label}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{}}}",
                sorted.len()
            );
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(3u64.pow(7)));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_labels_compose() {
        let id = BenchmarkId::new("strict", 10);
        assert_eq!(id.label, "strict/10");
        let id = BenchmarkId::from_parameter(99);
        assert_eq!(id.label, "99");
    }
}

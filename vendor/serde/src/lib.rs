//! Vendored facade for the parts of `serde` this workspace names (the
//! container image has no registry access). The repository derives
//! `Serialize`/`Deserialize` on meta-database types for API compatibility but
//! performs all persistence through its own text image, so the traits here
//! are empty markers and the derives (re-exported from the vendored
//! `serde_derive`) expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

//! Vendored subset of `rand` (the container image has no registry access).
//! Implements the slice of the 0.8 API this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges and
//! `Rng::gen_bool` — on top of the splitmix64 generator. Deterministic for a
//! given seed, which is all the workload generators and fault planners need;
//! it makes no cryptographic claims.

use std::ops::Range;

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u128;
                let draw = (rng() as u128) % span;
                self.start + draw as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, as the real implementation uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}

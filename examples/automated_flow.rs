//! Fully automated design flow (Section 3.3 tool scheduling): one HDL
//! check-in drives synthesis, netlisting, simulation, layout, DRC and LVS —
//! entirely through BluePrint `exec` rules and the simulated tool chain.
//!
//! Run with: `cargo run --example automated_flow`

use damocles::prelude::*;
use damocles::tools::design_data;

/// EDTC-shaped blueprint with full automation: each stage's `ckin` invokes
/// the next tool.
const AUTOMATED: &str = r#"
blueprint automated_edtc

view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview

view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
    when ckin do exec synthesizer "$oid" done
endview

view schematic
    property nl_sim_res default bad
    let state = ($nl_sim_res == good) and ($uptodate == true)
    link_from HDL_model move propagates outofdate type derived
    use_link move propagates outofdate
    when nl_sim do nl_sim_res = $arg done
    when ckin do exec netlister "$oid"; exec layout_gen "$oid" done
endview

view netlist
    property sim_result default bad
    link_from schematic move propagates nl_sim, outofdate type derived
    when nl_sim do sim_result = $arg done
    when ckin do exec simulator "$oid" done
endview

view layout
    property drc_result default bad
    property lvs_result default not_equiv
    let state = ($drc_result == good) and ($lvs_result == is_equiv) and ($uptodate == true)
    link_from schematic move propagates lvs, outofdate type equivalence
    when drc do drc_result = $arg done
    when lvs do lvs_result = $arg done
    when ckin do exec drc "$oid"; exec lvs "$oid" done
endview

endblueprint
"#;

fn main() -> Result<(), EngineError> {
    let bp = damocles::core::parse(AUTOMATED).expect("valid blueprint");
    let executor = ToolExecutor::standard(FaultPlan::never());
    let mut server = ProjectServer::with_executor(bp, executor)?;

    // One designer action: check in the CPU HDL model (with a REG
    // submodule). Everything else happens automatically.
    println!("checking in CPU.HDL_model (one designer action)…\n");
    server.checkin(
        "CPU",
        "HDL_model",
        "yves",
        design_data::hdl_source("CPU", 1, &["REG"], false),
    )?;
    let report = server.process_all()?;

    println!(
        "cascade complete: {} events processed, {} rule deliveries, {} tool runs\n",
        report.events, report.deliveries, report.scripts
    );

    println!("tool runs (in dispatch order):");
    for run in server.executor().runs() {
        println!(
            "  {:12} {:28} -> {}",
            run.script,
            run.args.join(" "),
            run.status
        );
    }

    println!("\nresulting design database:");
    let mut oids: Vec<_> = server
        .db()
        .iter_oids()
        .map(|(_, e)| e.oid.clone())
        .collect();
    oids.sort();
    for oid in &oids {
        let props: Vec<String> = {
            let id = server.resolve(oid)?;
            server
                .db()
                .props(id)
                .unwrap()
                .iter()
                .filter(|(n, _)| *n != "owner")
                .map(|(n, v)| format!("{n}={v}"))
                .collect()
        };
        println!("  {oid:24} {}", props.join(" "));
    }

    // The netlist simulated clean, so the schematic's continuous assignment
    // should have gone true.
    let cpu_sch = Oid::new("CPU", "schematic", 1);
    println!(
        "\nCPU schematic state (nl_sim good and uptodate): {}",
        server.prop(&cpu_sch, "state").unwrap()
    );

    // Now check in a *buggy* HDL model: the whole cascade reruns and the
    // schematic's state turns false because simulation fails downstream.
    println!("\nchecking in a buggy CPU.HDL_model v2…");
    server.checkin(
        "CPU",
        "HDL_model",
        "yves",
        design_data::hdl_source("CPU", 2, &["REG"], true),
    )?;
    server.process_all()?;
    let cpu_sch2 = Oid::new("CPU", "schematic", 2);
    println!(
        "CPU schematic v2: nl_sim_res = {}, state = {}",
        server.prop(&cpu_sch2, "nl_sim_res").unwrap(),
        server.prop(&cpu_sch2, "state").unwrap()
    );

    Ok(())
}

//! A deeper, modern-shaped flow on the same 1995 machinery: the nine-view
//! ASIC sign-off pipeline from `damocles_flows::asic`, driven to tape-out
//! with milestone tasks, then invalidated by a late spec change.
//!
//! Run with: `cargo run --example asic_signoff`

use damocles::core::engine::tasks::{run_plan, Condition, DesignTask};
use damocles::flows::asic::{asic_blueprint, ASIC_CHAIN};
use damocles::flows::metrics;
use damocles::prelude::*;

fn main() -> Result<(), EngineError> {
    let mut server = ProjectServer::new(asic_blueprint())?;

    // The standard-cell library arrives first (its ckin must precede the
    // data that depends on it, or the FIFO queue will re-invalidate them).
    let lib = server.checkin("lib7nm", "stdcell_lib", "vendor", b"lib-v1".to_vec())?;
    server.process_all()?;

    // Build the chain for one SoC block, linking each stage to the previous.
    let mut prev: Option<Oid> = None;
    for view in ASIC_CHAIN {
        let oid = server.checkin("soc", view, "team", format!("{view}-v1").into_bytes())?;
        if let Some(p) = &prev {
            server.connect_oids(p, &oid)?;
        }
        prev = Some(oid);
    }
    // The netlist depends on the library through a depend_on link.
    let net = Oid::new("soc", "netlist", 1);
    server.connect_oids(&lib, &net)?;
    server.process_all()?;

    // Milestone plan to sign-off.
    let plan = vec![
        DesignTask::new("rtl-clean", "lint + simulation green on RTL")
            .post("postEvent lint up soc,rtl,1 \"clean\"", "lint-wrapper")
            .post("postEvent rtl_sim up soc,rtl,1 \"good\"", "sim-wrapper")
            .promises(Condition::truthy("soc", "rtl", "state")),
        DesignTask::new("synth-qor", "synthesis equivalence proven")
            .requires(Condition::truthy("soc", "rtl", "state"))
            .post("postEvent synth up soc,netlist,1 \"met\"", "synth-wrapper")
            .post("postEvent lec up soc,netlist,1 \"pass\"", "lec-wrapper")
            .promises(Condition::truthy("soc", "netlist", "state")),
        DesignTask::new("route-signoff", "timing, power and DRC all green")
            .requires(Condition::truthy("soc", "netlist", "state"))
            .post("postEvent sta up soc,routed,1 \"met\"", "sta-wrapper")
            .post(
                "postEvent power_rpt up soc,routed,1 \"ok\"",
                "power-wrapper",
            )
            .post("postEvent drc up soc,routed,1 \"clean\"", "drc-wrapper")
            .promises(Condition::truthy("soc", "routed", "signoff")),
        DesignTask::new("tapeout", "stream GDS once routing is signed off")
            .requires(Condition::truthy("soc", "routed", "signoff"))
            .post("postEvent signoff_ok up soc,gds,1", "release-manager")
            .promises(Condition::truthy("soc", "gds", "tapeout_ok")),
    ];
    let reports = run_plan(&mut server, &plan)?;
    println!("sign-off plan:");
    for r in &reports {
        println!("  [{}] {}", r.status, r.name);
    }

    // State of the whole pipeline.
    let rows: Vec<Vec<String>> = ASIC_CHAIN
        .iter()
        .map(|view| {
            let oid = Oid::new("soc", *view, 1);
            vec![
                view.to_string(),
                server
                    .prop(&oid, "uptodate")
                    .map(|v| v.as_atom())
                    .unwrap_or_default(),
                server
                    .prop(&oid, "signoff")
                    .or_else(|| server.prop(&oid, "state"))
                    .or_else(|| server.prop(&oid, "tapeout_ok"))
                    .map(|v| v.as_atom())
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "\n{}",
        metrics::table(&["view", "uptodate", "state/signoff"], &rows)
    );

    // A late spec change: everything downstream goes stale instantly.
    println!("late spec change arrives…");
    server.checkin("soc", "spec", "architect", b"spec-v2".to_vec())?;
    server.process_all()?;
    let stale = server.query().out_of_date("uptodate");
    println!(
        "{} of {} pipeline stages invalidated:",
        stale.len(),
        ASIC_CHAIN.len()
    );
    for id in stale {
        println!("  {}", server.db().oid(id).unwrap());
    }
    // And the library release invalidates the netlist path independently.
    server.checkin("lib7nm", "stdcell_lib", "vendor", b"lib-v2".to_vec())?;
    server.process_all()?;
    println!(
        "\nafter stdcell_lib v2: netlist uptodate = {}",
        server.prop(&net, "uptodate").unwrap()
    );
    Ok(())
}

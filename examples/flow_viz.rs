//! Visualizing the design flow and the live design state as Graphviz DOT
//! (the paper's Section 5 "graphical interface" future work).
//!
//! Run with: `cargo run --example flow_viz > flow.dot && dot -Tsvg flow.dot`
//! (the example prints the flow graph first, then the state graph, separated
//! by a comment line — split them if feeding `dot` directly).

use damocles::flows::{edtc_blueprint, viz};
use damocles::prelude::*;

fn main() -> Result<(), EngineError> {
    // The Fig. 5 representation: views, links, and the events they carry.
    let bp = edtc_blueprint();
    println!("// ---- Fig. 5: the BluePrint flow graph ----");
    print!("{}", viz::blueprint_to_dot(&bp));

    // A live design mid-change: the CPU model moved on, derived data is red.
    let mut server = ProjectServer::new(bp)?;
    let hdl = server.checkin("CPU", "HDL_model", "yves", b"m1".to_vec())?;
    let sch = server.checkin("CPU", "schematic", "synth", b"s1".to_vec())?;
    let reg = server.checkin("REG", "schematic", "synth", b"r1".to_vec())?;
    let net = server.checkin("CPU", "netlist", "tool", b"n1".to_vec())?;
    server.connect_oids(&hdl, &sch)?;
    server.connect_oids(&sch, &reg)?;
    server.connect_oids(&sch, &net)?;
    server.process_all()?;
    server.checkin("CPU", "HDL_model", "yves", b"m2".to_vec())?;
    server.process_all()?;

    println!("// ---- design state relative to the flow ----");
    print!("{}", viz::db_to_dot(server.db(), "uptodate"));
    Ok(())
}

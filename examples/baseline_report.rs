//! Section 4 comparison: per-change tracking work of the event-driven
//! BluePrint vs activity-driven (NELSIS-style), polling (make-style) and
//! manual baselines, across design sizes.
//!
//! This prints the table EXPERIMENTS.md records as experiment BASE.
//!
//! Run with: `cargo run --release --example baseline_report`

use damocles::flows::baseline::{
    ChangeTracker, DamoclesTracker, DepGraph, EagerTracker, ManualTracker, PollingTracker,
};
use damocles::flows::{metrics, DesignSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let shapes = [
        (
            "small",
            DesignSpec {
                stages: 3,
                blocks: 8,
                fanout: 2,
            },
        ),
        (
            "medium",
            DesignSpec {
                stages: 5,
                blocks: 40,
                fanout: 3,
            },
        ),
        (
            "large",
            DesignSpec {
                stages: 6,
                blocks: 170,
                fanout: 3,
            },
        ),
    ];
    let checkins = 60;

    println!(
        "per-change tracking work (graph units), {checkins} random check-ins,\n\
         one out-of-date query after each change:\n"
    );

    for (label, spec) in shapes {
        let graph = DepGraph::from_spec(&spec);
        let mut trackers: Vec<Box<dyn ChangeTracker>> = vec![
            Box::new(DamoclesTracker::new(&spec)),
            Box::new(EagerTracker::new(graph.clone())),
            Box::new(PollingTracker::new(graph.clone())),
            Box::new(ManualTracker::new(graph.clone())),
        ];

        let mut rng = StdRng::seed_from_u64(42);
        let stream: Vec<usize> = (0..checkins)
            .map(|_| rng.gen_range(0..graph.len()))
            .collect();

        let mut rows = Vec::new();
        let mut agreement: Option<std::collections::BTreeSet<usize>> = None;
        for tracker in &mut trackers {
            let ((), wall) = metrics::timed(|| {
                for &node in &stream {
                    tracker.on_checkin(node);
                    let stale = tracker.out_of_date();
                    let _ = &stale;
                }
            });
            // Cross-validate the final answer across trackers.
            let final_set = tracker.out_of_date();
            match &agreement {
                None => agreement = Some(final_set),
                Some(expected) => assert_eq!(
                    *expected,
                    final_set,
                    "{} disagrees on the out-of-date set",
                    tracker.name()
                ),
            }
            let work = tracker.work();
            rows.push(vec![
                tracker.name().to_string(),
                (work.checkin_units / checkins as u64).to_string(),
                (work.query_units / checkins as u64).to_string(),
                metrics::fmt_duration(wall),
            ]);
        }

        println!(
            "--- {label}: {} OIDs, {} dependency edges ---",
            graph.len(),
            graph.edge_count()
        );
        print!(
            "{}",
            metrics::table(
                &[
                    "tracker",
                    "checkin units/op",
                    "query units/op",
                    "wall (total)"
                ],
                &rows,
            )
        );
        println!("(all four trackers agree on every out-of-date set)\n");
    }

    println!(
        "shape to expect: DAMOCLES check-in work tracks the affected subgraph\n\
         (roughly constant w.r.t. design size for leaf-ish changes), while the\n\
         eager baseline pays nodes+edges on every change and polling pays it on\n\
         every query."
    );
}

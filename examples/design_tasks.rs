//! Design tasks (the paper's Section 5 future work): a milestone-level plan
//! over the EDTC flow, with precondition gating and postcondition
//! verification.
//!
//! Run with: `cargo run --example design_tasks`

use damocles::core::engine::tasks::{run_plan, Condition, DesignTask};
use damocles::flows::edtc_blueprint;
use damocles::prelude::*;

fn main() -> Result<(), EngineError> {
    let mut server = ProjectServer::new(edtc_blueprint())?;

    let plan = vec![
        DesignTask::new("model", "write the CPU HDL model and simulate it clean")
            .checkin("CPU", "HDL_model", "yves", b"module cpu; endmodule")
            .post(
                "postEvent hdl_sim up CPU,HDL_model,1 \"good\"",
                "sim-wrapper",
            )
            .promises(Condition::equals("CPU", "HDL_model", "sim_result", "good")),
        DesignTask::new(
            "synthesis",
            "synthesize schematics from the validated model",
        )
        .requires(Condition::equals("CPU", "HDL_model", "sim_result", "good"))
        .checkin("CPU", "schematic", "synth", b"cpu schematic")
        .checkin("REG", "schematic", "synth", b"reg schematic")
        .connect(("CPU", "HDL_model"), ("CPU", "schematic"))
        .connect(("CPU", "schematic"), ("REG", "schematic"))
        .promises(Condition::truthy("CPU", "schematic", "uptodate"))
        .promises(Condition::truthy("REG", "schematic", "uptodate")),
        DesignTask::new("netlist-sim", "netlist simulation signs off the schematic")
            .requires(Condition::exists("CPU", "schematic"))
            .post(
                "postEvent nl_sim up CPU,schematic,1 \"good\"",
                "sim-wrapper",
            )
            .promises(Condition::equals("CPU", "schematic", "nl_sim_res", "good")),
        DesignTask::new("layout-signoff", "DRC and LVS must both pass")
            .requires(Condition::equals("CPU", "schematic", "nl_sim_res", "good"))
            .checkin("CPU", "layout", "mask", b"cpu layout")
            .connect(("CPU", "schematic"), ("CPU", "layout"))
            .post("postEvent drc up CPU,layout,1 \"good\"", "drc-wrapper")
            .post("postEvent lvs up CPU,layout,1 \"is_equiv\"", "lvs-wrapper")
            .promises(Condition::truthy("CPU", "layout", "state")),
    ];

    let reports = run_plan(&mut server, &plan)?;
    println!("milestone plan over the EDTC flow:\n");
    for report in &reports {
        println!(
            "  [{}] {:16} ({} events, {} deliveries)",
            report.status, report.name, report.process.events, report.process.deliveries
        );
        for failure in report
            .failed_preconditions
            .iter()
            .chain(&report.failed_postconditions)
        {
            println!("        blocked/failed on: {failure}");
        }
    }

    // A task whose precondition no longer holds gets blocked, not run: a new
    // HDL check-in invalidates everything first.
    println!("\na late HDL change arrives…");
    server.checkin("CPU", "HDL_model", "yves", b"module cpu; v2".to_vec())?;
    server.process_all()?;
    let tapeout = DesignTask::new("tapeout", "stream out GDS")
        .requires(Condition::truthy("CPU", "layout", "uptodate"))
        .requires(Condition::truthy("CPU", "layout", "state"))
        .checkin("CPU", "layout", "mask", b"gds");
    let report = damocles::core::engine::tasks::run_task(&mut server, &tapeout)?;
    println!("  [{}] {}", report.status, report.name);
    for failure in &report.failed_preconditions {
        println!("        blocked on: {failure}");
    }
    Ok(())
}

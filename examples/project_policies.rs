//! Project policies: loosened vs strict blueprints per project phase, and
//! frozen views at sign-off (Sections 3.2 and the paper's title claim).
//!
//! "Different BluePrints can be defined for each project, or for each phase
//! of a project… early in the design cycle, when the data has not yet been
//! validated and changes occur very often, the BluePrint can be 'loosened'
//! thereby limiting change propagation."
//!
//! Run with: `cargo run --example project_policies`

use damocles::flows::{generator, metrics, DesignSpec};
use damocles::prelude::*;

fn churn(server: &mut ProjectServer, spec: &DesignSpec, checkins: usize) -> ProcessReport {
    let mut total = ProcessReport::default();
    for i in 0..checkins {
        let block = DesignSpec::block_name(i % spec.blocks);
        let payload = format!("{block}:churn{i}").into_bytes();
        server
            .checkin(&block, &DesignSpec::view_name(0), "designer", payload)
            .expect("checkin");
        let r = server.process_all().expect("process");
        total = ProcessReport {
            events: total.events + r.events,
            deliveries: total.deliveries + r.deliveries,
            scripts: total.scripts + r.scripts,
            emitted: total.emitted + r.emitted,
        };
    }
    total
}

fn main() -> Result<(), EngineError> {
    let spec = DesignSpec {
        stages: 5,
        blocks: 8,
        fanout: 2,
    };

    // --- Phase 1: early design, loosened blueprint -----------------------
    // Propagation disabled: the same links exist, but carry nothing.
    let mut early = ProjectServer::from_source(&spec.blueprint_source(false))?;
    generator::populate(&mut early, &spec)?;
    early.reset_audit();
    let early_report = churn(&mut early, &spec, 20);

    // --- Phase 2: stabilization, strict blueprint ------------------------
    let mut strict = ProjectServer::from_source(&spec.blueprint_source(true))?;
    generator::populate(&mut strict, &spec)?;
    strict.reset_audit();
    let strict_report = churn(&mut strict, &spec, 20);

    println!(
        "20 root check-ins on a {}-stage, {}-block design:\n",
        spec.stages, spec.blocks
    );
    print!(
        "{}",
        metrics::table(
            &["phase", "events", "rule deliveries", "propagations"],
            &[
                vec![
                    "early (loosened)".into(),
                    early_report.events.to_string(),
                    early_report.deliveries.to_string(),
                    early.audit().summary().propagations.to_string(),
                ],
                vec![
                    "stabilization (strict)".into(),
                    strict_report.events.to_string(),
                    strict_report.deliveries.to_string(),
                    strict.audit().summary().propagations.to_string(),
                ],
            ],
        )
    );
    println!(
        "\nloosening the BluePrint cut propagation work by {:.0}x\n",
        strict.audit().summary().propagations.max(1) as f64
            / early.audit().summary().propagations.max(1) as f64
    );

    // --- Phase 3: sign-off — re-initialize the BluePrint and freeze views.
    // The same server can swap rule sets mid-project ("re-initializing the
    // BluePrint mechanism"): move the strict server into sign-off.
    strict
        .policy_mut()
        .frozen_views
        .insert(DesignSpec::view_name(0).clone());
    match strict.checkin(
        "blk0",
        &DesignSpec::view_name(0),
        "latecomer",
        b"oops".to_vec(),
    ) {
        Err(e) => println!("sign-off policy enforced: {e}"),
        Ok(_) => println!("BUG: frozen view accepted a check-in"),
    }

    // Check-out discipline is also enforced.
    strict.checkout("blk1", &DesignSpec::view_name(1), "alice")?;
    match strict.checkout("blk1", &DesignSpec::view_name(1), "bob") {
        Err(e) => println!("checkout conflict surfaced:   {e}"),
        Ok(()) => println!("BUG: double checkout accepted"),
    }

    Ok(())
}

//! The Section 3.4 walkthrough, step by step, with the project state printed
//! after every designer action.
//!
//! "A group of designers starts out by writing an HDL model for their new
//! design. The top block name is CPU…"
//!
//! Run with: `cargo run --example edtc_walkthrough`

use damocles::flows::{edtc_blueprint, metrics};
use damocles::prelude::*;

fn print_state(server: &ProjectServer<RecordingExecutor>, step: &str) {
    println!("\n=== {step} ===");
    let mut rows = Vec::new();
    let mut ids: Vec<_> = server
        .db()
        .iter_oids()
        .map(|(id, e)| (e.oid.clone(), id))
        .collect();
    ids.sort();
    for (oid, id) in ids {
        let props = server.db().props(id).expect("live");
        let summary: Vec<String> = props
            .iter()
            .filter(|(name, _)| *name != "owner")
            .map(|(name, value)| format!("{name}={value}"))
            .collect();
        rows.push(vec![oid.to_string(), summary.join(" ")]);
    }
    print!("{}", metrics::table(&["OID", "properties"], &rows));
}

fn main() -> Result<(), EngineError> {
    let bp = edtc_blueprint();
    let mut server = ProjectServer::with_executor(bp, RecordingExecutor::new())?;

    // 1. "They create an OID <CPU.HDL_model.1>."
    let hdl1 = server.checkin("CPU", "HDL_model", "designers", b"module cpu; BUG".to_vec())?;
    server.process_all()?;

    // 2. "They then simulate the model and get a negative result."
    server.post_line(&format!("postEvent hdl_sim up {hdl1} \"4 errors\""), "sim")?;
    server.process_all()?;
    print_state(&server, "after first simulation (negative result)");

    // 3. "The designers then modify their model and save it as a new version
    //    <CPU.HDL_model.2>. They run the simulation again and this time get
    //    a good result."
    let hdl2 = server.checkin(
        "CPU",
        "HDL_model",
        "designers",
        b"module cpu; fixed".to_vec(),
    )?;
    server.process_all()?;
    server.post_line(&format!("postEvent hdl_sim up {hdl2} \"good\""), "sim")?;
    server.process_all()?;
    print_state(&server, "after fix + second simulation (good)");

    // 4. "They then synthesize the design from their model. This creates
    //    OIDs <CPU.schematic.1> and <REG.schematic.1>."
    let cpu_sch = server.checkin("CPU", "schematic", "synthesis", b"cpu schematic".to_vec())?;
    let reg_sch = server.checkin("REG", "schematic", "synthesis", b"reg schematic".to_vec())?;
    server.connect_oids(&hdl2, &cpu_sch)?;
    server.connect_oids(&cpu_sch, &reg_sch)?; // the hierarchical use link
    server.process_all()?;
    print_state(&server, "after synthesis (schematics created)");

    // The schematic ckin rule fired the netlister automatically:
    println!(
        "\nnetlister invocations so far: {:?}",
        server
            .executor()
            .invocations_of("netlister")
            .iter()
            .map(|i| i.args.join(" "))
            .collect::<Vec<_>>()
    );

    // 5. "Now the designers look at their CPU schematic and decide to change
    //    part of the design so they modify their HDL model thereby creating
    //    a new OID <CPU.HDL_model.3>. … when they check in their new model,
    //    the ckin event is used to post an outofdate event to all the
    //    derived views."
    server.checkin("CPU", "HDL_model", "designers", b"module cpu; v3".to_vec())?;
    server.process_all()?;
    print_state(
        &server,
        "after <CPU.HDL_model.3> check-in (outofdate cascade)",
    );

    println!(
        "\nCPU schematic uptodate: {}   REG schematic uptodate: {}",
        server.prop(&cpu_sch, "uptodate").unwrap(),
        server.prop(&reg_sch, "uptodate").unwrap(),
    );

    // 6. Designers ask: what still needs to be modified?
    let stale = server.query().out_of_date("uptodate");
    println!("\nwork remaining before the project is consistent again:");
    for id in stale {
        println!("  {}", server.db().oid(id).unwrap());
    }

    Ok(())
}

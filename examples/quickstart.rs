//! Quickstart: initialize a BluePrint, track a tiny design, query its state.
//!
//! Run with: `cargo run --example quickstart`

use damocles::prelude::*;

fn main() -> Result<(), EngineError> {
    // The project administrator writes the BluePrint as an ASCII rule file
    // (Section 3.2). This one tracks two views with the paper's standard
    // uptodate/outofdate discipline.
    let mut server = ProjectServer::from_source(
        r#"
        blueprint quickstart
        view default
            property uptodate default true
            when ckin do uptodate = true; post outofdate down done
            when outofdate do uptodate = false done
        endview
        view HDL_model
            property sim_result default bad
            when hdl_sim do sim_result = $arg done
        endview
        view schematic
            let state = ($sim_ok == true) and ($uptodate == true)
            property sim_ok default false
            link_from HDL_model move propagates outofdate type derived
            when nl_sim do sim_ok = $arg done
        endview
        endblueprint
        "#,
    )?;

    // Designers check design data in; each check-in creates the next OID
    // version, applies template rules and queues a `ckin` event.
    let hdl = server.checkin(
        "cpu",
        "HDL_model",
        "yves",
        b"module cpu; endmodule".to_vec(),
    )?;
    let sch = server.checkin("cpu", "schematic", "yves", b"cell cpu".to_vec())?;
    // The synthesis activity relates the two views; the link template fills
    // in the PROPAGATE set.
    server.connect_oids(&hdl, &sch)?;
    server.process_all()?;
    println!("created {hdl} and {sch}, both tracked and up to date");

    // A simulation wrapper posts its verdict over the wire format of §3.1.
    server.post_line(
        &format!("postEvent hdl_sim up {hdl} \"good\""),
        "sim-wrapper",
    )?;
    server.process_all()?;
    println!(
        "hdl_sim result recorded: sim_result = {}",
        server.prop(&hdl, "sim_result").unwrap()
    );

    // The designers modify the model: checking in version 2 invalidates the
    // derived schematic through the outofdate propagation.
    server.checkin(
        "cpu",
        "HDL_model",
        "yves",
        b"module cpu; /*v2*/ endmodule".to_vec(),
    )?;
    server.process_all()?;
    println!(
        "after HDL change: schematic uptodate = {}",
        server.prop(&sch, "uptodate").unwrap()
    );

    // Designers query what still needs work before the project reaches its
    // planned state.
    let stale = server.query().out_of_date("uptodate");
    println!("{} object(s) out of date:", stale.len());
    for id in stale {
        println!("  {}", server.db().oid(id).unwrap());
    }
    Ok(())
}

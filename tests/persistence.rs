//! Project persistence across sessions: the tracking database outlives the
//! server process, and restored projects keep propagating changes and
//! running tools on restored design data.

use damocles::meta::persist;
use damocles::prelude::*;
use damocles::tools::design_data;

const AUTOMATED: &str = r#"
blueprint persisted
view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
    when ckin do exec synthesizer "$oid" done
endview
view schematic
    property nl_sim_res default bad
    link_from HDL_model move propagates outofdate type derived
    use_link move propagates outofdate
    when nl_sim do nl_sim_res = $arg done
    when ckin do exec netlister "$oid"; exec layout_gen "$oid" done
endview
view netlist
    property sim_result default bad
    link_from schematic move propagates nl_sim, outofdate type derived
    when nl_sim do sim_result = $arg done
    when ckin do exec simulator "$oid" done
endview
view layout
    property drc_result default bad
    property lvs_result default not_equiv
    link_from schematic move propagates lvs, outofdate type equivalence
    when drc do drc_result = $arg done
    when lvs do lvs_result = $arg done
    when ckin do exec drc "$oid"; exec lvs "$oid" done
endview
endblueprint
"#;

#[test]
fn restored_project_keeps_tracking_and_tooling() {
    // Session 1: run the automated flow, save the project.
    let bp = damocles::core::parse(AUTOMATED).unwrap();
    let mut session1 =
        ProjectServer::with_executor(bp, ToolExecutor::standard(FaultPlan::never())).unwrap();
    session1
        .checkin(
            "CPU",
            "HDL_model",
            "yves",
            design_data::hdl_source("CPU", 1, &["REG"], false),
        )
        .unwrap();
    session1.process_all().unwrap();
    let image = persist::save_project(session1.db(), session1.workspace());
    drop(session1);

    // Session 2: fresh server, restore, verify state survived.
    let bp = damocles::core::parse(AUTOMATED).unwrap();
    let mut session2 =
        ProjectServer::with_executor(bp, ToolExecutor::standard(FaultPlan::never())).unwrap();
    let (db, workspace) = persist::load_project(&image).unwrap();
    session2.adopt_project(db, workspace);

    let lay = Oid::new("CPU", "layout", 1);
    assert_eq!(
        session2.prop(&lay, "lvs_result").unwrap().as_atom(),
        "is_equiv"
    );
    assert_eq!(session2.prop(&lay, "uptodate").unwrap(), Value::Bool(true));

    // Change propagation works on the restored link graph.
    session2
        .checkin(
            "CPU",
            "HDL_model",
            "yves",
            design_data::hdl_source("CPU", 2, &["REG"], false),
        )
        .unwrap();
    session2.process_all().unwrap();
    // The v1 schematic went stale; the automated cascade rebuilt v2 of
    // everything (including running LVS over restored + new payloads).
    let sch1 = Oid::new("CPU", "schematic", 1);
    assert_eq!(
        session2.prop(&sch1, "uptodate").unwrap(),
        Value::Bool(false)
    );
    let lay2 = Oid::new("CPU", "layout", 2);
    assert_eq!(
        session2.prop(&lay2, "lvs_result").unwrap().as_atom(),
        "is_equiv"
    );

    // Tool lineage checks ran against the *restored* workspace payloads.
    let net2 = session2.resolve(&Oid::new("CPU", "netlist", 2)).unwrap();
    let sch2 = session2.resolve(&Oid::new("CPU", "schematic", 2)).unwrap();
    let net_payload = session2.workspace().datum(net2).unwrap().content.clone();
    let sch_payload = session2.workspace().datum(sch2).unwrap().content.clone();
    assert!(design_data::derived_from(
        "netlist",
        &net_payload,
        &sch_payload
    ));
}

#[test]
fn save_load_is_stable_across_the_edtc_walkthrough() {
    let mut server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
    let hdl = server
        .checkin("CPU", "HDL_model", "d", b"m1".to_vec())
        .unwrap();
    let sch = server
        .checkin("CPU", "schematic", "d", b"s1".to_vec())
        .unwrap();
    server.connect_oids(&hdl, &sch).unwrap();
    server.process_all().unwrap();
    server
        .post_line(&format!("postEvent hdl_sim up {hdl} \"good\""), "sim")
        .unwrap();
    server.process_all().unwrap();

    let image1 = persist::save_project(server.db(), server.workspace());
    let (db, ws) = persist::load_project(&image1).unwrap();
    let image2 = persist::save_project(&db, &ws);
    assert_eq!(image1, image2, "save∘load∘save is the identity");
}

#[test]
fn queued_events_are_dropped_on_adopt() {
    let mut server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
    let hdl = server
        .checkin("CPU", "HDL_model", "d", b"m1".to_vec())
        .unwrap();
    server.process_all().unwrap();
    let image = persist::save_project(server.db(), server.workspace());

    // Queue an event, then adopt: the event's address belongs to the old
    // database and must not fire against the new one.
    server
        .post_line(&format!("postEvent hdl_sim up {hdl} \"good\""), "sim")
        .unwrap();
    assert_eq!(server.pending_events(), 1);
    let (db, ws) = persist::load_project(&image).unwrap();
    server.adopt_project(db, ws);
    assert_eq!(server.pending_events(), 0);
    let report = server.process_all().unwrap();
    assert_eq!(report.events, 0);
    assert_eq!(server.prop(&hdl, "sim_result").unwrap().as_atom(), "bad");
}

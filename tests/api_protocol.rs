//! End-to-end tests of the typed command protocol (ISSUE 3): the
//! session-based command loop, the line-framed TCP front door, and the
//! group-commit guarantee that a reply in hand means the effect is
//! journaled.

use std::net::TcpListener;

use damocles::core::engine::api::{Request, Response};
use damocles::core::engine::service::{serve_listener, spawn_project_loop, ProjectService};
use damocles::prelude::*;
use damocles::tools::remote::RemoteWrapper;

fn edtc_service() -> ProjectService {
    let server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).expect("EDTC parses");
    ProjectService::with_server(server)
}

/// Binds a loopback listener, spawns the command loop and the accept
/// loop, and returns the address clients connect to.
fn spawn_server(service: ProjectService) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let (handle, _join) = spawn_project_loop(service);
    std::thread::spawn(move || {
        let _ = serve_listener(listener, &handle);
    });
    addr
}

#[test]
fn two_concurrent_clients_post_through_the_listener() {
    let dir = std::env::temp_dir().join("damocles-api-protocol-two-clients");
    let _ = std::fs::remove_dir_all(&dir);
    let mut service = edtc_service();
    // Seed 8 HDL models and enable journaling — through the protocol.
    let mut oids = Vec::new();
    for i in 0..8 {
        match service.call(Request::Checkin {
            block: format!("blk{i}"),
            view: "HDL_model".into(),
            user: "setup".into(),
            payload: b"module".to_vec(),
        }) {
            Response::Created { oid } => oids.push(oid),
            other => panic!("{other:?}"),
        }
    }
    assert!(!service.call(Request::ProcessAll).is_error());
    assert!(matches!(
        service.call(Request::EnableJournal {
            dir: dir.display().to_string(),
            every: 1_000_000,
        }),
        Response::Epoch { .. }
    ));
    let addr = spawn_server(service);

    // Two wrapper processes race 25 simulation results each.
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let oids = oids.clone();
            std::thread::spawn(move || {
                let mut wrapper = RemoteWrapper::connect(addr, format!("sim{w}")).expect("connect");
                for i in 0..25 {
                    let msg = EventMessage::new(
                        "hdl_sim",
                        Direction::Up,
                        oids[(w * 3 + i) % oids.len()].clone(),
                    )
                    .with_arg(format!("run-{w}-{i}"));
                    let resp = wrapper.post(&msg).expect("post");
                    assert_eq!(resp, Response::Ok, "worker {w} post {i}");
                }
                let resp = wrapper.process_all().expect("process");
                assert!(matches!(resp, Response::Processed { .. }), "{resp:?}");
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    // A third client observes the serialized aggregate state: all 50
    // events processed (split between the two drains), queue empty, and
    // every event journaled before its reply was sent.
    let mut observer = RemoteWrapper::connect(addr, "observer").expect("connect");
    match observer.request(&Request::Stat).expect("stat") {
        Response::Stat { stat } => {
            assert_eq!(stat.oids, 8);
            assert_eq!(stat.pending_events, 0);
            assert!(
                stat.journal_records.unwrap() >= 50,
                "all posted events journaled, saw {:?}",
                stat.journal_records
            );
        }
        other => panic!("{other:?}"),
    }
    // Every model took SOME run's result (last writer per target wins).
    for oid in &oids {
        match observer
            .request(&Request::Show { oid: oid.clone() })
            .unwrap()
        {
            Response::Props { props, .. } => {
                let sim = props.iter().find(|(n, _)| n == "sim_result").unwrap();
                assert!(sim.1.as_atom().starts_with("run-"), "{oid}: {:?}", sim.1);
            }
            other => panic!("{other:?}"),
        }
    }

    // The journal the loop group-committed recovers into the same state.
    let mut recovered = edtc_service();
    match recovered.call(Request::Recover {
        dir: dir.display().to_string(),
        every: 1_000_000,
    }) {
        Response::Recovered { .. } => {}
        other => panic!("{other:?}"),
    }
    match recovered.call(Request::Stat) {
        Response::Stat { stat } => assert_eq!(stat.oids, 8),
        other => panic!("{other:?}"),
    }
}

#[test]
fn raw_postevent_lines_work_over_the_wire() {
    use std::io::{BufRead, BufReader, Write};

    let mut service = edtc_service();
    let oid = match service.call(Request::Checkin {
        block: "CPU".into(),
        view: "HDL_model".into(),
        user: "yves".into(),
        payload: b"module cpu".to_vec(),
    }) {
        Response::Created { oid } => oid,
        other => panic!("{other:?}"),
    };
    service.call(Request::ProcessAll);
    let addr = spawn_server(service);

    // A paper-style wrapper that only knows the §3.1 wire line.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("postEvent hdl_sim up {oid} \"good\"\nprocess\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "ok");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("processed 1 "), "{line:?}");

    // Malformed lines come back as structured, positioned errors.
    stream
        .write_all(b"postEvent hdl_sim sideways CPU,HDL_model,1\n")
        .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    match Response::decode(line.trim_end()).unwrap() {
        Response::Error(damocles::core::ApiError::Parse { at, found, .. }) => {
            assert_eq!(at, 18);
            assert_eq!(found, "sideways");
        }
        other => panic!("{other:?}"),
    }

    // The posted result landed under the connection's net user.
    let mut observer = RemoteWrapper::connect(addr, "observer").unwrap();
    match observer.request(&Request::Show { oid }).unwrap() {
        Response::Props { props, .. } => {
            let sim = props.iter().find(|(n, _)| n == "sim_result").unwrap();
            assert_eq!(sim.1.as_atom(), "good");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn sessions_see_their_requests_in_order_and_batches_commit_atomically() {
    let dir = std::env::temp_dir().join("damocles-api-protocol-order");
    let _ = std::fs::remove_dir_all(&dir);
    let mut service = edtc_service();
    assert!(matches!(
        service.call(Request::EnableJournal {
            dir: dir.display().to_string(),
            every: 1_000_000,
        }),
        Response::Epoch { .. }
    ));
    let (handle, join) = spawn_project_loop(service);
    let session = handle.session();
    // Pipelined: version 1..=20 of the same chain must check in strictly
    // in submission order or version numbers would collide.
    let pending: Vec<_> = (1..=20)
        .map(|_| {
            session.submit(Request::Checkin {
                block: "CPU".into(),
                view: "HDL_model".into(),
                user: "yves".into(),
                payload: b"v".to_vec(),
            })
        })
        .collect();
    for (i, rx) in pending.into_iter().enumerate() {
        match rx.recv().unwrap() {
            Response::Created { oid } => assert_eq!(oid.version, i as u32 + 1),
            other => panic!("{other:?}"),
        }
    }
    drop((session, handle));
    join.join().unwrap();

    // Recovery sees all twenty versions: the last batch was flushed when
    // the loop wound down.
    let mut recovered = edtc_service();
    assert!(!recovered
        .call(Request::Recover {
            dir: dir.display().to_string(),
            every: 1_000_000,
        })
        .is_error());
    match recovered.call(Request::Stat) {
        Response::Stat { stat } => assert_eq!(stat.oids, 20),
        other => panic!("{other:?}"),
    }
}

//! End-to-end replication tests (ISSUE 4): a read-only follower
//! bootstraps from `snapshot + tail` over TCP, reaches the leader's
//! image byte-identically, serves reads while rejecting mutations, and
//! survives a leader checkpoint (epoch rollover) mid-stream.

use std::net::TcpListener;
use std::time::Duration;

use damocles::core::engine::api::{ApiError, Request, Response};
use damocles::core::engine::follower::{spawn_follower_loop, FollowerHandle, FollowerMsg};
use damocles::core::engine::service::{
    serve_listener, serve_with, spawn_project_loop, ProjectService,
};
use damocles::prelude::*;
use damocles::tools::remote::{RemoteWrapper, TailHandshake};

const SIMPLE: &str = r#"
    blueprint repl
    view default
        property uptodate default true
        when ckin do uptodate = true; post outofdate down done
        when outofdate do uptodate = false done
    endview
    view HDL_model endview
    view schematic
        link_from HDL_model move propagates outofdate type derived
    endview
    endblueprint
"#;

/// Binds a loopback listener, spawns the leader command loop with
/// journaling under `dir`, and returns the address clients connect to.
fn spawn_leader(dir: &std::path::Path) -> std::net::SocketAddr {
    let _ = std::fs::remove_dir_all(dir);
    let mut service: ProjectService = ProjectService::new();
    assert!(!service
        .call(Request::Init {
            source: SIMPLE.into()
        })
        .is_error());
    assert!(matches!(
        service.call(Request::EnableJournal {
            dir: dir.display().to_string(),
            every: 1_000_000,
        }),
        Response::Epoch { .. }
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let (handle, _join) = spawn_project_loop(service);
    std::thread::spawn(move || {
        let _ = serve_listener(listener, &handle);
    });
    addr
}

/// Spawns a follower (loop + TCP pump with reconnect, exactly the
/// `damocles_server --follow` wiring) and its read-only front door.
fn spawn_follower(leader: std::net::SocketAddr) -> (FollowerHandle, std::net::SocketAddr) {
    let service: ProjectService =
        ProjectService::with_server(ProjectServer::from_source(SIMPLE).unwrap());
    let (handle, _join) = spawn_follower_loop(service, leader.to_string());
    spawn_pump(leader, handle.clone());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let front = handle.clone();
    std::thread::spawn(move || {
        let _ = serve_with(listener, || front.session(), None);
    });
    (handle, addr)
}

/// The tail pump: connect, handshake from the applied cursor, feed
/// frames; on any failure report and retry.
fn spawn_pump(leader: std::net::SocketAddr, handle: FollowerHandle) {
    let status = handle.status();
    let feed = handle.feed();
    std::thread::spawn(move || loop {
        let (epoch, seq) = status.handshake_cursor();
        let outcome = RemoteWrapper::connect(leader, "follower")
            .and_then(|wrapper| wrapper.tail_from(epoch, seq));
        match outcome {
            Ok(TailHandshake::Accepted { mut stream, .. }) => loop {
                match stream.next_frame() {
                    Ok(frame) => {
                        if feed.send(FollowerMsg::Frame(frame)).is_err() {
                            return; // follower loop gone
                        }
                        if status.needs_reset() {
                            break; // reconnect for a snapshot reset
                        }
                    }
                    Err(e) => {
                        if feed
                            .send(FollowerMsg::LeaderGone {
                                reason: e.to_string(),
                            })
                            .is_err()
                        {
                            return;
                        }
                        break;
                    }
                }
            },
            Ok(TailHandshake::Refused(resp)) => {
                if feed
                    .send(FollowerMsg::LeaderGone {
                        reason: format!("refused: {}", resp.encode()),
                    })
                    .is_err()
                {
                    return;
                }
            }
            Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(100));
    });
}

/// The leader's committed stream position, via its own front door.
fn leader_position(client: &mut RemoteWrapper) -> (u64, u64) {
    match client.request(&Request::Stat).expect("stat") {
        Response::Stat { stat } => (
            stat.journal_epoch.expect("journaling on"),
            stat.journal_records.expect("journaling on"),
        ),
        other => panic!("{other:?}"),
    }
}

/// The leader's full project image, via `save` + read-back.
fn leader_image(client: &mut RemoteWrapper, tag: &str) -> String {
    let path = std::env::temp_dir().join(format!("damocles-repl-image-{tag}.ddb"));
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        client
            .request(&Request::SaveProject {
                path: path.display().to_string()
            })
            .expect("save"),
        Response::Ok
    );
    std::fs::read_to_string(&path).expect("read image")
}

fn checkin(block: &str, view: &str) -> Request {
    Request::Checkin {
        block: block.into(),
        view: view.into(),
        user: "yves".into(),
        payload: b"data".to_vec(),
    }
}

#[test]
fn follower_bootstraps_tails_and_survives_rollover() {
    let dir = std::env::temp_dir().join("damocles-repl-e2e");
    let leader_addr = spawn_leader(&dir);
    let mut client = RemoteWrapper::connect(leader_addr, "writer").expect("connect leader");

    // Build real state: versions, a link, a propagation wave.
    let hdl = match client.request(&checkin("cpu", "HDL_model")).unwrap() {
        Response::Created { oid } => oid,
        other => panic!("{other:?}"),
    };
    let sch = match client.request(&checkin("cpu", "schematic")).unwrap() {
        Response::Created { oid } => oid,
        other => panic!("{other:?}"),
    };
    assert_eq!(
        client
            .request(&Request::Connect {
                from: hdl.clone(),
                to: sch.clone()
            })
            .unwrap(),
        Response::Ok
    );
    assert!(matches!(
        client.request(&Request::ProcessAll).unwrap(),
        Response::Processed { .. }
    ));

    // The follower bootstraps from snapshot + tail over TCP.
    let (follower, follower_addr) = spawn_follower(leader_addr);
    let (epoch, seq) = leader_position(&mut client);
    assert!(
        follower
            .status()
            .wait_applied(epoch, seq, Duration::from_secs(10)),
        "follower caught up to ({epoch}, {seq}); at {:?}",
        follower.status().cursor()
    );
    assert_eq!(
        follower.image().unwrap(),
        leader_image(&mut client, "bootstrap"),
        "follower image is byte-identical to the leader's after catch-up"
    );

    // The follower serves reads through its own front door…
    let mut reader = RemoteWrapper::connect(follower_addr, "reader").expect("connect follower");
    match reader
        .request(&Request::Query {
            terms: "view=HDL_model".into(),
        })
        .unwrap()
    {
        Response::Hits { oids } => assert_eq!(oids, vec![hdl.clone()]),
        other => panic!("{other:?}"),
    }
    match reader.request(&Request::Show { oid: sch.clone() }).unwrap() {
        Response::Props { props, .. } => {
            assert!(props.iter().any(|(n, _)| n == "uptodate"));
        }
        other => panic!("{other:?}"),
    }
    // …and rejects mutations with a structured error naming the leader.
    match reader.request(&checkin("evil", "HDL_model")).unwrap() {
        Response::Error(ApiError::ReadOnly { leader }) => {
            assert_eq!(leader, leader_addr.to_string());
        }
        other => panic!("{other:?}"),
    }
    match reader.request(&Request::ProcessAll).unwrap() {
        Response::Error(ApiError::ReadOnly { .. }) => {}
        other => panic!("{other:?}"),
    }

    // Mid-stream leader checkpoint: the epoch rolls over and the
    // follower keeps tracking (cheap marker path, no re-bootstrap).
    let epoch_before = follower.status().cursor().0;
    assert!(matches!(
        client.request(&Request::Checkpoint).unwrap(),
        Response::Epoch { .. }
    ));
    // New mutations land in the new epoch; a fresh HDL version flips the
    // derived schematic stale — link state replicated across the fold.
    assert!(matches!(
        client.request(&checkin("cpu", "HDL_model")).unwrap(),
        Response::Created { .. }
    ));
    assert!(matches!(
        client.request(&Request::ProcessAll).unwrap(),
        Response::Processed { .. }
    ));
    let (epoch, seq) = leader_position(&mut client);
    assert!(epoch > epoch_before, "checkpoint advanced the epoch");
    assert!(
        follower
            .status()
            .wait_applied(epoch, seq, Duration::from_secs(10)),
        "follower crossed the rollover; at {:?}",
        follower.status().cursor()
    );
    assert_eq!(
        follower.image().unwrap(),
        leader_image(&mut client, "rollover"),
        "byte-identical across the epoch rollover"
    );
    // The replicated propagation outcome is queryable on the follower.
    match reader.request(&Request::Show { oid: sch }).unwrap() {
        Response::Props { props, .. } => {
            let up = props.iter().find(|(n, _)| n == "uptodate").unwrap();
            assert_eq!(up.1, Value::Bool(false), "staleness replicated");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn crashed_follower_rejoins_from_scratch() {
    let dir = std::env::temp_dir().join("damocles-repl-rejoin");
    let leader_addr = spawn_leader(&dir);
    let mut client = RemoteWrapper::connect(leader_addr, "writer").expect("connect leader");
    for i in 0..6 {
        assert!(matches!(
            client
                .request(&checkin(&format!("blk{i}"), "HDL_model"))
                .unwrap(),
            Response::Created { .. }
        ));
    }
    assert!(matches!(
        client.request(&Request::ProcessAll).unwrap(),
        Response::Processed { .. }
    ));

    // First follower catches up, then "crashes" (all its state dropped).
    let (follower, _) = spawn_follower(leader_addr);
    let (epoch, seq) = leader_position(&mut client);
    assert!(follower
        .status()
        .wait_applied(epoch, seq, Duration::from_secs(10)));
    drop(follower);

    // The leader moves on while no follower is attached.
    for i in 6..9 {
        client
            .request(&checkin(&format!("blk{i}"), "HDL_model"))
            .unwrap();
    }
    client.request(&Request::ProcessAll).unwrap();

    // A rejoining follower starts cold at (0, 0): the stale cursor gets
    // a fresh snapshot bootstrap, then the live tail.
    let (rejoined, rejoined_addr) = spawn_follower(leader_addr);
    let (epoch, seq) = leader_position(&mut client);
    assert!(
        rejoined
            .status()
            .wait_applied(epoch, seq, Duration::from_secs(10)),
        "rejoined follower caught up; at {:?}",
        rejoined.status().cursor()
    );
    assert_eq!(
        rejoined.image().unwrap(),
        leader_image(&mut client, "rejoin")
    );

    // All nine objects are visible through the rejoined front door.
    let mut reader = RemoteWrapper::connect(rejoined_addr, "reader").unwrap();
    match reader.request(&Request::Stat).unwrap() {
        Response::Stat { stat } => assert_eq!(stat.oids, 9),
        other => panic!("{other:?}"),
    }
}

/// A follower with no leader link yet answers reads with `Lagging` (not
/// a hang, not a misleading empty result) and mutations with `ReadOnly`.
#[test]
fn unbootstrapped_follower_reports_lagging() {
    let service: ProjectService =
        ProjectService::with_server(ProjectServer::from_source(SIMPLE).unwrap());
    let (handle, _join) = spawn_follower_loop(service, "203.0.113.1:7425");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let front = handle.clone();
    std::thread::spawn(move || {
        let _ = serve_with(listener, || front.session(), None);
    });
    let mut reader = RemoteWrapper::connect(addr, "reader").unwrap();
    match reader.request(&Request::Stat).unwrap() {
        Response::Error(ApiError::Lagging { epoch: 0, seq: 0 }) => {}
        other => panic!("{other:?}"),
    }
    match reader.request(&checkin("x", "HDL_model")).unwrap() {
        Response::Error(ApiError::ReadOnly { leader }) => {
            assert_eq!(leader, "203.0.113.1:7425");
        }
        other => panic!("{other:?}"),
    }
}

//! Experiment TOOL (integration side): automatic tool invocation, permission
//! gating, and failure containment across the full stack.

use damocles::prelude::*;
use damocles::tools::design_data;
use damocles::tools::tool::RunStatus;

const AUTOMATED: &str = r#"
blueprint automated
view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
    when ckin do exec synthesizer "$oid" done
endview
view schematic
    property nl_sim_res default bad
    link_from HDL_model move propagates outofdate type derived
    use_link move propagates outofdate
    when nl_sim do nl_sim_res = $arg done
    when ckin do exec netlister "$oid"; exec layout_gen "$oid" done
endview
view netlist
    property sim_result default bad
    link_from schematic move propagates nl_sim, outofdate type derived
    when nl_sim do sim_result = $arg done
    when ckin do exec simulator "$oid" done
endview
view layout
    property drc_result default bad
    property lvs_result default not_equiv
    let state = ($drc_result == good) and ($lvs_result == is_equiv) and ($uptodate == true)
    link_from schematic move propagates lvs, outofdate type equivalence
    when drc do drc_result = $arg done
    when lvs do lvs_result = $arg done
    when ckin do exec drc "$oid"; exec lvs "$oid" done
endview
endblueprint
"#;

fn automated_server(fault: FaultPlan) -> ProjectServer<ToolExecutor> {
    let bp = damocles::core::parse(AUTOMATED).unwrap();
    ProjectServer::with_executor(bp, ToolExecutor::standard(fault)).unwrap()
}

#[test]
fn one_checkin_drives_the_whole_flow() {
    let mut s = automated_server(FaultPlan::never());
    s.checkin(
        "CPU",
        "HDL_model",
        "yves",
        design_data::hdl_source("CPU", 1, &["REG"], false),
    )
    .unwrap();
    let report = s.process_all().unwrap();

    // Every view materialized for both blocks.
    for block in ["CPU", "REG"] {
        for view in ["schematic", "netlist", "layout"] {
            assert!(
                s.db().latest_version(block, view).is_some(),
                "{block}.{view} missing"
            );
        }
    }
    // Clean design: simulations good, layouts signed off.
    for block in ["CPU", "REG"] {
        let lay = Oid::new(block, "layout", 1);
        assert_eq!(s.prop(&lay, "drc_result").unwrap().as_atom(), "good");
        assert_eq!(s.prop(&lay, "lvs_result").unwrap().as_atom(), "is_equiv");
        assert_eq!(s.prop(&lay, "state").unwrap(), Value::Bool(true));
        let sch = Oid::new(block, "schematic", 1);
        assert_eq!(s.prop(&sch, "nl_sim_res").unwrap().as_atom(), "good");
    }
    assert!(
        report.scripts >= 11,
        "expected the full cascade, got {report:?}"
    );
    // No tool run failed or was denied.
    assert!(s
        .executor()
        .runs()
        .iter()
        .all(|r| matches!(r.status, RunStatus::Completed { .. })));
}

#[test]
fn buggy_model_fails_downstream_simulations() {
    let mut s = automated_server(FaultPlan::never());
    s.checkin(
        "CPU",
        "HDL_model",
        "yves",
        design_data::hdl_source("CPU", 1, &[], true),
    )
    .unwrap();
    s.process_all().unwrap();
    // The bug marker propagated through derivation into the netlist, so the
    // netlist simulation reports errors (not "good").
    let net = Oid::new("CPU", "netlist", 1);
    let verdict = s.prop(&net, "sim_result").unwrap().as_atom();
    assert!(verdict.ends_with("errors"), "got {verdict}");
    let sch = Oid::new("CPU", "schematic", 1);
    assert_eq!(s.prop(&sch, "nl_sim_res").unwrap().as_atom(), verdict);
}

#[test]
fn simulator_is_denied_on_stale_input() {
    // Make the netlist stale before the simulator would run: the permission
    // requirement (uptodate on input) must deny the run.
    let bp = damocles::core::parse(AUTOMATED).unwrap();
    let mut executor = ToolExecutor::new();
    executor.register(Box::new(
        damocles::tools::Simulator::new(FaultPlan::never()),
    ));
    executor.require("simulator", damocles::tools::Requirement::prop("uptodate"));
    let mut s = ProjectServer::with_executor(bp, executor).unwrap();

    let net = s.checkin("CPU", "netlist", "d", b"n1".to_vec()).unwrap();
    s.process_all().unwrap();
    // First run: permitted (fresh checkin ⇒ uptodate).
    assert!(matches!(
        s.executor().runs_of("simulator")[0].status,
        RunStatus::Completed { .. }
    ));

    // Stale it and re-trigger by posting ckin-like exec manually: reuse the
    // rule by posting outofdate then a direct ckin of the schematic is not
    // available here, so invoke through a fresh event on the netlist whose
    // rule execs the simulator — simplest: mark stale, then post ckin event
    // at the same netlist (ckin rule runs exec simulator again, but the
    // default ckin rule would first set uptodate=true; so instead check the
    // permission path directly with a stale object and a hand-posted event).
    let id = s.resolve(&net).unwrap();
    // Post outofdate to stale it (no links, so only the target is hit).
    s.post_line(&format!("postEvent outofdate down {net}"), "t")
        .unwrap();
    s.process_all().unwrap();
    assert_eq!(s.prop(&net, "uptodate").unwrap(), Value::Bool(false));
    let _ = id;

    // Now a rule-driven exec of the simulator must be denied. Trigger via a
    // custom event rule? The AUTOMATED blueprint only execs simulator on
    // ckin (which freshens). Emulate the §3.3 wrapper path: a permission
    // check against stale input.
    let bp2 = damocles::core::parse(
        r#"blueprint p
        view netlist
            property uptodate default false
            when try_sim do exec simulator "$oid" done
        endview endblueprint"#,
    )
    .unwrap();
    let mut executor2 = ToolExecutor::new();
    executor2.register(Box::new(
        damocles::tools::Simulator::new(FaultPlan::never()),
    ));
    executor2.require("simulator", damocles::tools::Requirement::prop("uptodate"));
    let mut s2 = ProjectServer::with_executor(bp2, executor2).unwrap();
    let net2 = s2.checkin("CPU", "netlist", "d", b"n1".to_vec()).unwrap();
    s2.process_all().unwrap();
    s2.post_line(&format!("postEvent try_sim up {net2}"), "d")
        .unwrap();
    s2.process_all().unwrap();
    let denied = s2
        .executor()
        .runs_of("simulator")
        .iter()
        .any(|r| matches!(r.status, RunStatus::Denied { .. }));
    assert!(denied, "runs: {:?}", s2.executor().runs());
}

#[test]
fn injected_faults_surface_as_bad_verdicts() {
    // All DRC runs fail under a rate-1.0 plan; LVS forces not_equiv.
    let mut s = automated_server(FaultPlan::new(3, 1.0));
    s.checkin(
        "CPU",
        "HDL_model",
        "yves",
        design_data::hdl_source("CPU", 1, &[], false),
    )
    .unwrap();
    s.process_all().unwrap();
    let lay = Oid::new("CPU", "layout", 1);
    assert_eq!(s.prop(&lay, "drc_result").unwrap().as_atom(), "bad");
    assert_eq!(s.prop(&lay, "lvs_result").unwrap().as_atom(), "not_equiv");
    assert_eq!(s.prop(&lay, "state").unwrap(), Value::Bool(false));
}

#[test]
fn rerunning_the_flow_versions_everything() {
    let mut s = automated_server(FaultPlan::never());
    for v in 1..=3 {
        s.checkin(
            "CPU",
            "HDL_model",
            "yves",
            design_data::hdl_source("CPU", v, &[], false),
        )
        .unwrap();
        s.process_all().unwrap();
    }
    assert_eq!(s.db().versions("CPU", "HDL_model"), vec![1, 2, 3]);
    assert_eq!(s.db().versions("CPU", "schematic"), vec![1, 2, 3]);
    assert_eq!(s.db().versions("CPU", "netlist"), vec![1, 2, 3]);
    assert_eq!(s.db().versions("CPU", "layout"), vec![1, 2, 3]);
    // Only the latest generation is fully current.
    let stale = s.query().out_of_date("uptodate");
    for id in &stale {
        let oid = s.db().oid(*id).unwrap();
        assert!(oid.version < 3, "latest generation must be fresh: {oid}");
    }
}

#[test]
fn unknown_script_does_not_stop_the_flow() {
    let bp = damocles::core::parse(
        r#"blueprint u
        view v
            when ckin do exec not_a_tool "$oid"; exec also_missing done
        endview endblueprint"#,
    )
    .unwrap();
    let mut s = ProjectServer::with_executor(bp, ToolExecutor::new()).unwrap();
    s.checkin("b", "v", "d", b"x".to_vec()).unwrap();
    let report = s.process_all().unwrap();
    assert_eq!(report.scripts, 2);
    assert!(s
        .executor()
        .runs()
        .iter()
        .all(|r| r.status == RunStatus::UnknownScript));
}

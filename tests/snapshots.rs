//! Experiment QUERY (integration side): Configurations as snapshots of the
//! design cycle, and the designer-facing state queries of Section 3.1.

use damocles::flows::edtc_blueprint;
use damocles::meta::{ConfigurationBuilder, SnapshotRule};
use damocles::prelude::*;

fn edtc_server() -> ProjectServer<RecordingExecutor> {
    ProjectServer::with_executor(edtc_blueprint(), RecordingExecutor::new()).unwrap()
}

#[test]
fn snapshot_per_design_step_diffs_cleanly() {
    let mut s = edtc_server();
    let hdl = s.checkin("CPU", "HDL_model", "d", b"m1".to_vec()).unwrap();
    let sch = s.checkin("CPU", "schematic", "d", b"s1".to_vec()).unwrap();
    s.connect_oids(&hdl, &sch).unwrap();
    s.process_all().unwrap();

    let hdl_id = s.resolve(&hdl).unwrap();
    let step1 = ConfigurationBuilder::new(s.db())
        .traverse(hdl_id, SnapshotRule::Closure)
        .build("step-1");
    assert_eq!(step1.oid_count(), 2);

    // Next step of the cycle: the netlist appears.
    let net = s.checkin("CPU", "netlist", "tool", b"n1".to_vec()).unwrap();
    s.connect_oids(&sch, &net).unwrap();
    s.process_all().unwrap();
    let step2 = ConfigurationBuilder::new(s.db())
        .traverse(hdl_id, SnapshotRule::Closure)
        .build("step-2");
    assert_eq!(step2.oid_count(), 3);

    let added = step2.diff(&step1);
    assert_eq!(added.len(), 1);
    assert_eq!(s.db().oid(added[0]).unwrap(), &net);
    assert!(step1.diff(&step2).is_empty());
}

#[test]
fn hierarchy_snapshot_pins_versions_across_time() {
    let mut s = edtc_server();
    let cpu = s.checkin("CPU", "schematic", "d", b"c1".to_vec()).unwrap();
    let reg = s.checkin("REG", "schematic", "d", b"r1".to_vec()).unwrap();
    s.connect_oids(&cpu, &reg).unwrap();
    s.process_all().unwrap();

    let cpu_id = s.resolve(&cpu).unwrap();
    let snap = ConfigurationBuilder::new(s.db())
        .traverse(cpu_id, SnapshotRule::Hierarchy)
        .build("tapeout-candidate");

    // New REG version appears; the EDTC use_link is `move`, so the live
    // hierarchy shifts — but the snapshot still resolves the pinned v1.
    s.checkin("REG", "schematic", "d", b"r2".to_vec()).unwrap();
    s.process_all().unwrap();
    let resolved = snap.resolve(s.db(), true).unwrap();
    assert!(resolved.contains(&reg), "snapshot pinned REG v1");
    assert_eq!(resolved.len(), 2);
}

#[test]
fn deleting_pinned_data_makes_snapshot_dangle() {
    let mut s = edtc_server();
    let cpu = s.checkin("CPU", "schematic", "d", b"c1".to_vec()).unwrap();
    s.process_all().unwrap();
    let cpu_id = s.resolve(&cpu).unwrap();
    let snap = ConfigurationBuilder::new(s.db())
        .traverse(cpu_id, SnapshotRule::Hierarchy)
        .build("snap");
    assert_eq!(snap.dangling(s.db()), 0);

    // Deletion is a design activity too (§3.1); do it directly on a clone of
    // the db to keep server invariants out of scope.
    let mut db = s.db().clone();
    db.delete_oid(cpu_id).unwrap();
    assert_eq!(snap.dangling(&db), 1);
    assert!(snap.resolve(&db, true).is_err());
    assert!(snap.resolve(&db, false).unwrap().is_empty());
}

#[test]
fn query_configuration_stores_volume_query_results() {
    let mut s = edtc_server();
    for block in ["a", "b", "c"] {
        let oid = s
            .checkin(block, "schematic", "d", block.as_bytes().to_vec())
            .unwrap();
        s.process_all().unwrap();
        if block == "b" {
            s.post_line(&format!("postEvent nl_sim up {oid} \"good\""), "sim")
                .unwrap();
            s.process_all().unwrap();
        }
    }
    let good = ConfigurationBuilder::new(s.db())
        .query(|entry| entry.props.get("nl_sim_res").map(Value::as_atom) == Some("good".into()))
        .build("passing-sims");
    assert_eq!(good.oid_count(), 1);
    let oids = good.resolve(s.db(), true).unwrap();
    assert_eq!(oids[0].block.as_str(), "b");
}

#[test]
fn work_remaining_walks_the_dependency_cone() {
    let mut s = edtc_server();
    let hdl = s.checkin("CPU", "HDL_model", "d", b"m".to_vec()).unwrap();
    let sch = s.checkin("CPU", "schematic", "d", b"s".to_vec()).unwrap();
    let net = s.checkin("CPU", "netlist", "d", b"n".to_vec()).unwrap();
    s.connect_oids(&hdl, &sch).unwrap();
    s.connect_oids(&sch, &net).unwrap();
    s.process_all().unwrap();

    // Target: the netlist. Its planned state (`state` prop) only exists on
    // the schematic; the netlist and the HDL model lack it entirely, so
    // work_remaining reports them as untracked blockers and the schematic as
    // a false blocker.
    let net_id = s.resolve(&net).unwrap();
    let work = s.query().work_remaining(net_id, "state").unwrap();
    assert_eq!(work.len(), 3);
    let sch_item = work.iter().find(|w| w.oid == sch).unwrap();
    assert_eq!(sch_item.blocking.1, Some(Value::Bool(false)));
    let hdl_item = work.iter().find(|w| w.oid == hdl).unwrap();
    assert_eq!(hdl_item.blocking.1, None);
}

#[test]
fn summary_counts_per_view_state() {
    let mut s = edtc_server();
    for (block, view) in [("a", "schematic"), ("b", "schematic"), ("a", "layout")] {
        s.checkin(block, view, "d", b"x".to_vec()).unwrap();
    }
    s.process_all().unwrap();
    let summary = s.query().summary("uptodate");
    let sch = summary.iter().find(|r| r.view == "schematic").unwrap();
    assert_eq!(sch.total, 2);
    assert_eq!(sch.satisfied, 2);
    let lay = summary.iter().find(|r| r.view == "layout").unwrap();
    assert_eq!(lay.total, 1);
}

//! Multi-project fleet end to end (ISSUE 8): a `ProjectRegistry` routes
//! thousands of tenants over a bounded engine-worker pool, idle projects
//! are LRU-evicted through the checkpoint path and lazily re-activated
//! from their journals — and none of that machinery may leave a byte of
//! difference against a dedicated single-project server replaying the
//! same stream.

use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use damocles::core::engine::api::{ApiError, Request, Response};
use damocles::core::engine::exec::{NullExecutor, ScriptInvocation, ToolCtx};
use damocles::core::engine::fleet::{
    spawn_fleet, BlueprintCache, FleetConfig, FleetSession, ProjectRegistry,
};
use damocles::core::engine::server::{journal_dir_cursor, replay_dir};
use damocles::core::engine::service::{serve_with, ProjectService};
use damocles::prelude::*;
use damocles::tools::remote::RemoteWrapper;

/// The tracked flow every tenant runs: check-ins propagate `outofdate`
/// from HDL models into schematics, exactly the shape the single-node
/// tests use.
const SIMPLE: &str = r#"
    blueprint fleetbp
    view default
        property uptodate default true
        when ckin do uptodate = true; post outofdate down done
        when outofdate do uptodate = false done
    endview
    view HDL_model endview
    view schematic
        link_from HDL_model move propagates outofdate type derived
    endview
    endblueprint
"#;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("damocles-fleet-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn checkin(block: &str, payload: String) -> Request {
    Request::Checkin {
        block: block.to_string(),
        view: "HDL_model".to_string(),
        user: "yves".to_string(),
        payload: payload.into_bytes(),
    }
}

/// The per-tenant request stream: each round checks a new HDL version in
/// and drains the queue, so schematics go out of date and propagation
/// waves run — enough machinery that a replay divergence would show.
fn tenant_stream(tenant: usize, rounds: usize) -> Vec<Request> {
    let block = format!("BLK{tenant}");
    let mut stream = vec![
        Request::Checkin {
            block: block.clone(),
            view: "schematic".to_string(),
            user: "synth".to_string(),
            payload: format!("cell {tenant}").into_bytes(),
        },
        Request::ProcessAll,
    ];
    for round in 0..rounds {
        stream.push(checkin(&block, format!("module v{round} of {tenant}")));
        stream.push(Request::ProcessAll);
    }
    stream
}

/// Replays `stream` on a dedicated single-project server (the fleet's
/// ground truth) and returns its saved image.
fn dedicated_image(stream: &[Request], save_to: &std::path::Path) -> String {
    let mut service: ProjectService = ProjectService::new();
    assert!(!service
        .call(Request::Init {
            source: SIMPLE.into()
        })
        .is_error());
    for request in stream {
        let resp = service.call(request.clone());
        assert!(!resp.is_error(), "dedicated replay failed: {resp:?}");
    }
    let resp = service.call(Request::SaveProject {
        path: save_to.display().to_string(),
    });
    assert!(matches!(resp, Response::Ok), "{resp:?}");
    std::fs::read_to_string(save_to).unwrap()
}

fn attach(session: &FleetSession, project: &str, create: bool) -> Response {
    session.call(Request::Attach {
        project: project.to_string(),
        create,
    })
}

// ---------------------------------------------------------------------
// Eviction byte-identity
// ---------------------------------------------------------------------

/// Six tenants round-robin over a two-slot fleet: every request lands on
/// a cold project, so each one is evicted (checkpointed) and re-activated
/// (recovered) many times over — and the final image of every tenant is
/// byte-identical to a never-evicted dedicated server.
#[test]
fn eviction_cycle_is_byte_identical_to_a_dedicated_server() {
    let root = temp_dir("identity");
    let out = temp_dir("identity-out");
    const TENANTS: usize = 6;
    const ROUNDS: usize = 4;
    let config = FleetConfig {
        engine_workers: 2,
        max_active: 2,
        checkpoint_every: 8,
        ..FleetConfig::default()
    };
    let registry = ProjectRegistry::open(&root, SIMPLE, config).unwrap();
    let (fleet, join) = spawn_fleet::<NullExecutor>(registry);
    let counters = fleet.counters();

    let sessions: Vec<FleetSession> = (0..TENANTS)
        .map(|t| {
            let session = fleet.session();
            let resp = attach(&session, &format!("tenant{t}"), true);
            assert!(
                matches!(resp, Response::Attached { created: true, .. }),
                "{resp:?}"
            );
            session
        })
        .collect();

    // Interleave the streams one request at a time: with two slots and
    // six tenants this forces an evict + re-activate on nearly every
    // routed request.
    let streams: Vec<Vec<Request>> = (0..TENANTS).map(|t| tenant_stream(t, ROUNDS)).collect();
    let depth = streams[0].len();
    #[allow(clippy::needless_range_loop)] // step-major interleave is the point
    for step in 0..depth {
        for (t, session) in sessions.iter().enumerate() {
            let resp = session.call(streams[t][step].clone());
            assert!(!resp.is_error(), "tenant{t} step {step}: {resp:?}");
        }
    }

    assert!(
        counters.evictions.load(Ordering::Relaxed) > 0,
        "the LRU cycle never ran"
    );
    assert!(
        counters.activations.load(Ordering::Relaxed) > TENANTS as u64,
        "no tenant was ever re-activated from its journal"
    );

    // Byte-identity, tenant by tenant, through the fleet's own front
    // door (`save` routes like any other command).
    let mut expected = Vec::new();
    for (t, session) in sessions.iter().enumerate() {
        let fleet_path = out.join(format!("fleet-{t}.dpr"));
        let resp = session.call(Request::SaveProject {
            path: fleet_path.display().to_string(),
        });
        assert!(matches!(resp, Response::Ok), "{resp:?}");
        let dedicated = dedicated_image(&streams[t], &out.join(format!("solo-{t}.dpr")));
        let via_fleet = std::fs::read_to_string(&fleet_path).unwrap();
        assert_eq!(via_fleet, dedicated, "tenant{t} image diverged");
        expected.push(dedicated);
    }

    // Shut the fleet down (workers checkpoint their residents on the way
    // out) and verify each tenant directory is a plain single-project
    // durability dir: `damocles_inspect`'s replay path reconstructs the
    // same image from nothing but the files.
    drop(sessions);
    drop(fleet);
    join.join();
    for (t, expected) in expected.iter().enumerate() {
        let dir = root.join(format!("tenant{t}"));
        let (epoch, ops) = journal_dir_cursor(&dir).unwrap();
        let (_, image) = replay_dir(&dir, epoch, ops.len() as u64).unwrap();
        assert_eq!(&image, expected, "tenant{t} replayed image diverged");
    }
}

// ---------------------------------------------------------------------
// Cross-tenant isolation over one TCP listener
// ---------------------------------------------------------------------

/// Two wrappers share one listener but attach to different projects:
/// neither sees the other's objects, version counters are per-tenant,
/// and the protocol errors (`not-attached`, `no-such-project`, fleet
/// policy refusals) come back structured.
#[test]
fn tenants_are_isolated_over_one_listener() {
    let root = temp_dir("isolation");
    let registry = ProjectRegistry::open(&root, SIMPLE, FleetConfig::default()).unwrap();
    let (fleet, _join) = spawn_fleet::<NullExecutor>(registry);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let front = fleet.clone();
    std::thread::spawn(move || {
        let _ = serve_with(listener, || front.session(), None);
    });

    let mut alpha = RemoteWrapper::connect(addr, "alpha-tool").unwrap();
    let mut beta = RemoteWrapper::connect(addr, "beta-tool").unwrap();

    // Before attaching, routable commands are refused.
    let resp = alpha.request(&Request::Stat).unwrap();
    assert!(
        matches!(resp, Response::Error(ApiError::NotAttached)),
        "{resp:?}"
    );
    // Attaching to an unregistered project without `new` is refused.
    let resp = alpha.attach("ghost", false).unwrap();
    assert!(
        matches!(resp, Response::Error(ApiError::NoSuchProject { ref project }) if project == "ghost"),
        "{resp:?}"
    );

    assert!(matches!(
        alpha.attach("alpha", true).unwrap(),
        Response::Attached { created: true, .. }
    ));
    assert!(matches!(
        beta.attach("beta", true).unwrap(),
        Response::Attached { created: true, .. }
    ));

    // Same block name in both tenants: versions are independent (both
    // get v1) because each project has its own database.
    let a1 = alpha
        .request(&checkin("CORE", "alpha's core".into()))
        .unwrap();
    let Response::Created { oid: a_oid } = a1 else {
        panic!("{a1:?}");
    };
    assert_eq!(a_oid.version, 1);
    let b1 = beta
        .request(&checkin("CORE", "beta's core".into()))
        .unwrap();
    let Response::Created { oid: b_oid } = b1 else {
        panic!("{b1:?}");
    };
    assert_eq!(b_oid.version, 1);

    // A second check-in advances only alpha's version chain; beta never
    // grew a v2 of the same block.
    let a2 = alpha
        .request(&checkin("CORE", "alpha's core, revised".into()))
        .unwrap();
    let Response::Created { oid: a_oid2 } = a2 else {
        panic!("{a2:?}");
    };
    assert_eq!(a_oid2.version, 2);
    let resp = beta.request(&Request::Show { oid: a_oid2 }).unwrap();
    assert!(
        matches!(resp, Response::Error(ApiError::UnknownOid { .. })),
        "beta can see alpha's objects: {resp:?}"
    );

    // Drain both queues, then post into alpha only: the event queues are
    // per-tenant too.
    assert!(!alpha.request(&Request::ProcessAll).unwrap().is_error());
    assert!(!beta.request(&Request::ProcessAll).unwrap().is_error());
    let resp = alpha
        .request(&Request::Post {
            message: EventMessage::new("hdl_sim", Direction::Up, a_oid.clone())
                .with_arg("alpha only"),
            user: "alpha-tool".to_string(),
        })
        .unwrap();
    assert!(!resp.is_error(), "{resp:?}");
    let Response::Stat { stat: a_stat } = alpha.request(&Request::Stat).unwrap() else {
        panic!("no stat");
    };
    let Response::Stat { stat: b_stat } = beta.request(&Request::Stat).unwrap() else {
        panic!("no stat");
    };
    assert_eq!(a_stat.pending_events, 1, "alpha's posted event is queued");
    assert_eq!(b_stat.pending_events, 0, "beta saw alpha's event");
    // Fleet gauges ride on every tenant's `stat`.
    assert_eq!(a_stat.resident_projects, 2);
    assert!(a_stat.active_projects >= 1);

    // Re-pointing durability or swapping blueprints is a fleet-root
    // decision — refused per request, not fatal to the session.
    let resp = alpha
        .request(&Request::Init {
            source: SIMPLE.into(),
        })
        .unwrap();
    assert!(
        matches!(resp, Response::Error(ApiError::Policy { .. })),
        "{resp:?}"
    );
    // And the session survives the refusal.
    let resp = alpha.request(&Request::ProcessAll).unwrap();
    assert!(!resp.is_error(), "{resp:?}");

    // `projects` lists both tenants.
    let resp = alpha.request(&Request::ListProjects).unwrap();
    let Response::Projects { entries } = resp else {
        panic!("no projects listing");
    };
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["alpha", "beta"]);
}

// ---------------------------------------------------------------------
// Real parallelism across workers
// ---------------------------------------------------------------------

static SLOW_RUNNING: AtomicUsize = AtomicUsize::new(0);
static SLOW_PEAK: AtomicUsize = AtomicUsize::new(0);

/// Sleeps inside every `slow` invocation while tracking how many run
/// simultaneously — overlap proves two engine workers really execute
/// concurrently.
#[derive(Debug, Default)]
struct SlowExecutor;

impl ScriptExecutor for SlowExecutor {
    fn execute(
        &mut self,
        invocation: &ScriptInvocation,
        _ctx: &mut ToolCtx<'_>,
    ) -> Vec<EventMessage> {
        if invocation.script == "slow" {
            let now = SLOW_RUNNING.fetch_add(1, Ordering::SeqCst) + 1;
            SLOW_PEAK.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(60));
            SLOW_RUNNING.fetch_sub(1, Ordering::SeqCst);
        }
        Vec::new()
    }
}

const SLOW_BP: &str = r#"
    blueprint slowfleet
    view default
        property uptodate default true
    endview
    view HDL_model
        when ckin do exec slow "$oid" done
    endview
    endblueprint
"#;

/// Two clients hammer two different projects: the router pins them to
/// different workers (least-loaded placement), so their wrapper
/// invocations overlap in time. A single-threaded multiplexer would
/// never push the concurrency gauge past 1.
#[test]
fn distinct_projects_execute_in_parallel() {
    let root = temp_dir("parallel");
    let config = FleetConfig {
        engine_workers: 2,
        ..FleetConfig::default()
    };
    let registry = ProjectRegistry::open(&root, SLOW_BP, config).unwrap();
    let (fleet, _join) = spawn_fleet::<SlowExecutor>(registry);

    let workers: Vec<std::thread::JoinHandle<()>> = (0..2)
        .map(|t| {
            let session = fleet.session();
            std::thread::spawn(move || {
                let name = format!("par{t}");
                assert!(!attach(&session, &name, true).is_error());
                for round in 0..5 {
                    let resp = session.call(checkin(&format!("B{t}"), format!("v{round}")));
                    assert!(!resp.is_error(), "{resp:?}");
                    let resp = session.call(Request::ProcessAll);
                    assert!(!resp.is_error(), "{resp:?}");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    assert!(
        SLOW_PEAK.load(Ordering::SeqCst) >= 2,
        "invocations never overlapped: the fleet serialized distinct projects"
    );
}

// ---------------------------------------------------------------------
// Blueprint sharing
// ---------------------------------------------------------------------

/// Tenants loading byte-identical source share one `CompiledBlueprint`
/// allocation: the cache hits, and two servers built from it point at
/// the same compilation.
#[test]
fn tenants_share_one_compiled_blueprint() {
    let cache = BlueprintCache::new();
    let (bp_a, compiled_a) = cache.get_or_compile(SIMPLE).unwrap();
    let (_, compiled_b) = cache.get_or_compile(SIMPLE).unwrap();
    assert_eq!(cache.hits(), 1, "second tenant missed the cache");
    assert_eq!(cache.len(), 1);
    assert!(std::sync::Arc::ptr_eq(&compiled_a, &compiled_b));

    // Two tenants' servers: one compiled-blueprint allocation between
    // them, exactly what the fleet's activation path builds.
    let server_a = ProjectServer::with_shared(
        std::sync::Arc::clone(&bp_a),
        std::sync::Arc::clone(&compiled_a),
        NullExecutor,
    );
    let server_b = ProjectServer::with_shared(bp_a, compiled_b, NullExecutor);
    assert!(std::sync::Arc::ptr_eq(
        &server_a.compiled_shared(),
        &server_b.compiled_shared()
    ));

    // Two fleet roots sharing one cache also share the compilation.
    let shared = std::sync::Arc::new(BlueprintCache::new());
    let reg_a = ProjectRegistry::open_with_cache(
        temp_dir("cache-a"),
        SIMPLE,
        FleetConfig::default(),
        std::sync::Arc::clone(&shared),
    )
    .unwrap();
    let reg_b = ProjectRegistry::open_with_cache(
        temp_dir("cache-b"),
        SIMPLE,
        FleetConfig::default(),
        std::sync::Arc::clone(&shared),
    )
    .unwrap();
    assert_eq!(shared.hits(), 1);
    assert!(std::sync::Arc::ptr_eq(&reg_a.compiled(), &reg_b.compiled()));
}

// ---------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------

/// With one slot and a zero park budget, the second tenant's first
/// request is refused with a structured `project-busy` instead of
/// queueing unboundedly.
#[test]
fn park_limit_backpressure_is_a_structured_refusal() {
    let root = temp_dir("busy");
    let config = FleetConfig {
        engine_workers: 1,
        max_active: 1,
        park_limit: 0,
        ..FleetConfig::default()
    };
    let registry = ProjectRegistry::open(&root, SIMPLE, config).unwrap();
    let (fleet, _join) = spawn_fleet::<NullExecutor>(registry);

    let sess_a = fleet.session();
    let sess_b = fleet.session();
    assert!(!attach(&sess_a, "hot", true).is_error());
    assert!(!attach(&sess_b, "cold", true).is_error());
    // Occupy the only slot.
    assert!(!sess_a.call(checkin("A", "warm it up".into())).is_error());
    // The cold tenant cannot park: park_limit is zero.
    let resp = sess_b.call(checkin("B", "no room".into()));
    assert!(
        matches!(resp, Response::Error(ApiError::ProjectBusy { ref project }) if project == "cold"),
        "{resp:?}"
    );
    // The hot tenant is unaffected.
    assert!(!sess_a.call(Request::ProcessAll).is_error());
}

// ---------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------

/// Panics inside `boom` invocations — the poisoning fault injector.
#[derive(Debug, Default)]
struct PanicExecutor;

impl ScriptExecutor for PanicExecutor {
    fn execute(
        &mut self,
        invocation: &ScriptInvocation,
        _ctx: &mut ToolCtx<'_>,
    ) -> Vec<EventMessage> {
        assert_ne!(invocation.script, "boom", "injected interpreter panic");
        Vec::new()
    }
}

/// `doc` check-ins are harmless; `HDL_model` check-ins detonate on the
/// next queue drain.
const BOOM_BP: &str = r#"
    blueprint boomfleet
    view default
        property uptodate default true
    endview
    view HDL_model
        when ckin do exec boom "$oid" done
    endview
    view doc endview
    endblueprint
"#;

/// A panicking interpreter poisons exactly one project: the request gets
/// a structured `project-poisoned`, sibling tenants on the same worker
/// keep answering, and the victim itself re-activates from its journal
/// on the next request.
#[test]
fn a_panic_poisons_one_project_not_the_fleet() {
    let root = temp_dir("poison");
    let config = FleetConfig {
        engine_workers: 1,
        ..FleetConfig::default()
    };
    let registry = ProjectRegistry::open(&root, BOOM_BP, config).unwrap();
    let (fleet, _join) = spawn_fleet::<PanicExecutor>(registry);
    let counters = fleet.counters();

    let victim = fleet.session();
    let bystander = fleet.session();
    assert!(!attach(&victim, "victim", true).is_error());
    assert!(!attach(&bystander, "bystander", true).is_error());

    // Seed both tenants with durable, harmless state first.
    let resp = victim.call(Request::Checkin {
        block: "V".into(),
        view: "doc".into(),
        user: "yves".into(),
        payload: b"safe".to_vec(),
    });
    assert!(!resp.is_error(), "{resp:?}");
    assert!(!bystander
        .call(Request::Checkin {
            block: "B".into(),
            view: "doc".into(),
            user: "yves".into(),
            payload: b"safe".to_vec(),
        })
        .is_error());

    // Detonate: the HDL check-in queues a `ckin` event whose rule execs
    // `boom`; the drain panics inside the interpreter.
    assert!(!victim.call(checkin("V", "tick".into())).is_error());
    let resp = victim.call(Request::ProcessAll);
    assert!(
        matches!(resp, Response::Error(ApiError::ProjectPoisoned { ref project }) if project == "victim"),
        "{resp:?}"
    );
    let evictions_after_panic = counters.evictions.load(Ordering::Relaxed);
    assert!(evictions_after_panic >= 1, "poisoning counts as eviction");

    // The bystander on the same worker thread is untouched.
    let resp = bystander.call(Request::ProcessAll);
    assert!(!resp.is_error(), "bystander was poisoned too: {resp:?}");

    // The victim re-activates from its journal on the next request: the
    // durable prefix (the doc check-in) survived the crash.
    let Response::Stat { stat } = victim.call(Request::Stat) else {
        panic!("victim never came back");
    };
    assert!(stat.oids >= 1, "recovered image lost the durable check-in");
    assert!(counters.activations.load(Ordering::Relaxed) >= 3);
}

// ---------------------------------------------------------------------
// Acceptance: 100 tenants, 8 slots, one listener
// ---------------------------------------------------------------------

/// The headline scenario: a hundred registered tenants served through
/// eight residency slots over a single TCP listener, client connections
/// interleaving across all of them — every tenant's final image must be
/// byte-identical to a dedicated server, with the LRU cycle provably
/// exercised (counters) along the way.
#[test]
fn hundred_tenants_eight_slots_one_listener() {
    let root = temp_dir("hundred");
    let out = temp_dir("hundred-out");
    const TENANTS: usize = 100;
    const ROUNDS: usize = 2;
    let config = FleetConfig {
        engine_workers: 4,
        max_active: 8,
        ..FleetConfig::default()
    };
    let mut registry = ProjectRegistry::open(&root, SIMPLE, config).unwrap();
    for t in 0..TENANTS {
        assert!(registry.register(&format!("t{t:03}")).unwrap());
    }
    let (fleet, _join) = spawn_fleet::<NullExecutor>(registry);
    let counters = fleet.counters();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let front = fleet.clone();
    std::thread::spawn(move || {
        let _ = serve_with(listener, || front.session(), None);
    });

    let streams: Vec<Vec<Request>> = (0..TENANTS).map(|t| tenant_stream(t, ROUNDS)).collect();
    let depth = streams[0].len();

    // Four connections, each owning a quarter of the tenant roster and
    // re-attaching as it walks its share — all four run concurrently, so
    // the listener multiplexes live traffic for the whole fleet at once.
    let clients: Vec<std::thread::JoinHandle<()>> = (0..4)
        .map(|c| {
            let streams = streams.clone();
            std::thread::spawn(move || {
                let mut wire = RemoteWrapper::connect(addr, format!("client-{c}")).unwrap();
                #[allow(clippy::needless_range_loop)] // step-major interleave
                for step in 0..depth {
                    for t in (0..TENANTS).filter(|t| t % 4 == c) {
                        let resp = wire.attach(format!("t{t:03}"), false).unwrap();
                        assert!(!resp.is_error(), "{resp:?}");
                        let resp = wire.request(&streams[t][step]).unwrap();
                        assert!(!resp.is_error(), "tenant {t} step {step}: {resp:?}");
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }

    // The LRU cycle ran hard: far more activations than the roster size
    // means tenants were evicted and brought back repeatedly.
    let activations = counters.activations.load(Ordering::Relaxed);
    let evictions = counters.evictions.load(Ordering::Relaxed);
    assert!(
        activations >= TENANTS as u64 + 50,
        "only {activations} activations across {TENANTS} tenants"
    );
    assert!(
        evictions >= 50,
        "only {evictions} evictions with 8 slots for {TENANTS} tenants"
    );

    // The fleet gauges agree with the config.
    let session = fleet.session();
    assert!(!attach(&session, "t000", false).is_error());
    let Response::Stat { stat } = session.call(Request::Stat) else {
        panic!("no stat");
    };
    assert_eq!(stat.resident_projects, TENANTS as u64);
    assert!(stat.active_projects <= 8);
    let Response::Projects { entries } = session.call(Request::ListProjects) else {
        panic!("no listing");
    };
    assert_eq!(entries.len(), TENANTS);
    assert!(entries.iter().filter(|e| e.active).count() <= 8);

    // Byte-identity for every tenant against a dedicated server.
    #[allow(clippy::needless_range_loop)] // `t` names the tenant, not just an index
    for t in 0..TENANTS {
        let name = format!("t{t:03}");
        assert!(!attach(&session, &name, false).is_error());
        let fleet_path = out.join(format!("fleet-{name}.dpr"));
        let resp = session.call(Request::SaveProject {
            path: fleet_path.display().to_string(),
        });
        assert!(matches!(resp, Response::Ok), "{resp:?}");
        let dedicated = dedicated_image(&streams[t], &out.join(format!("solo-{name}.dpr")));
        let via_fleet = std::fs::read_to_string(&fleet_path).unwrap();
        assert_eq!(via_fleet, dedicated, "tenant {name} image diverged");
    }
}

//! Golden execution traces (ISSUE 7): every `flows` scenario is run with
//! trace retention on and its drained [`TraceRecord`] stream is diffed
//! against a committed fixture, line by line. A trace is the complete
//! causal story of a drain — begin/deliver/write/fire/invoke/end — so
//! any change to rule dispatch, propagation order, or wave scheduling
//! shows up here as a readable diff instead of a silent behaviour shift.
//!
//! To regenerate after an *intentional* engine change:
//!
//! ```console
//! $ UPDATE_GOLDEN_TRACES=1 cargo test --test golden_traces
//! $ git diff tests/fixtures/golden_traces/   # review the story change
//! ```

use damocles::core::engine::server::ProjectServer;
use damocles::core::engine::trace::TraceRecord;
use damocles::flows::asic::ASIC_SOURCE;
use damocles::flows::scenario::{play, Step};
use damocles::flows::{DesignSpec, EDTC_LOOSENED_SOURCE, EDTC_SOURCE};

/// Runs a scripted scenario with tracing on and returns the drained
/// trace, one encoded record per line.
fn traced_run(source: &str, steps: &[Step]) -> String {
    let mut server = ProjectServer::from_source(source).expect("scenario blueprint parses");
    // The fixtures pin the sequential trace shape (`lane: None`), so the
    // hardware-parallel default must be opted out of here.
    server.set_wave_workers(1);
    server.set_trace_retention(true);
    play(&mut server, steps).expect("scenario plays cleanly");
    let lines: Vec<String> = server
        .take_trace()
        .iter()
        .map(TraceRecord::encode)
        .collect();
    lines.join("\n") + "\n"
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden_traces")
        .join(format!("{name}.trace"))
}

/// Diffs a freshly produced trace against its committed golden fixture;
/// `UPDATE_GOLDEN_TRACES=1` rewrites the fixture instead.
fn assert_golden(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN_TRACES").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             run `UPDATE_GOLDEN_TRACES=1 cargo test --test golden_traces` to create it",
            path.display()
        )
    });
    if got != want {
        let mut report = String::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                report.push_str(&format!(
                    "  line {}: got  `{g}`\n           want `{w}`\n",
                    i + 1
                ));
            }
        }
        let (gl, wl) = (got.lines().count(), want.lines().count());
        if gl != wl {
            report.push_str(&format!("  length: got {gl} lines, want {wl}\n"));
        }
        panic!(
            "golden trace `{name}` diverged:\n{report}\
             (UPDATE_GOLDEN_TRACES=1 regenerates after an intentional change)"
        );
    }
    // Every drained record must survive the wire codec round trip.
    for line in got.lines() {
        let rec = TraceRecord::decode(line).unwrap_or_else(|e| panic!("`{line}`: {e}"));
        assert_eq!(rec.encode(), line);
    }
}

#[test]
fn edtc_walkthrough_trace_is_golden() {
    // The §3.4 walkthrough: model + schematic, derive link, a second
    // model version invalidating downstream, then a sim result.
    let mut server = ProjectServer::from_source(EDTC_SOURCE).expect("EDTC parses");
    server.set_wave_workers(1); // fixture pins the sequential trace shape
    server.set_trace_retention(true);
    let steps = [
        Step::checkin("CPU", "HDL_model", "yves", b"module cpu v1"),
        Step::checkin("CPU", "schematic", "synth", b"cpu schematic"),
    ];
    play(&mut server, &steps).unwrap();
    let model: damocles::meta::Oid = "CPU,HDL_model,1".parse().unwrap();
    let schematic: damocles::meta::Oid = "CPU,schematic,1".parse().unwrap();
    server.connect_oids(&model, &schematic).unwrap();
    let tail = [
        Step::ProcessAll,
        Step::checkin("CPU", "HDL_model", "yves", b"module cpu v2"),
        Step::ProcessAll,
        Step::post("postEvent hdl_sim up CPU,HDL_model,2 \"good\"", "simulator"),
        Step::ProcessAll,
    ];
    play(&mut server, &tail).unwrap();
    let lines: Vec<String> = server
        .take_trace()
        .iter()
        .map(TraceRecord::encode)
        .collect();
    assert_golden("edtc", &(lines.join("\n") + "\n"));
}

#[test]
fn edtc_loosened_trace_is_golden() {
    // The §3.2 early-phase variant: same walkthrough, looser rules —
    // the golden traces differ exactly where the blueprints differ.
    let got = traced_run(
        EDTC_LOOSENED_SOURCE,
        &[
            Step::checkin("CPU", "HDL_model", "yves", b"module cpu v1"),
            Step::ProcessAll,
            Step::post("postEvent hdl_sim up CPU,HDL_model,1 \"good\"", "simulator"),
            Step::ProcessAll,
        ],
    );
    assert_golden("edtc_loosened", &got);
}

#[test]
fn asic_signoff_trace_is_golden() {
    // The deeper nine-view ASIC flow: a check-in at the head of the
    // derivation chain walks invalidation through every stage.
    let got = traced_run(
        ASIC_SOURCE,
        &[
            Step::checkin("ALU", "rtl", "frontend", b"alu rtl v1"),
            Step::ProcessAll,
            Step::checkin("ALU", "rtl", "frontend", b"alu rtl v2"),
            Step::ProcessAll,
        ],
    );
    assert_golden("asic", &got);
}

#[test]
fn generated_design_trace_is_golden() {
    // A generated tiny design: the blueprint comes from DesignSpec, so
    // this golden pins the generator's rule emission too.
    let spec = DesignSpec::tiny();
    let source = spec.blueprint_source(true);
    let got = traced_run(
        &source,
        &[
            Step::checkin(
                &DesignSpec::block_name(0),
                &DesignSpec::view_name(0),
                "gen",
                b"d0",
            ),
            Step::checkin(
                &DesignSpec::block_name(1),
                &DesignSpec::view_name(0),
                "gen",
                b"d1",
            ),
            Step::ProcessAll,
        ],
    );
    assert_golden("generated_tiny", &got);
}

#[test]
fn sequential_and_sharded_traces_tell_the_same_story() {
    // The sharded wave path stamps lane/shard on `begin` records but
    // must deliver the same causal steps. Compare with lanes scrubbed.
    let steps = [
        Step::checkin("CPU", "HDL_model", "yves", b"v1"),
        Step::checkin("GPU", "HDL_model", "ada", b"v1"),
        Step::checkin("DSP", "HDL_model", "lin", b"v1"),
        Step::ProcessAll,
    ];
    let sequential = traced_run(EDTC_SOURCE, &steps);

    let mut server = ProjectServer::from_source(EDTC_SOURCE).unwrap();
    server.set_trace_retention(true);
    server.set_wave_workers(3);
    play(&mut server, &steps).unwrap();
    let sharded: Vec<String> = server
        .take_trace()
        .iter()
        .map(|r| match r {
            TraceRecord::Begin {
                event,
                target,
                user,
                clock,
                ..
            } => TraceRecord::Begin {
                event: event.clone(),
                target: target.clone(),
                user: user.clone(),
                clock: *clock,
                lane: None,
                shard: None,
            }
            .encode(),
            other => other.encode(),
        })
        .collect();
    assert_eq!(sequential.trim_end(), sharded.join("\n"));
}

//! HA failover chaos suite (ISSUE 9): kill the leader **process** at a
//! seed-chosen request index, promote the most-caught-up follower under
//! a fenced term, and prove that leader-chasing clients finish the
//! workload with a final image **byte-identical** to an uninterrupted
//! run — exactly-once effects across the crash. A revived stale leader
//! is fenced and refused, and replica trees re-parent through a
//! follower's own fan-out hub.
//!
//! The chaos seed comes from `DAMOCLES_CHAOS_SEED` (decimal) and is
//! printed up front, so any CI failure is replayable with
//! `DAMOCLES_CHAOS_SEED=<seed> cargo test --test failover`.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use damocles::core::engine::api::{ApiError, NodeRole, Request, Response};
use damocles::core::engine::follower::{spawn_follower_loop, FollowerHandle, FollowerMsg};
use damocles::core::engine::service::ProjectService;
use damocles::core::engine::service::{serve_listener, serve_with, spawn_project_loop};
use damocles::prelude::*;
use damocles::tools::remote::{LeaderClient, ReconnectPolicy, RemoteWrapper, TailHandshake};
use damocles_meta::Oid;

const BLUEPRINT: &str = r#"
    blueprint failover
    view default
        property uptodate default true
        when ckin do uptodate = true; post outofdate down done
        when outofdate do uptodate = false done
    endview
    view HDL_model endview
    view schematic
        link_from HDL_model move propagates outofdate type derived
    endview
    endblueprint
"#;

/// Workload size: distinct blocks, alternating views, periodic drains.
const WORKLOAD: usize = 40;

// ---------------------------------------------------------------------
// Seeded randomness (xorshift64*): deterministic per seed, no deps.
// ---------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo)
    }
}

fn chaos_seed() -> u64 {
    std::env::var("DAMOCLES_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0xDA40_C1E5)
}

// ---------------------------------------------------------------------
// Process-level nodes: the real `damocles_server` binary over real TCP.
// ---------------------------------------------------------------------

/// One spawned server process; SIGKILLed on drop so a failed assertion
/// never leaks children.
struct Node {
    child: Child,
    addr: String,
    tag: &'static str,
}

impl Node {
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawns `damocles_server` with `extra` args on an ephemeral port and
/// parses the bound address off its stderr banner; remaining stderr is
/// drained to the test's stderr under `tag` (visible on failure).
fn spawn_node(blueprint: &std::path::Path, extra: &[String], tag: &'static str) -> Node {
    let mut child = Command::new(env!("CARGO_BIN_EXE_damocles_server"))
        .arg(blueprint)
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn damocles_server");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let mut addr = None;
    for line in lines.by_ref() {
        let line = line.expect("node stderr");
        eprintln!("[{tag}] {line}");
        // Leader banner: "listening on <addr> …"; follower banner:
        // "following <leader>; read-only front door on <addr>".
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = rest.split_whitespace().next().map(str::to_string);
            break;
        }
        if let Some((_, rest)) = line.split_once("front door on ") {
            addr = rest.split_whitespace().next().map(str::to_string);
            break;
        }
    }
    let addr = addr.expect("node printed its bound address");
    std::thread::spawn(move || {
        for line in lines.map_while(Result::ok) {
            eprintln!("[{tag}] {line}");
        }
    });
    Node { child, addr, tag }
}

fn blueprint_file(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("failover.bp");
    std::fs::write(&path, BLUEPRINT).expect("write blueprint");
    path
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("damocles-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk test dir");
    dir
}

// ---------------------------------------------------------------------
// Workload: deterministic request sequence, exactly-once across crashes.
// ---------------------------------------------------------------------

fn workload_request(i: usize) -> Request {
    if i % 5 == 4 {
        Request::ProcessAll
    } else {
        let view = if i.is_multiple_of(2) {
            "HDL_model"
        } else {
            "schematic"
        };
        Request::Checkin {
            block: format!("blk{i}"),
            view: view.into(),
            user: "chaos".into(),
            payload: vec![i as u8],
        }
    }
}

/// The OID a workload check-in creates — used to detect whether an
/// ambiguous (crashed mid-request) mutation actually committed.
fn workload_oid(i: usize) -> Option<Oid> {
    if i % 5 == 4 {
        None
    } else {
        let view = if i.is_multiple_of(2) {
            "HDL_model"
        } else {
            "schematic"
        };
        Some(Oid::new(format!("blk{i}"), view, 1))
    }
}

/// Issues workload request `i` exactly once: an ambiguous transport
/// error on a check-in is resolved by asking the current leader whether
/// the version landed (detectable-idempotence); `process` is re-issued
/// freely (draining is idempotent in this sequential workload).
fn issue_exactly_once(client: &mut LeaderClient, check: &mut RemoteWrapper, i: usize) {
    let request = workload_request(i);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(
            Instant::now() < deadline,
            "workload request {i} did not land within 30s"
        );
        match client.call(&request) {
            Ok(Response::Created { .. } | Response::Processed { .. }) => return,
            Ok(Response::Error(e)) => panic!("workload request {i} refused: {e}"),
            Ok(other) => panic!("workload request {i}: unexpected {other:?}"),
            Err(_) => {
                // Ambiguous or unreachable. For a check-in, ask the
                // leader whether it landed before re-issuing.
                if let Some(oid) = workload_oid(i) {
                    if let Ok(Response::Props { .. }) = check.request(&Request::Show { oid }) {
                        return; // the crashed leader committed + replicated it
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// The node's committed position + role via its front door.
fn stat_of(addr: &str) -> Option<(u64, u64, u64, NodeRole)> {
    let mut probe = RemoteWrapper::connect(addr, "probe").ok()?;
    match probe.request(&Request::Stat).ok()? {
        Response::Stat { stat } => Some((stat.cursor_epoch, stat.cursor_seq, stat.term, stat.role)),
        _ => None,
    }
}

/// Saves the node's project image through the protocol and reads it back.
fn image_of(addr: &str, path: &std::path::Path) -> String {
    let _ = std::fs::remove_file(path);
    let mut client = RemoteWrapper::connect(addr, "imager").expect("connect for image");
    assert_eq!(
        client
            .request(&Request::SaveProject {
                path: path.display().to_string(),
            })
            .expect("save image"),
        Response::Ok
    );
    std::fs::read_to_string(path).expect("read image")
}

/// The reference run: one leader, no interference, full workload.
fn reference_image(dir: &std::path::Path) -> String {
    let bp = blueprint_file(dir);
    let journal = dir.join("ref-journal");
    let leader = spawn_node(
        &bp,
        &["--journal".into(), journal.display().to_string()],
        "ref-leader",
    );
    let mut client = LeaderClient::new([leader.addr.clone()], "chaos");
    let mut check = RemoteWrapper::connect(&leader.addr, "check").expect("connect checker");
    for i in 0..WORKLOAD {
        issue_exactly_once(&mut client, &mut check, i);
    }
    assert!(matches!(
        client.call(&Request::ProcessAll).expect("final drain"),
        Response::Processed { .. }
    ));
    image_of(&leader.addr, &dir.join("reference.ddb"))
}

/// Kill-the-leader chaos: the workload starts against a live leader with
/// two followers; at a seed-chosen index the leader dies (SIGKILL).
/// The harness promotes the most-caught-up follower under term 2, the
/// leader-chasing client finishes the workload, and the final image is
/// byte-identical to the reference. Finally the dead leader is revived
/// on its own journal, fenced, and refused.
#[test]
fn kill_the_leader_chaos() {
    let seed = chaos_seed();
    eprintln!("chaos seed: {seed} (replay: DAMOCLES_CHAOS_SEED={seed})");
    let mut rng = Rng::new(seed);

    let dir = fresh_dir(&format!("chaos-{seed}"));
    let reference = reference_image(&dir);

    let bp = blueprint_file(&dir);
    let leader_journal = dir.join("leader-journal");
    let mut leader = spawn_node(
        &bp,
        &["--journal".into(), leader_journal.display().to_string()],
        "leader",
    );
    let followers: Vec<Node> = ["follower-a", "follower-b"]
        .iter()
        .map(|tag| spawn_node(&bp, &["--follow".into(), leader.addr.clone()], tag))
        .collect();

    let crash_at = rng.in_range(WORKLOAD / 4, 3 * WORKLOAD / 4);
    eprintln!("[harness] leader dies before request {crash_at}");

    let mut client = LeaderClient::new(
        std::iter::once(leader.addr.clone()).chain(followers.iter().map(|f| f.addr.clone())),
        "chaos",
    )
    .with_policy(ReconnectPolicy {
        max_attempts: 12,
        base_delay: Duration::from_millis(25),
        multiplier: 2,
    });
    let mut check = RemoteWrapper::connect(&leader.addr, "check").expect("connect checker");

    for i in 0..crash_at {
        issue_exactly_once(&mut client, &mut check, i);
    }

    // ------------------------------------------------------------------
    // CRASH. No shutdown, no flush: SIGKILL mid-reign.
    // ------------------------------------------------------------------
    leader.kill();
    eprintln!("[harness] leader killed");

    // Let the followers drain whatever the dead leader had streamed,
    // then promote the most-caught-up one under term 2.
    let promoted_addr = {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut best: Option<(u64, u64, &str)> = None;
        let mut settled = 0;
        let mut last: Vec<(u64, u64)> = Vec::new();
        while Instant::now() < deadline && settled < 3 {
            let cursors: Vec<(u64, u64)> = followers
                .iter()
                .map(|f| stat_of(&f.addr).map_or((0, 0), |(e, s, _, _)| (e, s)))
                .collect();
            settled = if cursors == last { settled + 1 } else { 0 };
            last = cursors;
            std::thread::sleep(Duration::from_millis(100));
        }
        for f in &followers {
            if let Some((epoch, seq, _, _)) = stat_of(&f.addr) {
                eprintln!("[harness] {} at cursor ({epoch}, {seq})", f.tag);
                if best.is_none() || (epoch, seq) > (best.unwrap().0, best.unwrap().1) {
                    best = Some((epoch, seq, &f.addr));
                }
            }
        }
        best.expect("at least one follower answered stat").2
    };
    let mut promoter = RemoteWrapper::connect(promoted_addr, "operator").expect("connect promoter");
    let promoted_journal = dir.join("promoted-journal");
    match promoter
        .request(&Request::Promote {
            dir: promoted_journal.display().to_string(),
            every: 1_000_000,
            term: 2,
        })
        .expect("promote rpc")
    {
        Response::Promoted { epoch, term } => {
            eprintln!("[harness] promoted {promoted_addr}: epoch {epoch}, term {term}");
            assert_eq!(term, 2);
        }
        other => panic!("promotion refused: {other:?}"),
    }
    // Ambiguity checks now consult the NEW leader.
    check = RemoteWrapper::connect(promoted_addr, "check").expect("connect new checker");

    // The chased client finishes the workload against the new reign.
    for i in crash_at..WORKLOAD {
        issue_exactly_once(&mut client, &mut check, i);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.call(&Request::ProcessAll) {
            Ok(Response::Processed { .. }) => break,
            Ok(other) => panic!("final drain: unexpected {other:?}"),
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => panic!("final drain never landed: {e}"),
        }
    }

    // The new reign's image is byte-identical to the uninterrupted run.
    let after = image_of(promoted_addr, &dir.join("after-failover.ddb"));
    assert_eq!(
        after, reference,
        "post-failover image diverged from the uninterrupted reference (seed {seed})"
    );
    let (_, _, term, role) = stat_of(promoted_addr).expect("promoted stat");
    assert_eq!((term, role), (2, NodeRole::Leader));

    // ------------------------------------------------------------------
    // Split-brain epilogue: the dead leader comes back on its own
    // journal, still believing it leads term 1. Fencing deposes it: all
    // further mutations are refused with the structured stale-term error.
    // ------------------------------------------------------------------
    let revived = spawn_node(
        &bp,
        &[
            "--journal".into(),
            leader_journal.display().to_string(),
            "--every".into(),
            "1000000".into(),
        ],
        "revived-leader",
    );
    let mut zombie = RemoteWrapper::connect(&revived.addr, "zombie").expect("connect revived");
    assert_eq!(
        zombie.request(&Request::Fence { term: 2 }).expect("fence"),
        Response::Ok
    );
    match zombie
        .request(&workload_request(0))
        .expect("zombie mutation rpc")
    {
        Response::Error(ApiError::StaleTerm {
            term: 1,
            current: 2,
        }) => {}
        other => panic!("revived stale leader was not refused: {other:?}"),
    }
    // The fenced zombie's clients get chased to nowhere — but a
    // LeaderClient seeded with the real fleet still finds the leader.
    let mut rescued = LeaderClient::new([revived.addr.clone(), promoted_addr.to_string()], "chaos")
        .with_policy(ReconnectPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(10),
            multiplier: 2,
        });
    assert!(matches!(
        rescued
            .call(&Request::ProcessAll)
            .expect("chase past the fence"),
        Response::Processed { .. }
    ));

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Replica trees: a follower's follower, fed through the middle node's
// own fan-out hub (in-process; the tree transport minus the sockets is
// already covered by unit tests, this drives the real TCP handshake).
// ---------------------------------------------------------------------

/// Chained replication over real TCP: leader → follower A → follower B.
/// B tails A's front door exactly as A tails the leader's, and reaches
/// the leader's image byte-identically through the middle hop.
#[test]
fn replica_tree_fans_out_through_a_follower() {
    let mut leader: ProjectService = ProjectService::new();
    assert!(!leader
        .call(Request::Init {
            source: BLUEPRINT.into()
        })
        .is_error());
    let dir = fresh_dir("tree");
    assert!(matches!(
        leader.call(Request::EnableJournal {
            dir: dir.display().to_string(),
            every: 1_000_000,
        }),
        Response::Epoch { .. }
    ));
    let leader_listener = TcpListener::bind("127.0.0.1:0").expect("bind leader");
    let leader_addr = leader_listener.local_addr().unwrap().to_string();
    let (leader_handle, _leader_join) = spawn_project_loop(leader);
    {
        let handle = leader_handle.clone();
        std::thread::spawn(move || {
            let _ = serve_listener(leader_listener, &handle);
        });
    }

    // Middle node A: follower loop + fan-out front door (Some(hub)).
    let spawn_tree_follower = |upstream: String, tag: &'static str| {
        let service: ProjectService =
            ProjectService::with_server(ProjectServer::from_source(BLUEPRINT).unwrap());
        let hub = service.tail_hub();
        let (handle, _join) = spawn_follower_loop(service, upstream.clone());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind follower");
        let addr = listener.local_addr().unwrap().to_string();
        {
            let front = handle.clone();
            std::thread::spawn(move || {
                let _ = serve_with(listener, || front.session(), Some(hub));
            });
        }
        spawn_tree_pump(upstream, handle.clone(), tag);
        (handle, addr)
    };
    let (follower_a, addr_a) = spawn_tree_follower(leader_addr.clone(), "tree-a");
    let (follower_b, _addr_b) = spawn_tree_follower(addr_a, "tree-b");

    // Mutate the leader; the records must reach B *through* A.
    let mut writer = RemoteWrapper::connect(&leader_addr, "writer").expect("connect leader");
    for i in 0..6 {
        assert!(matches!(
            writer
                .request(&Request::Checkin {
                    block: format!("tree{i}"),
                    view: "HDL_model".into(),
                    user: "yves".into(),
                    payload: vec![i],
                })
                .unwrap(),
            Response::Created { .. }
        ));
    }
    assert!(matches!(
        writer.request(&Request::ProcessAll).unwrap(),
        Response::Processed { .. }
    ));
    let (epoch, seq) = match writer.request(&Request::Stat).unwrap() {
        Response::Stat { stat } => (
            stat.journal_epoch.expect("journaling on"),
            stat.journal_records.expect("journaling on"),
        ),
        other => panic!("{other:?}"),
    };
    assert!(
        follower_a
            .status()
            .wait_applied(epoch, seq, Duration::from_secs(10)),
        "A caught up; at {:?}",
        follower_a.status().cursor()
    );
    assert!(
        follower_b
            .status()
            .wait_applied(epoch, seq, Duration::from_secs(10)),
        "B caught up through A; at {:?}",
        follower_b.status().cursor()
    );
    assert_eq!(
        follower_b.image().unwrap(),
        follower_a.image().unwrap(),
        "the leaf replica is byte-identical through the middle hop"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The reconnecting tail pump (the `--follow` wiring), reusable against
/// any upstream front door — leader or fellow follower.
fn spawn_tree_pump(upstream: String, handle: FollowerHandle, tag: &'static str) {
    let status = handle.status();
    let feed = handle.feed();
    std::thread::spawn(move || loop {
        if status.promoted() {
            return;
        }
        let (epoch, seq) = status.handshake_cursor();
        let outcome = RemoteWrapper::connect(&upstream, tag)
            .and_then(|wrapper| wrapper.tail_from(epoch, seq));
        match outcome {
            Ok(TailHandshake::Accepted { mut stream, .. }) => loop {
                match stream.next_frame() {
                    Ok(frame) => {
                        if feed.send(FollowerMsg::Frame(frame)).is_err() {
                            return;
                        }
                        if status.needs_reset() {
                            break;
                        }
                    }
                    Err(e) => {
                        if feed
                            .send(FollowerMsg::LeaderGone {
                                reason: e.to_string(),
                            })
                            .is_err()
                        {
                            return;
                        }
                        break;
                    }
                }
            },
            Ok(TailHandshake::Refused(_)) | Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(100));
    });
}

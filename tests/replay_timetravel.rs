//! Property test for deterministic replay (ISSUE 7): drive a journaling
//! server with a random designer-activity stream, photograph the project
//! image at every cursor along the way, then ask `replay_at` for each of
//! those cursors — every reconstruction must be **byte-identical** to the
//! image that was live when the cursor was the head of the journal.
//!
//! This is the property that makes "journal dir + cursor" a complete bug
//! report: any historical state can be re-materialized exactly, long
//! after the live server has moved on.

use proptest::prelude::*;

use damocles::core::engine::server::{replay_dir, ProjectServer};
use damocles::flows::EDTC_SOURCE;

/// One random designer action against the EDTC project.
#[derive(Debug, Clone)]
enum Action {
    /// Check in a new version of `block`'s HDL model or schematic.
    Checkin { block: u8, schematic: bool },
    /// Post a simulation result to an already-created model (modulo).
    Post { target: u8, result: u8 },
    /// Drain the queue.
    Process,
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..4, any::<bool>()).prop_map(|(block, schematic)| Action::Checkin { block, schematic }),
        (any::<u8>(), any::<u8>()).prop_map(|(target, result)| Action::Post { target, result }),
        Just(Action::Process),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_cursor_replays_byte_identically(actions in proptest::collection::vec(action(), 1..24)) {
        let dir = std::env::temp_dir().join(format!(
            "damocles-replay-prop-{}-{:x}",
            std::process::id(),
            // Distinct per proptest case: hash the action shapes.
            actions.iter().enumerate().fold(0u64, |h, (i, a)| {
                h.wrapping_mul(31).wrapping_add(i as u64 + match a {
                    Action::Checkin { block, schematic } =>
                        u64::from(*block) * 2 + u64::from(*schematic),
                    Action::Post { target, result } =>
                        100 + u64::from(*target) + u64::from(*result) * 7,
                    Action::Process => 999,
                })
            })
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut server = ProjectServer::from_source(EDTC_SOURCE).expect("EDTC parses");
        let epoch = server
            .enable_journal(&dir, 1_000_000)
            .expect("journaling starts");
        let mut models: Vec<String> = Vec::new();

        // Photograph (cursor, image) after every applied action.
        let mut film: Vec<(u64, String)> = Vec::new();
        let mut snap = |server: &mut ProjectServer| {
            server.flush_journal().expect("flush");
            let seq = server.journal_records().unwrap();
            film.push((seq, server.project_image()));
        };
        snap(&mut server);
        for act in &actions {
            match act {
                Action::Checkin { block, schematic } => {
                    let view = if *schematic { "schematic" } else { "HDL_model" };
                    let oid = server
                        .checkin(&format!("blk{block}"), view, "prop", b"data".to_vec())
                        .expect("checkin");
                    if !*schematic {
                        models.push(oid.to_string());
                    }
                }
                Action::Post { target, result } => {
                    if models.is_empty() {
                        continue;
                    }
                    let oid = &models[*target as usize % models.len()];
                    server
                        .post_line(
                            &format!("postEvent hdl_sim up {oid} \"run {result}\""),
                            "sim",
                        )
                        .expect("post");
                }
                Action::Process => {
                    server.process_all().expect("process");
                }
            }
            snap(&mut server);
        }

        // Time travel: every photographed cursor must replay to the very
        // bytes that were live at that moment — via the live server...
        for (seq, image) in &film {
            let (_, replayed) = server.replay_at(epoch, *seq).expect("replay_at");
            prop_assert_eq!(&replayed, image, "live replay at seq {} diverged", seq);
        }
        // ...and offline from the directory at rest, as `damocles_inspect`
        // and `damocles_server --replay-until` read it.
        let (last_seq, last_image) = film.last().unwrap();
        let (_, offline) = replay_dir(&dir, epoch, *last_seq).expect("replay_dir");
        prop_assert_eq!(&offline, last_image, "offline replay diverged");
        // A cursor past the journal is a positioned error, not garbage.
        prop_assert!(server.replay_at(epoch, last_seq + 1).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Soak test: a long seeded random workload through the automated tool
//! chain with fault injection, asserting global invariants at the end.

use damocles::prelude::*;
use damocles::tools::design_data;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const AUTOMATED: &str = r#"
blueprint soak
view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
    when ckin do exec synthesizer "$oid" done
endview
view schematic
    property nl_sim_res default bad
    link_from HDL_model move propagates outofdate type derived
    use_link move propagates outofdate
    when nl_sim do nl_sim_res = $arg done
    when ckin do exec netlister "$oid" done
endview
view netlist
    property sim_result default bad
    link_from schematic move propagates nl_sim, outofdate type derived
    when nl_sim do sim_result = $arg done
    when ckin do exec simulator "$oid" done
endview
endblueprint
"#;

#[test]
fn hundred_generations_with_faults_stay_consistent() {
    let bp = damocles::core::parse(AUTOMATED).unwrap();
    let executor = ToolExecutor::standard(FaultPlan::new(17, 0.15));
    let mut server = ProjectServer::with_executor(bp, executor).unwrap();
    let mut rng = StdRng::seed_from_u64(99);

    let blocks = ["CPU", "DSP", "MMU"];
    for generation in 1..=100u32 {
        let block = blocks[rng.gen_range(0..blocks.len())];
        let buggy = rng.gen_bool(0.3);
        let subs: &[&str] = if rng.gen_bool(0.5) { &["SUB"] } else { &[] };
        server
            .checkin(
                block,
                "HDL_model",
                "soak",
                design_data::hdl_source(block, generation, subs, buggy),
            )
            .unwrap();
        let report = server.process_all().unwrap();
        assert!(report.events > 0);
        assert_eq!(server.pending_events(), 0, "queue fully drained");
    }

    // Invariants over the whole database.
    let db = server.db();
    assert!(db.oid_count() > 300, "three views × many generations");
    for (_, entry) in db.iter_oids() {
        // Every object got its template properties.
        let fresh = entry.props.get("uptodate").expect("uptodate templated");
        assert!(matches!(fresh, Value::Bool(_)));
    }
    // Version chains are contiguous from 1.
    for block in blocks {
        for view in ["HDL_model", "schematic", "netlist"] {
            let versions = db.versions(block, view);
            if versions.is_empty() {
                continue;
            }
            let expected: Vec<u32> = (1..=versions.len() as u32).collect();
            assert_eq!(versions, expected, "{block}.{view} chain has holes");
        }
    }
    // Every netlist's latest generation matches its schematic lineage.
    for block in blocks {
        let (Some(net), Some(sch)) = (
            db.latest_version(block, "netlist"),
            db.latest_version(block, "schematic"),
        ) else {
            continue;
        };
        let net_payload = server.workspace().datum(net).unwrap().content.clone();
        let sch_payload = server.workspace().datum(sch).unwrap().content.clone();
        assert!(
            design_data::derived_from("netlist", &net_payload, &sch_payload),
            "{block}'s latest netlist must derive from its latest schematic"
        );
    }
    // The audit counters are plausible: every event delivered at least once.
    let summary = server.audit().summary();
    assert!(summary.deliveries >= 100);
    assert!(summary.templates as usize >= db.oid_count());
}

#[test]
fn alternating_loose_and_strict_phases_keep_state_sane() {
    let spec = damocles::flows::DesignSpec {
        stages: 4,
        blocks: 6,
        fanout: 2,
    };
    let strict_src = spec.blueprint_source(true);
    let loose_src = spec.blueprint_source(false);
    let mut server = ProjectServer::from_source(&strict_src).unwrap();
    damocles::flows::populate(&mut server, &spec).unwrap();

    let mut rng = StdRng::seed_from_u64(5);
    for phase in 0..6 {
        // Re-initialize the BluePrint between phases (§3.2).
        server
            .reinit_from_source(if phase % 2 == 0 {
                &strict_src
            } else {
                &loose_src
            })
            .unwrap();
        for _ in 0..10 {
            let block = damocles::flows::DesignSpec::block_name(rng.gen_range(0..spec.blocks));
            let view = damocles::flows::DesignSpec::view_name(rng.gen_range(0..spec.stages));
            server
                .checkin(&block, &view, "soak", b"data".to_vec())
                .unwrap();
            server.process_all().unwrap();
        }
    }
    assert_eq!(server.pending_events(), 0);
    // All uptodate values are booleans and queries still work.
    let stale = server.query().out_of_date("uptodate");
    for id in stale {
        assert!(server.db().is_live(id));
    }
}

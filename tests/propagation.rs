//! Experiment PROP (integration side): change-propagation semantics across
//! generated designs — selectivity, direction, reach, loosened blueprints,
//! and termination on adversarial graphs.

use damocles::flows::{generator, ActivityStream, DesignSpec};
use damocles::prelude::*;
use proptest::prelude::*;

fn strict_server(spec: &DesignSpec) -> ProjectServer {
    let mut server = ProjectServer::from_source(&spec.blueprint_source(true)).unwrap();
    generator::populate(&mut server, spec).unwrap();
    server
}

#[test]
fn propagation_reach_equals_downstream_closure() {
    let spec = DesignSpec {
        stages: 4,
        blocks: 7,
        fanout: 2,
    };
    let mut server = strict_server(&spec);

    // Check in blk3 at stage v1; everything transitively downstream of it —
    // derivations of blk3 at v2/v3 plus hierarchy descendants at each of
    // those stages — must go stale, and nothing else.
    let target_block = 3usize;
    server
        .checkin(
            &DesignSpec::block_name(target_block),
            &DesignSpec::view_name(1),
            "d",
            b"new".to_vec(),
        )
        .unwrap();
    server.process_all().unwrap();

    // Expected stale set computed independently from the spec's tree shape.
    let mut expected: std::collections::BTreeSet<(usize, usize)> = Default::default();
    // hierarchy descendants of a block (inclusive).
    fn descendants(spec: &DesignSpec, root: usize) -> Vec<usize> {
        let mut out = vec![root];
        let mut i = 0;
        while i < out.len() {
            let parent = out[i];
            for b in 0..spec.blocks {
                if spec.parent_of(b) == Some(parent) {
                    out.push(b);
                }
            }
            i += 1;
        }
        out
    }
    // stage 1: strict hierarchy descendants (the checked-in node itself is
    // fresh); stages 2..: the block's whole subtree including itself.
    for b in descendants(&spec, target_block) {
        if b != target_block {
            expected.insert((1, b));
        }
        for stage in 2..spec.stages {
            expected.insert((stage, b));
        }
    }

    let stale: std::collections::BTreeSet<(usize, usize)> = server
        .query()
        .out_of_date("uptodate")
        .into_iter()
        .map(|id| {
            let oid = server.db().oid(id).unwrap();
            let stage: usize = oid.view.as_str()[1..].parse().unwrap();
            let block: usize = oid.block.as_str()[3..].parse().unwrap();
            (stage, block)
        })
        .collect();

    assert_eq!(stale, expected);
}

#[test]
fn loosened_blueprint_propagates_nothing() {
    let spec = DesignSpec {
        stages: 4,
        blocks: 7,
        fanout: 2,
    };
    let mut server = ProjectServer::from_source(&spec.blueprint_source(false)).unwrap();
    generator::populate(&mut server, &spec).unwrap();
    server.reset_audit();

    server.checkin("blk0", "v0", "d", b"new".to_vec()).unwrap();
    server.process_all().unwrap();
    assert_eq!(server.audit().summary().propagations, 0);
    assert!(server.query().out_of_date("uptodate").is_empty());
}

#[test]
fn deep_chain_propagation_reaches_the_sink() {
    let spec = DesignSpec {
        stages: 10,
        blocks: 1,
        fanout: 1,
    };
    let mut server = strict_server(&spec);
    server.checkin("blk0", "v0", "d", b"new".to_vec()).unwrap();
    server.process_all().unwrap();
    let stale = server.query().out_of_date("uptodate");
    assert_eq!(stale.len(), 9, "all nine downstream stages stale");
}

#[test]
fn sibling_subtrees_are_untouched() {
    let spec = DesignSpec {
        stages: 2,
        blocks: 7,
        fanout: 2,
    };
    let mut server = strict_server(&spec);
    // blk1 and blk2 are siblings under blk0. A change to blk1 must never
    // stale blk2's subtree.
    server.checkin("blk1", "v0", "d", b"new".to_vec()).unwrap();
    server.process_all().unwrap();
    let stale_blocks: Vec<String> = server
        .query()
        .out_of_date("uptodate")
        .into_iter()
        .map(|id| server.db().oid(id).unwrap().block.to_string())
        .collect();
    assert!(!stale_blocks.contains(&"blk2".to_string()));
    assert!(!stale_blocks.contains(&"blk0".to_string()));
}

#[test]
fn direction_selects_one_side_of_the_links() {
    // "The events … can be propagated in either direction through the Link"
    // (§2) — the *message* carries the direction. Posting `outofdate up` at
    // the middle of a chain reaches the middle and everything upstream, but
    // never the downstream side; `down` is the mirror image.
    let spec = DesignSpec {
        stages: 3,
        blocks: 1,
        fanout: 1,
    };
    let mut server = strict_server(&spec);
    let middle = Oid::new("blk0", "v1", 1);
    server
        .post_line(&format!("postEvent outofdate up {middle}"), "d")
        .unwrap();
    server.process_all().unwrap();
    assert_eq!(
        server.prop(&Oid::new("blk0", "v0", 1), "uptodate").unwrap(),
        Value::Bool(false),
        "up travels to the source"
    );
    assert_eq!(
        server.prop(&middle, "uptodate").unwrap(),
        Value::Bool(false)
    );
    assert_eq!(
        server.prop(&Oid::new("blk0", "v2", 1), "uptodate").unwrap(),
        Value::Bool(true),
        "up must not leak downstream"
    );
}

#[test]
fn adversarial_cycle_terminates() {
    // Hand-build a cyclic link graph (equivalence both ways) under a
    // blueprint that relays the event onward — the cycle guard must hold.
    let mut server = ProjectServer::from_source(
        r#"blueprint cyc
        view a
            property hits default 0
            link_from b propagates ping type equivalence
            when ping do hits = 1; post ping down done
        endview
        view b
            property hits default 0
            link_from a propagates ping type equivalence
            when ping do hits = 1; post ping up done
        endview
        endblueprint"#,
    )
    .unwrap();
    let x = server.create_object(Oid::new("x", "a", 1)).unwrap();
    let y = server.create_object(Oid::new("y", "b", 1)).unwrap();
    server.connect(y, x).unwrap(); // template orientation b -> a
    server.post_line("postEvent ping down y,b,1", "t").unwrap();
    let report = server.process_all().unwrap();
    assert!(report.deliveries <= 4);
    assert_eq!(
        server.prop(&Oid::new("x", "a", 1), "hits").unwrap(),
        Value::Int(1)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the design shape and activity stream, processing terminates
    /// and every OID's uptodate flag is a boolean.
    #[test]
    fn random_streams_terminate_with_consistent_state(
        stages in 1usize..5,
        blocks in 1usize..9,
        fanout in 1usize..4,
        seed in 0u64..1000,
        n_acts in 1usize..15,
    ) {
        let spec = DesignSpec { stages, blocks, fanout };
        let mut server = strict_server(&spec);
        let mut stream = ActivityStream::new(spec, seed, 0.6);
        for activity in stream.take_activities(n_acts) {
            generator::apply_activity(&mut server, &activity).unwrap();
        }
        prop_assert_eq!(server.pending_events(), 0);
        for (_, entry) in server.db().iter_oids() {
            let v = entry.props.get("uptodate").expect("template applied");
            prop_assert!(matches!(v, Value::Bool(_)));
        }
    }

    /// The freshly checked-in OID is always up to date afterwards.
    #[test]
    fn checkin_always_freshens_its_target(
        seed in 0u64..500,
    ) {
        let spec = DesignSpec::tiny();
        let mut server = strict_server(&spec);
        let mut stream = ActivityStream::new(spec, seed, 1.0);
        for activity in stream.take_activities(8) {
            if let damocles::flows::Activity::Checkin { block, view } = &activity {
                generator::apply_activity(&mut server, &activity).unwrap();
                let latest = server.db().latest_version(block, view).unwrap();
                let fresh = server.db().get_prop(latest, "uptodate").unwrap().unwrap();
                prop_assert_eq!(fresh, &Value::Bool(true));
            }
        }
    }
}

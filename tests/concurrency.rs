//! Concurrent wrapper programs: the paper's wrappers post event messages
//! "through the computer network" from many tools at once; the server folds
//! them into FIFO order. These tests drive the channel path hard.

use damocles::flows::edtc_blueprint;
use damocles::prelude::*;

#[test]
fn many_threads_post_simulation_results() {
    let mut server = ProjectServer::new(edtc_blueprint()).unwrap();
    // 16 blocks, each with an HDL model.
    let oids: Vec<Oid> = (0..16)
        .map(|i| {
            server
                .checkin(&format!("blk{i}"), "HDL_model", "setup", b"m".to_vec())
                .unwrap()
        })
        .collect();
    server.process_all().unwrap();

    // 8 wrapper threads post 50 results each, racing.
    let sender = server.sender();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let tx = sender.clone();
            let oids = oids.clone();
            std::thread::spawn(move || {
                for i in 0..50 {
                    let target = oids[(t * 7 + i) % oids.len()].clone();
                    tx.send(damocles::core::engine::queue::Posted {
                        message: EventMessage::new("hdl_sim", Direction::Up, target)
                            .with_arg(format!("run-{t}-{i}")),
                        user: format!("sim{t}"),
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let report = server.process_all().unwrap();
    assert_eq!(report.events, 400);
    assert_eq!(server.pending_events(), 0);
    // Every model ended with *some* thread's verdict.
    for oid in &oids {
        let verdict = server.prop(oid, "sim_result").unwrap().as_atom();
        assert!(verdict.starts_with("run-"), "{oid}: {verdict}");
    }
    // Exactly 400 deliveries (hdl_sim does not propagate anywhere).
    assert_eq!(report.deliveries, 400);
}

#[test]
fn posts_interleave_with_checkins_without_loss() {
    let mut server = ProjectServer::new(edtc_blueprint()).unwrap();
    let hdl = server
        .checkin("CPU", "HDL_model", "setup", b"m".to_vec())
        .unwrap();
    server.process_all().unwrap();

    let sender = server.sender();
    let poster = {
        let tx = sender.clone();
        let hdl = hdl.clone();
        std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(damocles::core::engine::queue::Posted {
                    message: EventMessage::new("hdl_sim", Direction::Up, hdl.clone())
                        .with_arg(format!("v{i}")),
                    user: "sim".into(),
                })
                .unwrap();
            }
        })
    };
    // Main thread interleaves drains while the poster runs.
    let mut total_events = 0;
    while total_events < 100 {
        let report = server.process_all().unwrap();
        total_events += report.events;
        std::thread::yield_now();
    }
    poster.join().unwrap();
    let report = server.process_all().unwrap();
    total_events += report.events;
    assert_eq!(
        total_events, 100,
        "every posted message processed exactly once"
    );
}

#[test]
fn queue_stats_survive_heavy_traffic() {
    let mut server = ProjectServer::new(edtc_blueprint()).unwrap();
    let hdl = server
        .checkin("CPU", "HDL_model", "setup", b"m".to_vec())
        .unwrap();
    server.process_all().unwrap();
    for _ in 0..1000 {
        server
            .post_line(&format!("postEvent hdl_sim up {hdl} \"x\""), "sim")
            .unwrap();
    }
    let report = server.process_all().unwrap();
    assert_eq!(report.events, 1000);
    let summary = server.audit().summary();
    assert!(summary.deliveries >= 1000);
}

//! Cross-crate coverage of the stored-query language against a live flow:
//! queries as the paper's "volume query" Configurations, end to end.

use damocles::meta::qlang::Query;
use damocles::prelude::*;
use damocles::tools::design_data;

const AUTOMATED: &str = r#"
blueprint q
view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
    when ckin do exec synthesizer "$oid" done
endview
view schematic
    property nl_sim_res default bad
    link_from HDL_model move propagates outofdate type derived
    use_link move propagates outofdate
    when nl_sim do nl_sim_res = $arg done
    when ckin do exec netlister "$oid" done
endview
view netlist
    property sim_result default bad
    link_from schematic move propagates nl_sim, outofdate type derived
    when nl_sim do sim_result = $arg done
    when ckin do exec simulator "$oid" done
endview
endblueprint
"#;

fn built_flow() -> ProjectServer<ToolExecutor> {
    let bp = damocles::core::parse(AUTOMATED).unwrap();
    let mut s =
        ProjectServer::with_executor(bp, ToolExecutor::standard(FaultPlan::never())).unwrap();
    for v in 1..=3u32 {
        s.checkin(
            "CPU",
            "HDL_model",
            "yves",
            design_data::hdl_source("CPU", v, &["REG"], v == 2),
        )
        .unwrap();
        s.process_all().unwrap();
    }
    s
}

#[test]
fn latest_per_view_queries() {
    let s = built_flow();
    let q: Query = "view=netlist latest".parse().unwrap();
    let hits = q.run(s.db());
    // Two blocks (CPU, REG), one latest netlist each.
    assert_eq!(hits.len(), 2);
    for id in hits {
        let oid = s.db().oid(id).unwrap();
        assert_eq!(oid.version, 3);
    }
}

#[test]
fn failing_simulations_are_queryable() {
    let s = built_flow();
    // Generation 2 was buggy: its netlists carry "N errors" sim results.
    let q: Query = "view=netlist version=2 prop.sim_result!=good"
        .parse()
        .unwrap();
    let hits = q.run(s.db());
    // Only the CPU branch inherits the bug: REG's schematic derives from the
    // submodule name, not from the buggy HDL content.
    assert_eq!(hits.len(), 1, "CPU's gen-2 netlist failed sim");
    assert_eq!(s.db().oid(hits[0]).unwrap().block.as_str(), "CPU");
    // And CPU's good generations are disjoint from the failure.
    let q_good: Query = "block=CPU view=netlist prop.sim_result=good"
        .parse()
        .unwrap();
    for id in q_good.run(s.db()) {
        let oid = s.db().oid(id).unwrap();
        assert_ne!(oid.version, 2);
    }
}

#[test]
fn stale_query_matches_engine_state() {
    let s = built_flow();
    let q: Query = "stale.uptodate".parse().unwrap();
    let via_query: Vec<_> = q.run(s.db());
    let via_api = s.query().out_of_date("uptodate");
    assert_eq!(via_query, via_api);
    // Old generations are stale, latest generation fresh.
    for id in &via_query {
        let oid = s.db().oid(*id).unwrap();
        assert!(oid.version < 3, "latest generation must be fresh: {oid}");
    }
}

#[test]
fn query_configuration_snapshots_survive_change() {
    let mut s = built_flow();
    let q: Query = "view=schematic latest".parse().unwrap();
    let cfg = q.into_configuration(s.db(), "latest-schematics");
    assert_eq!(cfg.oid_count(), 2);
    // A fourth generation arrives: the stored configuration still points at
    // generation 3 (address pinning), and nothing dangles.
    s.checkin(
        "CPU",
        "HDL_model",
        "yves",
        design_data::hdl_source("CPU", 4, &["REG"], false),
    )
    .unwrap();
    s.process_all().unwrap();
    assert_eq!(cfg.dangling(s.db()), 0);
    for oid in cfg.resolve(s.db(), true).unwrap() {
        assert_eq!(oid.version, 3);
    }
}

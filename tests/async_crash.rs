//! Crash-injection property tests for durable async tool execution.
//!
//! The contract (in the spirit of `journal_crash.rs`, lifted to the full
//! server stack): kill the server anywhere between an `InvokeQueued`
//! record and its terminal record, and recovery re-dispatches **exactly**
//! the in-flight set — no invocation lost, none duplicated — then drains
//! to the same final image the uninterrupted run produced.

use std::collections::BTreeSet;
use std::time::Duration;

use proptest::prelude::*;

use damocles::prelude::*;
use damocles::tools::design_data;
use damocles_meta::journal::{self, parse_journal, pending_work, JournalOp};
use damocles_meta::persist;

const AUTOMATED: &str = r#"
blueprint automated
view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
    when ckin do exec synthesizer "$oid" done
endview
view schematic
    property nl_sim_res default bad
    link_from HDL_model move propagates outofdate type derived
    use_link move propagates outofdate
    when nl_sim do nl_sim_res = $arg done
    when ckin do exec netlister "$oid"; exec layout_gen "$oid" done
endview
view netlist
    property sim_result default bad
    link_from schematic move propagates nl_sim, outofdate type derived
    when nl_sim do sim_result = $arg done
    when ckin do exec simulator "$oid" done
endview
view layout
    property drc_result default bad
    property lvs_result default not_equiv
    link_from schematic move propagates lvs, outofdate type equivalence
    when drc do drc_result = $arg done
    when lvs do lvs_result = $arg done
    when ckin do exec drc "$oid"; exec lvs "$oid" done
endview
endblueprint
"#;

fn detached_server(seed: u64, rate: f64) -> ProjectServer<ToolExecutor> {
    let bp = damocles::core::parse(AUTOMATED).unwrap();
    let executor = ToolExecutor::standard(FaultPlan::new(seed, rate)).detached();
    let mut s = ProjectServer::with_executor(bp, executor).unwrap();
    // Backoffs long enough that crash captures land inside the
    // dispatch→completion window, short enough to converge in test time.
    s.set_retry_policy(
        None,
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(5),
            multiplier: 2,
            timeout: Duration::from_secs(30),
        },
    );
    s
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("damocles-async-crash-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn queued_invocation_ids(ops: &[JournalOp]) -> Vec<u64> {
    ops.iter()
        .filter_map(|op| match op {
            JournalOp::InvokeQueued { id, .. } => Some(*id),
            _ => None,
        })
        .collect()
}

fn checkin_version(s: &mut ProjectServer<ToolExecutor>, v: u32) {
    s.checkin(
        "CPU",
        "HDL_model",
        "yves",
        design_data::hdl_source("CPU", v, &["REG"], false),
    )
    .unwrap();
}

/// One crash candidate: the journal bytes an fsync left on disk, plus how
/// many check-ins the designer had issued by then (a recovery must replay
/// the rest of the scenario before images can be compared).
struct CrashState {
    bytes: Vec<u8>,
    submitted: u32,
}

/// Runs the workload one cascade at a time, capturing the on-disk journal
/// after every fsync boundary (checkin, each processing round) — each
/// capture is a state a real crash could leave behind. Returns the
/// snapshot image, the captured states, and the uninterrupted run's
/// final image.
///
/// Cascades are drained to quiescence before the next check-in so every
/// in-flight invocation's inputs (link topology, payloads) are stable
/// between its dispatch and any captured crash point — the window where
/// re-dispatch reproduces the lost run exactly. (A re-dispatched tool
/// re-prepares against the *recovered* database: results reflect the
/// design data as journaled, which under concurrent mutation may be newer
/// than what the lost run read. See `DESIGN.md` §10.)
fn run_and_capture(
    dir: &std::path::Path,
    seed: u64,
    rate: f64,
    checkins: u32,
) -> (Vec<u8>, Vec<CrashState>, String) {
    let jpath = dir.join("journal.djl");
    let mut s = detached_server(seed, rate);
    s.enable_journal(dir, 1_000_000).unwrap();
    let snapshot = std::fs::read(dir.join("snapshot.ddb")).unwrap();

    let mut states = Vec::new();
    let capture = |states: &mut Vec<CrashState>, v: u32| {
        let bytes = std::fs::read(&jpath).unwrap();
        if states.last().is_none_or(|s: &CrashState| s.bytes != bytes) {
            states.push(CrashState {
                bytes,
                submitted: v,
            });
        }
    };
    for v in 1..=checkins {
        checkin_version(&mut s, v);
        capture(&mut states, v);
        loop {
            s.process_round().unwrap();
            capture(&mut states, v);
            if s.invocations_in_flight() == 0 && s.pending_events() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let final_image = persist::save(s.db());
    (snapshot, states, final_image)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Crash at any fsync boundary between dispatch and completion:
    /// recovery re-journals exactly the pending work (accepted events
    /// without `evdone`, invocations without a terminal record, under
    /// their original ids, no duplicates) and the drained replica's image
    /// equals the uninterrupted run's.
    #[test]
    fn crash_between_dispatch_and_completion_redispatches_and_converges(
        seed in any::<u64>(),
        rate in prop_oneof![Just(0.1), Just(0.5)],
        checkins in 1..3u32,
    ) {
        let dir = temp_dir(&format!("window-{seed}"));
        let (snapshot, states, final_image) = run_and_capture(&dir, seed, rate, checkins);
        let jpath = dir.join("journal.djl");
        let spath = dir.join("snapshot.ddb");

        let mut saw_in_flight = false;
        for state in &states {
            // What this crash state owes a recovery.
            let tail = parse_journal(&state.bytes).expect("fsync boundary parses clean");
            prop_assert!(tail.torn.is_none());
            let pend = pending_work(&tail.ops);
            let want: BTreeSet<u64> =
                queued_invocation_ids(&pend.invocations).into_iter().collect();
            saw_in_flight |= !want.is_empty();

            std::fs::write(&spath, &snapshot).unwrap();
            std::fs::write(&jpath, &state.bytes).unwrap();
            let mut r = detached_server(seed, rate);
            r.recover_journal(&dir, 1_000_000).unwrap();

            // The re-seeded journal carries the pending set exactly once.
            let reseeded = parse_journal(&std::fs::read(&jpath).unwrap()).unwrap();
            let redispatched = queued_invocation_ids(&reseeded.ops);
            let got: BTreeSet<u64> = redispatched.iter().copied().collect();
            prop_assert_eq!(
                redispatched.len(), got.len(),
                "an invocation was re-dispatched twice"
            );
            prop_assert_eq!(&got, &want, "re-dispatch set differs from the in-flight set");

            // Re-run the lost window, then the rest of the scenario: the
            // recovered timeline converges to the uninterrupted image.
            r.process_all().unwrap();
            for v in state.submitted + 1..=checkins {
                checkin_version(&mut r, v);
                r.process_all().unwrap();
            }
            prop_assert_eq!(&persist::save(r.db()), &final_image);
            let after = pending_work(&parse_journal(&std::fs::read(&jpath).unwrap()).unwrap().ops);
            prop_assert!(after.events.is_empty() && after.invocations.is_empty());
        }
        prop_assert!(
            saw_in_flight,
            "no captured state had an invocation in the crash window"
        );
    }

    /// Crash at ANY byte offset (torn tails included): recovery never
    /// panics, re-dispatches exactly what the surviving record prefix
    /// says is pending, and drains back to quiescence.
    #[test]
    fn recovery_from_any_truncation_redispatches_exactly_the_pending_set(
        seed in any::<u64>(),
        cuts in proptest::collection::vec(0..100u32, 4),
    ) {
        let dir = temp_dir(&format!("truncate-{seed}"));
        let (snapshot, states, _) = run_and_capture(&dir, seed, 0.5, 2);
        let full = states.last().unwrap().bytes.clone();
        let jpath = dir.join("journal.djl");
        let spath = dir.join("snapshot.ddb");
        let snapshot_str = String::from_utf8(snapshot.clone()).unwrap();

        for pct in cuts {
            let cut = full.len() * pct as usize / 100;
            let bytes = &full[..cut];
            // The oracle: what the journal layer itself says survives.
            let want: BTreeSet<u64> = match journal::recover(&snapshot_str, bytes) {
                Ok(rec) => queued_invocation_ids(&rec.pending.invocations)
                    .into_iter()
                    .collect(),
                Err(_) => continue, // structured error is an accepted outcome
            };

            std::fs::write(&spath, &snapshot).unwrap();
            std::fs::write(&jpath, bytes).unwrap();
            let mut r = detached_server(seed, 0.5);
            r.recover_journal(&dir, 1_000_000).unwrap();
            let reseeded = parse_journal(&std::fs::read(&jpath).unwrap()).unwrap();
            let redispatched = queued_invocation_ids(&reseeded.ops);
            let got: BTreeSet<u64> = redispatched.iter().copied().collect();
            prop_assert_eq!(redispatched.len(), got.len());
            prop_assert_eq!(&got, &want, "cut at byte {} of {}", cut, full.len());

            // At-least-once replay drains cleanly — every re-dispatched
            // invocation reaches a terminal record again.
            r.process_all().unwrap();
            let after = pending_work(&parse_journal(&std::fs::read(&jpath).unwrap()).unwrap().ops);
            prop_assert!(after.events.is_empty() && after.invocations.is_empty());
        }
    }
}

//! Differential test for the shell rewrite (ISSUE 3): the shell is now a
//! thin adapter over the typed command protocol (line → `Request`,
//! `Response` → text), and this test pins its rendered output to what
//! the pre-protocol shell produced, captured verbatim from the previous
//! implementation on the same script. Only *error* renderings were
//! allowed to change (they are structured and positioned now); every
//! success path must be byte-identical.
//!
//! One deliberate behavioural exception: PR 2's shell collapsed runs of
//! whitespace inside `checkin` payloads and `query` terms
//! (`split_whitespace` + re-join); the rewritten shell passes the raw
//! remainder of the line through, preserving payload bytes exactly. The
//! pinned script uses single spaces, where both behaviours agree.

use damocles::prelude::*;
use damocles::shell::Shell;

const SCRIPT: &str = r#"
# capture script
checkin CPU HDL_model designers module cpu v1
checkin CPU schematic synth cpu schematic
connect CPU,HDL_model,1 CPU,schematic,1
process
checkin CPU HDL_model designers module cpu v2
process
checkout CPU schematic synth
postEvent hdl_sim up CPU,HDL_model,2 "good"
process
show CPU,schematic,1
query stale.uptodate
workleft CPU,schematic,1 uptodate
summary uptodate
snapshot step1 CPU,HDL_model,2
snapshots
freeze layout
thaw layout
audit
"#;

/// Output of the pre-refactor (PR 2) shell on SCRIPT, captured by running
/// that implementation against `damocles_flows::EDTC_SOURCE`.
const EXPECTED: &[&str] = &[
    "created CPU,HDL_model,1 (ckin queued)",
    "created CPU,schematic,1 (ckin queued)",
    "linked CPU,HDL_model,1 -> CPU,schematic,1",
    "processed 2 events (3 deliveries, 1 scripts)",
    "created CPU,HDL_model,2 (ckin queued)",
    "processed 1 events (2 deliveries, 0 scripts)",
    "CPU.schematic checked out by synth",
    "queued",
    "processed 1 events (1 deliveries, 0 scripts)",
    "CPU,schematic,1\n  lvs_res = CPU,schematic,1 changed by synth\n  nl_sim_res = bad\n  owner = synth\n  state = false\n  uptodate = false",
    "1 match(es)\n  CPU,schematic,1",
    "1 item(s) blocking CPU,schematic,1\n  CPU,schematic,1 (uptodate = false)",
    "| view      | total | satisfied | untracked |\n|-----------|-------|-----------|-----------|\n| HDL_model | 2     | 2         | 0         |\n| schematic | 1     | 0         | 0         |",
    "snapshot `step1` pinned 2 OIDs",
    "  step1: 2 OIDs, 1 links, 0 dangling",
    "view `layout` frozen",
    "view `layout` thawed",
    "deliveries=6 assignments=14 lets=3 scripts=1 posts=4 propagations=2 cycles=0 templates=3",
];

#[test]
fn rewritten_shell_matches_preprotocol_outputs() {
    let server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).expect("EDTC parses");
    let mut sh = Shell::with_server(server);
    let outputs = sh.run_script(SCRIPT);
    assert_eq!(outputs.len(), EXPECTED.len(), "{outputs:#?}");
    for (i, (got, want)) in outputs.iter().zip(EXPECTED).enumerate() {
        assert!(!got.is_error(), "line {i} unexpectedly errored: {got:?}");
        assert_eq!(got.text(), *want, "output {i} diverged");
    }
}

#[test]
fn dump_and_dot_match_the_database_renderers() {
    // `dump`/`dot` are excluded from the captured list (they are long);
    // instead pin them to the renderers the old shell called directly.
    let server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).expect("EDTC parses");
    let mut sh = Shell::with_server(server);
    sh.run_script("checkin CPU HDL_model d x\ncheckin CPU schematic d y\nconnect CPU,HDL_model,1 CPU,schematic,1\nprocess");
    let dump_out = sh.execute("dump");
    assert_eq!(
        dump_out.text(),
        damocles::meta::dump::dump(sh.server().unwrap().db()).trim_end()
    );
    let dot_out = sh.execute("dot");
    assert_eq!(
        dot_out.text(),
        damocles::flows::viz::db_to_dot(sh.server().unwrap().db(), "uptodate")
    );
}

#[test]
fn every_shell_command_parses_into_a_request_and_back() {
    // The acceptance criterion: no string→method dispatch remains. Every
    // command the shell accepts must produce a protocol `Request` whose
    // canonical codec form round-trips — proving shell traffic could ride
    // the TCP front door unchanged.
    use damocles::core::engine::api::Request;
    use damocles::shell::parse_command;
    let lines = [
        "checkin CPU HDL_model yves module cpu",
        "checkout CPU HDL_model yves",
        "connect CPU,HDL_model,1 CPU,schematic,1",
        "postEvent hdl_sim up CPU,HDL_model,1 \"good\"",
        "process",
        "show CPU,HDL_model,1",
        "query stale.uptodate latest",
        "workleft CPU,HDL_model,1 uptodate",
        "summary uptodate",
        "snapshot s1 CPU,HDL_model,1",
        "snapshots",
        "freeze layout",
        "thaw layout",
        "journal /tmp/d 512",
        "checkpoint",
        "recover /tmp/d",
        "save /tmp/p.ddb",
        "load /tmp/p.ddb",
        "dump",
        "dot",
        "audit",
        "stat",
        "replay 2 40",
        "trace on",
        "trace off",
        "trace get",
    ];
    for line in lines {
        let req = parse_command(line).unwrap_or_else(|e| panic!("`{line}`: {e}"));
        let encoded = req.encode();
        let back = Request::decode(&encoded).unwrap_or_else(|e| panic!("`{encoded}`: {e}"));
        assert_eq!(back, req, "`{line}` → `{encoded}`");
    }
}

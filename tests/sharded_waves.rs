//! Parallel wave sharding (ISSUE 5): the component-partitioned batch
//! path through the public server/service surface.
//!
//! * worker count never changes results — a 4-worker server and a
//!   sequential server fed the same activity stream end with
//!   byte-identical persist images and identical audit counters;
//! * a mid-session link that bridges two previously-disjoint components
//!   invalidates the shard map (the generation moves with the database's
//!   topology stamp), merges the groups, and propagation crosses the
//!   bridge correctly on the very next drain;
//! * the `waveworkers` knob threads through the typed protocol and shows
//!   up in `stat`.

use blueprint_core::engine::api::{Request, Response};
use blueprint_core::engine::exec::ToolCtx;
use blueprint_core::engine::service::ProjectService;
use damocles::prelude::*;

/// Two link-disjoint view families (`a_*`, `b_*`) under the usual
/// ckin/outofdate tracking rules: the compiler must put them in different
/// shards, so their waves can run on different workers.
const TWO_FAMILIES: &str = r#"
    blueprint families
    view default
        property uptodate default true
        when ckin do uptodate = true; post outofdate down done
        when outofdate do uptodate = false done
    endview
    view a_src endview
    view a_der
        link_from a_src move propagates outofdate type derived
    endview
    view b_src endview
    view b_der
        link_from b_src move propagates outofdate type derived
    endview
    endblueprint
"#;

/// Builds the two-family design: `n` independent chains per family.
fn populate(server: &mut ProjectServer<impl ScriptExecutor>, n: usize) -> Vec<(Oid, Oid)> {
    let mut pairs = Vec::new();
    for fam in ["a", "b"] {
        for i in 0..n {
            let src = server
                .checkin(
                    &format!("{fam}{i}"),
                    &format!("{fam}_src"),
                    "t",
                    b"s".to_vec(),
                )
                .unwrap();
            let der = server
                .checkin(
                    &format!("{fam}{i}"),
                    &format!("{fam}_der"),
                    "t",
                    b"d".to_vec(),
                )
                .unwrap();
            server.connect_oids(&src, &der).unwrap();
            pairs.push((src, der));
        }
    }
    pairs
}

#[test]
fn worker_count_never_changes_results() {
    let mut images = Vec::new();
    let mut summaries = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut server = ProjectServer::from_source(TWO_FAMILIES).unwrap();
        server.set_wave_workers(workers);
        let pairs = populate(&mut server, 6);
        server.process_all().unwrap();
        // Re-checkin every source: all derived views must go stale, in
        // one batch that spans both families.
        for (src, _) in &pairs {
            if src.view.as_str().ends_with("_src") {
                server
                    .checkin(src.block.as_str(), src.view.as_str(), "t", b"v2".to_vec())
                    .unwrap();
            }
        }
        let report = server.process_all().unwrap();
        assert!(report.events > 0);
        for (_, der) in &pairs {
            assert_eq!(
                server.prop(der, "uptodate").unwrap(),
                Value::Bool(false),
                "derived {der} stale at workers={workers}"
            );
        }
        images.push(damocles_meta::persist::save(server.db()));
        summaries.push(server.audit().summary());
    }
    for i in 1..images.len() {
        assert_eq!(images[0], images[i], "image differs at worker config {i}");
        assert_eq!(summaries[0], summaries[i], "audit differs at config {i}");
    }
}

#[test]
fn every_instance_chain_occupies_its_own_shard_group() {
    let mut server = ProjectServer::from_source(TWO_FAMILIES).unwrap();
    server.set_wave_workers(4);
    let pairs = populate(&mut server, 2);
    server.process_all().unwrap();
    let compiled = server.compiled();
    let a = compiled.shard_of_view("a_src");
    let b = compiled.shard_of_view("b_src");
    assert_ne!(a, b, "compile-time components must separate the families");
    assert_eq!(compiled.shard_of_view("a_der"), a, "template edge unions");
    let map = server.shard_map().clone();
    let ids: Vec<(damocles_meta::OidId, damocles_meta::OidId)> = pairs
        .iter()
        .map(|(src, der)| {
            (
                server.db().resolve(src).unwrap(),
                server.db().resolve(der).unwrap(),
            )
        })
        .collect();
    let (compiled, db) = (server.compiled(), server.db());
    // Chain-mates share a group; each connect link merged two singletons.
    for (src, der) in &ids {
        assert_eq!(
            map.group_of(compiled, db, *src),
            map.group_of(compiled, db, *der)
        );
    }
    assert_eq!(map.merges(), 4, "one union per chain's connect link");
    // The instance-level win: 4 disjoint chains → 4 execution groups,
    // even though the compiler only sees 2 view components.
    let groups: std::collections::BTreeSet<_> = ids
        .iter()
        .map(|(src, _)| map.group_of(compiled, db, *src))
        .collect();
    assert_eq!(groups.len(), 4, "disjoint same-view chains must separate");
    assert_eq!(map.group_count(), 4);
}

/// A wrapper tool that, when invoked, relates its origin OID to the
/// latest `b_src` version with a PROPAGATE-carrying link — the
/// mid-session raw bridge between the two compile-time components.
#[derive(Debug, Default)]
struct BridgeBuilder;

impl ScriptExecutor for BridgeBuilder {
    fn execute(
        &mut self,
        inv: &blueprint_core::engine::exec::ScriptInvocation,
        ctx: &mut ToolCtx<'_>,
    ) -> Vec<EventMessage> {
        let from: Oid = inv.args[0].parse().unwrap();
        let from = ctx.db.resolve(&from).unwrap();
        let to = ctx.latest("b0", "b_src").unwrap();
        ctx.db
            .add_link_with(
                from,
                to,
                damocles_meta::LinkClass::Derive,
                damocles_meta::LinkKind::DeriveFrom,
                ["outofdate"],
            )
            .unwrap();
        Vec::new()
    }
}

#[test]
fn mid_session_bridge_invalidates_shard_map_and_propagates() {
    // The blueprint grows one rule: a `bridge` event makes the tool
    // wire its target into the B family.
    let source = TWO_FAMILIES.replace(
        "view a_der\n        link_from a_src move propagates outofdate type derived\n    endview",
        "view a_der\n        link_from a_src move propagates outofdate type derived\n        when bridge do exec bridger \"$oid\" done\n    endview",
    );
    let bp = parse(&source).unwrap();
    let mut server = ProjectServer::with_executor(bp, BridgeBuilder).unwrap();
    server.set_wave_workers(4);
    populate(&mut server, 2);
    server.process_all().unwrap();
    let gen_before = server.shard_map().generation();
    assert_eq!(
        server.shard_map().group_count(),
        4,
        "4 disjoint chains before the bridge"
    );

    // Mid-session: the tool bridges a0's derived view into b0's source.
    server
        .post_line("postEvent bridge down a0,a_der,1", "t")
        .unwrap();
    server.process_all().unwrap();

    // The raw propagating link must have bumped the shard-map generation
    // and merged the two bridged chains into one execution group —
    // through the incremental delta-log path, not a rebuild.
    let map = server.shard_map().clone();
    assert_ne!(
        map.generation(),
        gen_before,
        "bridge must move the generation"
    );
    assert!(map.merges() >= 5, "bridge must union on top of the chains");
    assert!(
        map.incremental_updates() >= 1,
        "mid-session growth must patch the map in, not rebuild it"
    );
    let a_der = server.db().resolve(&Oid::new("a0", "a_der", 1)).unwrap();
    let b_src = server.db().resolve(&Oid::new("b0", "b_src", 1)).unwrap();
    assert_eq!(
        map.group_of(server.compiled(), server.db(), a_der),
        map.group_of(server.compiled(), server.db(), b_src),
        "bridged chains share one group"
    );

    // And propagation across the bridge is correct on the next drain: a
    // fresh a0 source version invalidates b0's source+derived chain too.
    server.checkin("a0", "a_src", "t", b"v2".to_vec()).unwrap();
    server.process_all().unwrap();
    for oid in [
        Oid::new("a0", "a_der", 1),
        Oid::new("b0", "b_src", 1),
        Oid::new("b0", "b_der", 1),
    ] {
        assert_eq!(
            server.prop(&oid, "uptodate").unwrap(),
            Value::Bool(false),
            "{oid} must be invalidated through the mid-session bridge"
        );
    }
}

/// Regression (ISSUE 10 satellite): mid-session PROPAGATE growth and a
/// link repoint are absorbed by the **incremental** per-OID union-find —
/// [`ShardMap::try_update`] patches the cached map from the database's
/// topology delta log instead of rebuilding — and a late bridge link
/// still merges groups correctly. Only severing forces a rebuild.
#[test]
fn propagate_growth_and_repoint_update_union_find_incrementally() {
    use blueprint_core::engine::compile::{CompiledBlueprint, ShardMap};
    use damocles_meta::{LinkClass, LinkKind, MetaDb};

    let bp = parse(TWO_FAMILIES).unwrap();
    let compiled = CompiledBlueprint::compile(&bp);
    let mut db = MetaDb::new();
    let a_src = db.create_oid(Oid::new("a0", "a_src", 1)).unwrap();
    let a_der = db.create_oid(Oid::new("a0", "a_der", 1)).unwrap();
    let b_src = db.create_oid(Oid::new("b0", "b_src", 1)).unwrap();
    let b_der = db.create_oid(Oid::new("b0", "b_der", 1)).unwrap();
    db.add_link_with(
        a_src,
        a_der,
        LinkClass::Derive,
        LinkKind::DeriveFrom,
        ["outofdate"],
    )
    .unwrap();
    let b_link = db
        .add_link_with(
            b_src,
            b_der,
            LinkClass::Derive,
            LinkKind::DeriveFrom,
            ["outofdate"],
        )
        .unwrap();
    let mut map = ShardMap::build(&compiled, &db);
    assert_eq!(map.group_count(), 2, "two disjoint chains");
    assert_eq!(map.incremental_updates(), 0);

    // PROPAGATE growth: a quiet link starts carrying an event — the
    // update is an incremental union, not a rebuild.
    let quiet = db
        .add_link(a_der, b_src, LinkClass::Derive, LinkKind::DeriveFrom)
        .unwrap();
    assert!(map.try_update(&compiled, &db));
    assert_eq!(map.incremental_updates(), 1, "quiet link absorbed");
    assert_ne!(
        map.group_of(&compiled, &db, a_der),
        map.group_of(&compiled, &db, b_src),
        "a link carrying nothing must not merge"
    );
    db.allow_event(quiet, "outofdate").unwrap();
    assert!(!map.is_current(&compiled, &db));
    assert!(
        map.try_update(&compiled, &db),
        "PROPAGATE growth is a pure union"
    );
    assert_eq!(map.incremental_updates(), 2);
    assert_eq!(
        map.group_of(&compiled, &db, a_src),
        map.group_of(&compiled, &db, b_der),
        "the grown link merges the two chains end to end"
    );

    // Link repoint: moving an end is a bridge to the new endpoint (the
    // old attachment is over-approximated as still merged until the next
    // rebuild — never under-approximated, so waves stay safe).
    let late = db.create_oid(Oid::new("c0", "b_der", 1)).unwrap();
    db.move_link_end(b_link, b_der, late).unwrap();
    assert!(map.try_update(&compiled, &db), "repoint patches in");
    assert_eq!(map.incremental_updates(), 3);
    assert_eq!(
        map.group_of(&compiled, &db, b_src),
        map.group_of(&compiled, &db, late),
        "the repointed link's new endpoint joins the group"
    );

    // Severing cannot be patched into a union-find: rebuild required.
    db.remove_link(quiet).unwrap();
    assert!(!map.try_update(&compiled, &db), "sever forces a rebuild");
    let rebuilt = ShardMap::build(&compiled, &db);
    assert_eq!(rebuilt.incremental_updates(), 0);
    assert_ne!(
        rebuilt.group_of(&compiled, &db, a_src),
        rebuilt.group_of(&compiled, &db, b_src),
        "the rebuilt map separates the un-bridged chains again"
    );
}

#[test]
fn wave_workers_thread_through_the_protocol() {
    let mut svc: ProjectService = ProjectService::new();
    // The knob is accepted before Init and inherited by the new server.
    assert_eq!(
        svc.call(Request::SetWaveWorkers { workers: 4 }),
        Response::Ok
    );
    assert!(matches!(
        svc.call(Request::Init {
            source: TWO_FAMILIES.to_string()
        }),
        Response::Blueprint { .. }
    ));
    match svc.call(Request::Stat) {
        Response::Stat { stat } => assert_eq!(stat.wave_workers, 4),
        other => panic!("{other:?}"),
    }
    // Requests run through the sharded drain and stay correct.
    for i in 0..4 {
        for view in ["a_src", "a_der", "b_src", "b_der"] {
            assert!(matches!(
                svc.call(Request::Checkin {
                    block: format!("blk{i}"),
                    view: view.into(),
                    user: "t".into(),
                    payload: b"x".to_vec(),
                }),
                Response::Created { .. }
            ));
        }
        assert_eq!(
            svc.call(Request::Connect {
                from: Oid::new(format!("blk{i}"), "a_src", 1),
                to: Oid::new(format!("blk{i}"), "a_der", 1),
            }),
            Response::Ok
        );
    }
    assert!(matches!(
        svc.call(Request::ProcessAll),
        Response::Processed { events: 16, .. }
    ));
    // Dropping back to sequential is also just a request.
    assert_eq!(
        svc.call(Request::SetWaveWorkers { workers: 1 }),
        Response::Ok
    );
    match svc.call(Request::Stat) {
        Response::Stat { stat } => assert_eq!(stat.wave_workers, 1),
        other => panic!("{other:?}"),
    }
}

/// Error-path parity with the sequential loop: when a later event in the
/// batch errors, the applied prefix's wrapper invocations still dispatch
/// (the sequential loop would have run them before reaching the error),
/// and the untouched tail returns to the queue.
#[test]
fn batch_error_still_dispatches_prefix_invocations() {
    let source = TWO_FAMILIES.replace(
        "view a_src endview",
        "view a_src\n        when probe do exec checker \"$oid\" done\n    endview",
    );
    let run = |workers: usize| {
        let bp = parse(&source).unwrap();
        let mut server = ProjectServer::with_executor(bp, RecordingExecutor::new()).unwrap();
        server.set_wave_workers(workers);
        populate(&mut server, 2);
        server.process_all().unwrap();
        // Strict policy: an event at an unknown view is a hard error.
        server.policy_mut().unknown_views = blueprint_core::engine::policy::Strictness::Reject;
        server
            .create_object(Oid::new("ghost", "mystery", 1))
            .unwrap();
        // Batch: [exec-producing probe, erroring event, never-reached probe].
        server
            .post_line("postEvent probe up a0,a_src,1", "t")
            .unwrap();
        server
            .post_line("postEvent boom up ghost,mystery,1", "t")
            .unwrap();
        server
            .post_line("postEvent probe up a1,a_src,1", "t")
            .unwrap();
        let err = server.process_all().unwrap_err();
        assert!(
            matches!(err, EngineError::Policy(_)),
            "expected the policy violation, got {err:?}"
        );
        let invoked: Vec<String> = server
            .executor()
            .invocations_of("checker")
            .iter()
            .map(|i| i.args[0].clone())
            .collect();
        // The event the error preceded stays queued, untouched.
        (invoked, server.pending_events())
    };
    let sequential = run(1);
    let sharded = run(4);
    assert_eq!(sequential.0, vec!["a0,a_src,1".to_string()]);
    assert_eq!(sequential, sharded, "error-path divergence between modes");
    assert_eq!(sharded.1, 1, "the unreached event must be requeued");
}

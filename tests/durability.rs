//! End-to-end durability: journal + checkpoint + crash recovery through
//! the public façade, including the property index being rebuilt by
//! replay (not loaded from the snapshot).

use damocles::prelude::*;
use damocles_meta::qlang::Query;
use damocles_meta::{persist, Value};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("damocles-e2e-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn journaled_session_survives_crash_and_keeps_tracking() {
    let dir = temp_dir("crash");
    let image_before;
    {
        // Session 1: a tracked design flow with durability on, checkpoint
        // every 32 ops so the run crosses several fold points.
        let mut server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
        server.enable_journal(&dir, 32).unwrap();
        for v in 0..5 {
            server
                .checkin(
                    "CPU",
                    "HDL_model",
                    "yves",
                    format!("module cpu v{v}").into_bytes(),
                )
                .unwrap();
            server.process_all().unwrap();
        }
        let hdl = Oid::new("CPU", "HDL_model", 5);
        let sch = server
            .checkin("CPU", "schematic", "synth", b"cell".to_vec())
            .unwrap();
        server.connect_oids(&hdl, &sch).unwrap();
        server.process_all().unwrap();
        assert!(server.journal_epoch().unwrap() > 1, "auto-checkpoints ran");
        image_before = persist::save(server.db());
        // Session 1 "crashes" here: the server is dropped without a final
        // checkpoint; whatever reached the journal is the durable state.
    }

    // Session 2: recover and verify the database image is exact.
    let mut server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
    let report = server.recover_journal(&dir, 32).unwrap();
    assert_eq!(persist::save(server.db()), image_before);
    assert!(report.snapshot_oids > 0);

    // The secondary index was rebuilt by replaying through set_prop: the
    // indexed fast path and a full scan agree on the recovered database.
    let q: Query = "prop.uptodate=true".parse().unwrap();
    let indexed = q.run(server.db());
    let scanned: Vec<_> = server
        .query()
        .where_prop("uptodate", |v| v.loose_eq(&Value::Bool(true)));
    assert_eq!(indexed, scanned);
    assert!(!indexed.is_empty(), "recovered flow has fresh objects");

    // Payloads recovered too (workspace data travels as journal records).
    let id = server.resolve(&Oid::new("CPU", "HDL_model", 5)).unwrap();
    assert_eq!(
        server.workspace().datum(id).unwrap().content,
        b"module cpu v4".to_vec()
    );

    // Tracking continues seamlessly: a new HDL version invalidates the
    // recovered schematic.
    server
        .checkin("CPU", "HDL_model", "yves", b"module cpu v6".to_vec())
        .unwrap();
    server.process_all().unwrap();
    assert_eq!(
        server
            .prop(&Oid::new("CPU", "schematic", 1), "uptodate")
            .unwrap(),
        Value::Bool(false)
    );

    // Session 3: even after more work, a fresh recover matches the live
    // image again — checkpoint → recover → persist::save is stable.
    let image_live = persist::save(server.db());
    server.checkpoint().unwrap();
    let mut server3 = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
    server3.recover_journal(&dir, 32).unwrap();
    assert_eq!(persist::save(server3.db()), image_live);
}

#[test]
fn truncated_journal_recovers_a_prefix_not_garbage() {
    let dir = temp_dir("truncate");
    let mut server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
    server.enable_journal(&dir, 100_000).unwrap();
    for v in 0..4 {
        server
            .checkin("REG", "HDL_model", "yves", format!("reg v{v}").into_bytes())
            .unwrap();
        server.process_all().unwrap();
    }
    drop(server);

    let jpath = dir.join("journal.djl");
    let spath = dir.join("snapshot.ddb");
    let full = std::fs::read(&jpath).unwrap();
    let snapshot = std::fs::read(&spath).unwrap();
    // Recover from a spread of truncation points; each must yield a valid
    // database (a prefix of the real history), never an error or panic.
    // recover_journal itself re-checkpoints the directory, so both files
    // are restored before every round.
    let mut seen_counts = std::collections::BTreeSet::new();
    for cut in (0..=full.len()).step_by(37).chain([full.len()]) {
        std::fs::write(&spath, &snapshot).unwrap();
        std::fs::write(&jpath, &full[..cut]).unwrap();
        let mut s = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
        let report = s.recover_journal(&dir, 100_000).unwrap();
        seen_counts.insert(report.replayed_ops);
        // Recovered state is internally consistent: every OID resolves,
        // every link's endpoints are live.
        for (id, entry) in s.db().iter_oids() {
            assert_eq!(s.db().resolve(&entry.oid), Some(id));
        }
        for (_, link) in s.db().iter_links() {
            assert!(s.db().is_live(link.from) && s.db().is_live(link.to));
        }
    }
    assert!(seen_counts.len() > 2, "several distinct prefixes exercised");
}

// ---------------------------------------------------------------------
// Group commit (ISSUE 3): crash semantics of the batched-fsync window
// ---------------------------------------------------------------------

/// A crash between batch execution and the batched fsync must lose the
/// whole un-acked batch and nothing else: recovery replays a valid prefix
/// ending exactly at the previous batch boundary.
#[test]
fn group_commit_crash_between_execution_and_fsync_recovers_batch_boundary() {
    let dir = temp_dir("group-commit-crash");
    let mut server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
    server.enable_journal(&dir, 1_000_000).unwrap();
    server.set_group_commit(true).unwrap();

    // Batch A: executed AND flushed — the durable boundary.
    for v in 0..4 {
        server
            .checkin("CPU", "HDL_model", "yves", format!("a{v}").into_bytes())
            .unwrap();
    }
    server.process_all().unwrap();
    server.flush_journal().unwrap();
    let records_after_a = server.journal_records().unwrap();
    let image_at_boundary = persist::save(server.db());

    // Batch B: executed, fsync never reached (the crash window). The
    // in-memory database has batch B; the on-disk journal must not.
    for v in 0..3 {
        server
            .checkin("CPU", "schematic", "synth", format!("b{v}").into_bytes())
            .unwrap();
    }
    server.process_all().unwrap();
    assert_eq!(server.db().oid_count(), 7, "batch B executed in memory");
    assert_eq!(
        server.journal_records().unwrap(),
        records_after_a,
        "batch B's ops are buffered, not on disk"
    );
    drop(server); // crash: the buffered batch evaporates

    let mut crashed = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
    let report = crashed.recover_journal(&dir, 1_000_000).unwrap();
    assert!(report.torn_tail.is_none(), "{report:?}");
    assert_eq!(
        persist::save(crashed.db()),
        image_at_boundary,
        "recovery lands exactly on the last flushed batch boundary"
    );
    assert_eq!(crashed.db().oid_count(), 4, "batch A only");
}

/// A crash DURING the batched fsync leaves a torn final record; recovery
/// still replays a valid record prefix of the batch, never garbage.
#[test]
fn group_commit_crash_mid_flush_recovers_record_prefix() {
    let dir = temp_dir("group-commit-torn");
    let mut server = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
    server.enable_journal(&dir, 1_000_000).unwrap();
    server.set_group_commit(true).unwrap();
    for v in 0..4 {
        server
            .checkin("blk", "HDL_model", "yves", format!("v{v}").into_bytes())
            .unwrap();
    }
    server.process_all().unwrap();
    server.flush_journal().unwrap();
    drop(server);

    // Tear the flushed batch mid-record, as an interrupted write would.
    let jpath = dir.join("journal.djl");
    let bytes = std::fs::read(&jpath).unwrap();
    std::fs::write(&jpath, &bytes[..bytes.len() - 9]).unwrap();

    let mut crashed = ProjectServer::from_source(damocles::flows::EDTC_SOURCE).unwrap();
    let report = crashed.recover_journal(&dir, 1_000_000).unwrap();
    assert!(report.torn_tail.is_some(), "{report:?}");
    // Whatever replayed is a valid prefix: the recovered image must match
    // a replay of the first `replayed_ops` records of the untorn journal.
    let tail = damocles_meta::journal::parse_journal(&bytes).unwrap();
    let (prefix_db, _ws) =
        damocles_meta::journal::replay_ops(&tail.ops[..report.replayed_ops]).unwrap();
    assert_eq!(persist::save(crashed.db()), persist::save(&prefix_db));
}

//! Experiment SC34: the Section 3.4 CPU/REG walkthrough, asserted step by
//! step against the paper's prose.

use damocles::flows::edtc_blueprint;
use damocles::prelude::*;

fn server() -> ProjectServer<RecordingExecutor> {
    ProjectServer::with_executor(edtc_blueprint(), RecordingExecutor::new()).unwrap()
}

#[test]
fn full_walkthrough_matches_the_paper() {
    let mut s = server();

    // "So they create an OID <CPU.HDL_model.1>."
    let hdl1 = s
        .checkin("CPU", "HDL_model", "designers", b"module cpu; v1".to_vec())
        .unwrap();
    s.process_all().unwrap();
    assert_eq!(hdl1, Oid::new("CPU", "HDL_model", 1));
    // "This property has a value of 'bad' each time a new OID is created."
    assert_eq!(s.prop(&hdl1, "sim_result").unwrap().as_atom(), "bad");

    // "They then simulate the model and get a negative result."
    s.post_line(
        &format!("postEvent hdl_sim up {hdl1} \"4 errors\""),
        "sim-wrapper",
    )
    .unwrap();
    s.process_all().unwrap();
    // "$arg … could typically contain messages like '4 errors' or 'good'."
    assert_eq!(s.prop(&hdl1, "sim_result").unwrap().as_atom(), "4 errors");

    // "The designers then modify their model and save it as a new version
    // <CPU.HDL_model.2>. They run the simulation again and this time get a
    // 'good' result."
    let hdl2 = s
        .checkin("CPU", "HDL_model", "designers", b"module cpu; v2".to_vec())
        .unwrap();
    s.process_all().unwrap();
    assert_eq!(hdl2, Oid::new("CPU", "HDL_model", 2));
    // Fresh version, fresh default.
    assert_eq!(s.prop(&hdl2, "sim_result").unwrap().as_atom(), "bad");
    s.post_line(
        &format!("postEvent hdl_sim up {hdl2} \"good\""),
        "sim-wrapper",
    )
    .unwrap();
    s.process_all().unwrap();
    assert_eq!(s.prop(&hdl2, "sim_result").unwrap().as_atom(), "good");
    // The old version keeps its own history.
    assert_eq!(s.prop(&hdl1, "sim_result").unwrap().as_atom(), "4 errors");

    // "They then synthesize the design from their model. This creates OIDs
    // <CPU.schematic.1> and <REG.schematic.1>. … It has a use link
    // (hierarchical link) which points to it from the CPU schematic."
    let cpu_sch = s
        .checkin("CPU", "schematic", "synthesis", b"cpu sch".to_vec())
        .unwrap();
    let reg_sch = s
        .checkin("REG", "schematic", "synthesis", b"reg sch".to_vec())
        .unwrap();
    s.connect_oids(&hdl2, &cpu_sch).unwrap();
    s.connect_oids(&cpu_sch, &reg_sch).unwrap();
    s.process_all().unwrap();

    // "each time the designers check in a new version of the schematic, the
    // uptodate property will be set to 'true'."
    assert_eq!(s.prop(&cpu_sch, "uptodate").unwrap(), Value::Bool(true));
    assert_eq!(s.prop(&reg_sch, "uptodate").unwrap(), Value::Bool(true));

    // "The BluePrint in this example has been set up to automatically create
    // a new netlist each time a new schematic is checked in" — the exec rule
    // fired for both schematics.
    assert_eq!(s.executor().invocations_of("netlister").len(), 2);
    let args: Vec<String> = s
        .executor()
        .invocations_of("netlister")
        .iter()
        .map(|i| i.args.join(" "))
        .collect();
    assert!(args.contains(&"CPU,schematic,1".to_string()));
    assert!(args.contains(&"REG,schematic,1".to_string()));

    // "Now the designers … modify their HDL model thereby creating a new OID
    // <CPU.HDL_model.3>. … when they check in their new model, the ckin
    // event is used to post an outofdate event to all the derived views …
    // the CPU schematic and all of its hierarchical components receive the
    // event."
    let hdl3 = s
        .checkin("CPU", "HDL_model", "designers", b"module cpu; v3".to_vec())
        .unwrap();
    s.process_all().unwrap();
    assert_eq!(hdl3, Oid::new("CPU", "HDL_model", 3));
    assert_eq!(s.prop(&cpu_sch, "uptodate").unwrap(), Value::Bool(false));
    assert_eq!(
        s.prop(&reg_sch, "uptodate").unwrap(),
        Value::Bool(false),
        "the hierarchical REG component must receive outofdate through the use link"
    );
    // The new model itself is up to date.
    assert_eq!(s.prop(&hdl3, "uptodate").unwrap(), Value::Bool(true));

    // The schematic's continuous assignment reflects the combined state.
    assert_eq!(s.prop(&cpu_sch, "state").unwrap(), Value::Bool(false));
}

#[test]
fn link_moved_from_old_model_version_to_new() {
    // The link_from HDL_model carries `move`: after <CPU.HDL_model.3> is
    // created, the derive link must anchor at version 3 so future posts
    // travel (see edtc.rs normalization note 3).
    let mut s = server();
    let hdl2 = s.checkin("CPU", "HDL_model", "d", b"v2".to_vec()).unwrap();
    let sch = s.checkin("CPU", "schematic", "d", b"s1".to_vec()).unwrap();
    s.connect_oids(&hdl2, &sch).unwrap();
    s.process_all().unwrap();

    let hdl3 = s.checkin("CPU", "HDL_model", "d", b"v3".to_vec()).unwrap();
    s.process_all().unwrap();

    let hdl3_id = s.resolve(&hdl3).unwrap();
    let sch_id = s.resolve(&sch).unwrap();
    let neighbors = s
        .db()
        .neighbors(hdl3_id, Direction::Down, Some("outofdate"))
        .unwrap();
    assert_eq!(neighbors, vec![sch_id]);
    // And the old version lost it.
    let hdl2_id = s.resolve(&hdl2).unwrap();
    assert!(s
        .db()
        .neighbors(hdl2_id, Direction::Down, Some("outofdate"))
        .unwrap()
        .is_empty());
}

#[test]
fn use_link_shifts_to_new_child_version() {
    // "if a new OID <REG.schematic.2> were created, the use link between
    // <CPU.schematic.1> and <REG.schematic.1> would be shifted to link
    // <CPU.schematic.1> to <REG.schematic.2>."
    let mut s = server();
    let cpu = s.checkin("CPU", "schematic", "d", b"cpu".to_vec()).unwrap();
    let reg1 = s
        .checkin("REG", "schematic", "d", b"reg1".to_vec())
        .unwrap();
    s.connect_oids(&cpu, &reg1).unwrap();
    s.process_all().unwrap();

    let reg2 = s
        .checkin("REG", "schematic", "d", b"reg2".to_vec())
        .unwrap();
    s.process_all().unwrap();

    let cpu_id = s.resolve(&cpu).unwrap();
    let reg2_id = s.resolve(&reg2).unwrap();
    let reg1_id = s.resolve(&reg1).unwrap();
    let down = s
        .db()
        .neighbors(cpu_id, Direction::Down, Some("outofdate"))
        .unwrap();
    assert!(down.contains(&reg2_id));
    assert!(!down.contains(&reg1_id));
}

#[test]
fn synth_lib_installation_invalidates_dependents() {
    // "The synthesis library is tracked so that the installation of a new
    // version of the library will automatically invalidate data which
    // depends on it."
    let mut s = server();
    let lib = s
        .checkin("stdlib", "synth_lib", "cad-team", b"lib v1".to_vec())
        .unwrap();
    let sch = s.checkin("CPU", "schematic", "d", b"sch".to_vec()).unwrap();
    s.connect_oids(&lib, &sch).unwrap();
    s.process_all().unwrap();
    assert_eq!(s.prop(&sch, "uptodate").unwrap(), Value::Bool(true));

    s.checkin("stdlib", "synth_lib", "cad-team", b"lib v2".to_vec())
        .unwrap();
    s.process_all().unwrap();
    assert_eq!(s.prop(&sch, "uptodate").unwrap(), Value::Bool(false));
}

#[test]
fn schematic_ckin_posts_lvs_to_layout() {
    // schematic rule: when ckin do lvs_res = "$oid changed by $user";
    //                 post lvs down "$lvs_res" done
    // layout rule:    when lvs do lvs_result = $arg done
    let mut s = server();
    let sch = s
        .checkin("CPU", "schematic", "yves", b"s1".to_vec())
        .unwrap();
    let lay = s.checkin("CPU", "layout", "mask", b"l1".to_vec()).unwrap();
    s.connect_oids(&sch, &lay).unwrap();
    s.process_all().unwrap();

    // A new schematic version: its ckin posts lvs down the equivalence link.
    let sch2 = s
        .checkin("CPU", "schematic", "marc", b"s2".to_vec())
        .unwrap();
    s.process_all().unwrap();
    assert_eq!(
        s.prop(&lay, "lvs_result").unwrap().as_atom(),
        format!("{sch2} changed by marc"),
        "the interpolated lvs_res travelled as the event argument"
    );
    // And the layout went stale through outofdate on the same link.
    assert_eq!(s.prop(&lay, "uptodate").unwrap(), Value::Bool(false));
}

#[test]
fn layout_checkin_posts_lvs_up_to_schematic_side() {
    // layout rule: when ckin do lvs_result = "$oid changed by $user";
    //              post lvs up "$lvs_result" done
    // The lvs event crosses the equivalence link upwards; the schematic view
    // has no `when lvs` rule, so only the argument delivery is observable on
    // the layout itself plus the audit propagation count.
    let mut s = server();
    let sch = s
        .checkin("CPU", "schematic", "yves", b"s1".to_vec())
        .unwrap();
    let lay1 = s.checkin("CPU", "layout", "mask", b"l1".to_vec()).unwrap();
    s.connect_oids(&sch, &lay1).unwrap();
    s.process_all().unwrap();
    s.reset_audit();

    let lay2 = s.checkin("CPU", "layout", "mask", b"l2".to_vec()).unwrap();
    s.process_all().unwrap();
    assert_eq!(
        s.prop(&lay2, "lvs_result").unwrap().as_atom(),
        format!("{lay2} changed by mask")
    );
    // The post itself was recorded.
    assert!(s.audit().summary().posts >= 1);
}

#[test]
fn state_assignment_goes_true_only_when_all_three_hold() {
    let mut s = server();
    let sch = s.checkin("CPU", "schematic", "d", b"s1".to_vec()).unwrap();
    s.process_all().unwrap();
    assert_eq!(s.prop(&sch, "state").unwrap(), Value::Bool(false));

    // nl_sim good …
    s.post_line(&format!("postEvent nl_sim up {sch} \"good\""), "sim")
        .unwrap();
    s.process_all().unwrap();
    assert_eq!(s.prop(&sch, "state").unwrap(), Value::Bool(false));

    // … and lvs is_equiv: both needed (uptodate already true).
    s.post_line(&format!("postEvent lvs up {sch} \"is_equiv\""), "lvs")
        .unwrap();
    s.process_all().unwrap();
    // lvs assigns nothing on schematic (no `when lvs` rule), so lvs_res is
    // still the default; drive it through the property the let reads.
    // The EDTC schematic's lvs_res is only written by its own ckin rule; the
    // planned state therefore needs a ckin that doesn't disturb nl_sim_res.
    // This mirrors the paper: state is designed to require a full validation
    // cycle. Simulate it via a direct nl_sim + fresh checkin sequence:
    let sch2 = s.checkin("CPU", "schematic", "d", b"s2".to_vec()).unwrap();
    s.process_all().unwrap();
    s.post_line(&format!("postEvent nl_sim up {sch2} \"good\""), "sim")
        .unwrap();
    s.process_all().unwrap();
    // lvs_res was stamped by the ckin rule with a change note, not is_equiv:
    assert_eq!(s.prop(&sch2, "state").unwrap(), Value::Bool(false));
}

#[test]
fn five_views_and_events_of_fig5_are_live() {
    // Fig. 5's BluePrint representation: five tracked views, event messages
    // hdl_sim / nl_sim / drc / lvs.
    let mut s = server();
    let hdl = s.checkin("CPU", "HDL_model", "d", b"m".to_vec()).unwrap();
    let lib = s.checkin("lib", "synth_lib", "d", b"l".to_vec()).unwrap();
    let sch = s.checkin("CPU", "schematic", "d", b"s".to_vec()).unwrap();
    let net = s.checkin("CPU", "netlist", "d", b"n".to_vec()).unwrap();
    let lay = s.checkin("CPU", "layout", "d", b"g".to_vec()).unwrap();
    s.connect_oids(&hdl, &sch).unwrap();
    s.connect_oids(&lib, &sch).unwrap();
    s.connect_oids(&sch, &net).unwrap();
    s.connect_oids(&sch, &lay).unwrap();
    s.process_all().unwrap();

    for (event, target, prop, value) in [
        ("hdl_sim", &hdl, "sim_result", "good"),
        ("nl_sim", &net, "sim_result", "good"),
        ("drc", &lay, "drc_result", "good"),
        ("lvs", &lay, "lvs_result", "is_equiv"),
    ] {
        s.post_line(
            &format!("postEvent {event} up {target} \"{value}\""),
            "wrap",
        )
        .unwrap();
        s.process_all().unwrap();
        assert_eq!(s.prop(target, prop).unwrap().as_atom(), value);
    }

    // nl_sim on the netlist also crossed up to the schematic's nl_sim_res
    // (the link propagates nl_sim).
    assert_eq!(s.prop(&sch, "nl_sim_res").unwrap().as_atom(), "good");
    // With drc good + lvs is_equiv + uptodate, the layout state is true.
    assert_eq!(s.prop(&lay, "state").unwrap(), Value::Bool(true));
}

//! Experiment ASYNC (integration side): durable detached tool execution
//! end to end — every invocation reaches a journaled terminal state, the
//! final image is independent of fault timing and worker scheduling, and
//! a fault storm never wedges the command loop.

use std::time::{Duration, Instant};

use damocles::core::engine::api::{Request, Response};
use damocles::core::engine::service::{spawn_project_loop, ProjectService};
use damocles::prelude::*;
use damocles::tools::design_data;
use damocles_meta::journal::{parse_journal, pending_work, JournalOp};
use damocles_meta::persist;

/// The §3.3 automated flow from `tooling.rs`: one HDL check-in cascades
/// through synthesis, netlisting, layout generation, simulation, DRC and
/// LVS. Simulator/DRC/LVS offer detached forms; the rest run inline.
const AUTOMATED: &str = r#"
blueprint automated
view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
    when ckin do exec synthesizer "$oid" done
endview
view schematic
    property nl_sim_res default bad
    link_from HDL_model move propagates outofdate type derived
    use_link move propagates outofdate
    when nl_sim do nl_sim_res = $arg done
    when ckin do exec netlister "$oid"; exec layout_gen "$oid" done
endview
view netlist
    property sim_result default bad
    link_from schematic move propagates nl_sim, outofdate type derived
    when nl_sim do sim_result = $arg done
    when ckin do exec simulator "$oid" done
endview
view layout
    property drc_result default bad
    property lvs_result default not_equiv
    let state = ($drc_result == good) and ($lvs_result == is_equiv) and ($uptodate == true)
    link_from schematic move propagates lvs, outofdate type equivalence
    when drc do drc_result = $arg done
    when lvs do lvs_result = $arg done
    when ckin do exec drc "$oid"; exec lvs "$oid" done
endview
endblueprint
"#;

/// A fast retry discipline so faulty runs converge in test time.
fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        max_retries: 5,
        base_delay: Duration::from_millis(1),
        multiplier: 2,
        timeout: Duration::from_secs(30),
    }
}

fn detached_server(seed: u64, rate: f64) -> ProjectServer<ToolExecutor> {
    let bp = damocles::core::parse(AUTOMATED).unwrap();
    let executor = ToolExecutor::standard(FaultPlan::new(seed, rate)).detached();
    let mut s = ProjectServer::with_executor(bp, executor).unwrap();
    s.set_retry_policy(None, fast_retries());
    s
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("damocles-async-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Drives the standard workload: `n` HDL check-ins of CPU (depending on
/// REG), each drained to quiescence.
fn run_flow(s: &mut ProjectServer<ToolExecutor>, n: u32) {
    for v in 1..=n {
        s.checkin(
            "CPU",
            "HDL_model",
            "yves",
            design_data::hdl_source("CPU", v, &["REG"], false),
        )
        .unwrap();
        s.process_all().unwrap();
    }
}

// ---------------------------------------------------------------------
// Satellite (a): journaled terminal states across fault rates
// ---------------------------------------------------------------------

/// Under every fault rate, each dispatched invocation reaches a journaled
/// terminal record (`invdone` or `invfail`) and each accepted event is
/// marked done — the work journal drains to quiescence, never wedges.
#[test]
fn every_invocation_reaches_a_journaled_terminal_state() {
    for rate in [0.0, 0.1, 0.5] {
        let dir = temp_dir(&format!("terminal-{}", (rate * 10.0) as u32));
        let mut s = detached_server(7, rate);
        s.enable_journal(&dir, 1_000_000).unwrap();
        run_flow(&mut s, 3);
        let stats = s.invoke_stats();
        assert_eq!(stats.pending + stats.running + stats.retrying, 0);
        assert!(stats.completed > 0, "rate {rate}: detached runs happened");
        drop(s);

        let bytes = std::fs::read(dir.join("journal.djl")).unwrap();
        let tail = parse_journal(&bytes).unwrap();
        let pending = pending_work(&tail.ops);
        assert!(
            pending.events.is_empty() && pending.invocations.is_empty(),
            "rate {rate}: unterminated work left in the journal: {pending:?}"
        );

        // Terminal records pair one-to-one with queued records.
        let mut queued = std::collections::BTreeSet::new();
        let mut terminal = std::collections::BTreeSet::new();
        for op in &tail.ops {
            match op {
                JournalOp::InvokeQueued { id, .. } => assert!(queued.insert(*id)),
                JournalOp::InvokeCompleted { id } | JournalOp::InvokeFailed { id, .. } => {
                    assert!(terminal.insert(*id), "duplicate terminal record for {id}")
                }
                _ => {}
            }
        }
        assert_eq!(queued, terminal, "rate {rate}");
        assert!(!queued.is_empty(), "rate {rate}: work was journaled");
    }
}

// ---------------------------------------------------------------------
// Satellite (a): final image independent of fault timing
// ---------------------------------------------------------------------

/// Same seed, same rate, two fresh runs: worker scheduling and backoff
/// timing differ between runs, but the ordered harvest makes the final
/// image identical.
#[test]
fn final_image_is_independent_of_fault_timing() {
    for rate in [0.1, 0.5] {
        let image_of = || {
            let mut s = detached_server(42, rate);
            run_flow(&mut s, 3);
            persist::save(s.db())
        };
        assert_eq!(image_of(), image_of(), "rate {rate}");
    }
}

// ---------------------------------------------------------------------
// Satellite (c): the ordering contract
// ---------------------------------------------------------------------

/// Fault-free, the detached pool is observationally equivalent to inline
/// execution: results re-enter the queue at their dispatch points, so
/// the final image matches the classic synchronous path exactly.
#[test]
fn detached_matches_inline_when_fault_free() {
    let bp = damocles::core::parse(AUTOMATED).unwrap();
    let mut inline_s =
        ProjectServer::with_executor(bp, ToolExecutor::standard(FaultPlan::never())).unwrap();
    run_flow(&mut inline_s, 2);

    let mut detached_s = detached_server(1, 0.0);
    run_flow(&mut detached_s, 2);

    assert_eq!(persist::save(inline_s.db()), persist::save(detached_s.db()));
}

/// Sharding the drain across wave workers must not reorder what the
/// engine observes: per-event dispatch order is preserved, so a sharded
/// drain with faults and retries converges to the sequential image.
/// This closes the PR 5 caveat where `process_all` deferred executor
/// dispatch to the end of each sharded batch.
#[test]
fn sharded_dispatch_preserves_per_event_order() {
    let image_with_workers = |workers: usize| {
        let mut s = detached_server(23, 0.3);
        s.set_wave_workers(workers);
        run_flow(&mut s, 3);
        persist::save(s.db())
    };
    assert_eq!(image_with_workers(1), image_with_workers(4));
}

// ---------------------------------------------------------------------
// Acceptance: a fault storm never wedges the command loop
// ---------------------------------------------------------------------

/// With a rate-0.5 fault plan and `max_retries = 5`, tools crash and sit
/// out backoff delays constantly — yet mutating requests from a second
/// session keep answering in interactive time, because the loop absorbs
/// results through non-blocking pumps instead of parking on the pool.
#[test]
fn fault_storm_keeps_command_loop_responsive() {
    let bp = damocles::core::parse(AUTOMATED).unwrap();
    let executor = ToolExecutor::standard(FaultPlan::new(11, 0.5)).detached();
    let mut server = ProjectServer::with_executor(bp, executor).unwrap();
    server.set_retry_policy(
        None,
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(60),
            multiplier: 2,
            timeout: Duration::from_secs(30),
        },
    );
    let service = ProjectService::with_server(server);
    let (handle, join) = spawn_project_loop(service);

    // Session A kicks off the storm: a burst of check-ins whose cascades
    // dispatch dozens of detached tool runs, half of which crash and
    // retry on 60ms+ backoffs.
    let storm = handle.session();
    for v in 1..=8 {
        let resp = storm.call(Request::Checkin {
            block: "CPU".to_string(),
            view: "HDL_model".to_string(),
            user: "yves".to_string(),
            payload: design_data::hdl_source("CPU", v, &["REG"], false),
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    }
    let resp = storm.call(Request::ProcessAll);
    assert!(matches!(resp, Response::Processed { .. }), "{resp:?}");

    let in_flight = |session: &damocles::core::engine::service::ClientSession| -> u64 {
        match session.call(Request::Stat) {
            Response::Stat { stat } => {
                stat.pending_invocations + stat.running_invocations + stat.retrying_invocations
            }
            other => panic!("unexpected stat response {other:?}"),
        }
    };

    // Session B: mutating requests during the storm answer fast.
    let client = handle.session();
    assert!(in_flight(&client) > 0, "storm is live after the drain");
    let mut worst = Duration::ZERO;
    for v in 1..=20 {
        let t0 = Instant::now();
        let resp = client.call(Request::Checkin {
            block: "IO".to_string(),
            view: "HDL_model".to_string(),
            user: "marc".to_string(),
            payload: design_data::hdl_source("IO", v, &[], false),
        });
        worst = worst.max(t0.elapsed());
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    }
    assert!(
        worst < Duration::from_millis(100),
        "mutating request took {worst:?} during the fault storm"
    );

    // The loop's idle pump drains the storm without further requests.
    let deadline = Instant::now() + Duration::from_secs(30);
    while in_flight(&client) > 0 {
        assert!(Instant::now() < deadline, "storm never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(storm);
    drop(client);
    drop(handle);
    join.join().unwrap();
}

//! Experiment BASE (integration side): the four tracking strategies must
//! compute identical out-of-date sets on arbitrary activity streams, and the
//! cost asymmetry claimed by Section 4 must hold.

use damocles::flows::baseline::{
    ChangeTracker, DamoclesTracker, DepGraph, EagerTracker, ManualTracker, PollingTracker,
};
use damocles::flows::DesignSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cross-validation over random shapes and random check-in streams.
    #[test]
    fn all_trackers_agree(
        stages in 2usize..5,
        blocks in 2usize..8,
        fanout in 1usize..4,
        stream in proptest::collection::vec(0usize..1000, 1..25),
    ) {
        let spec = DesignSpec { stages, blocks, fanout };
        let graph = DepGraph::from_spec(&spec);
        let mut damocles = DamoclesTracker::new(&spec);
        let mut eager = EagerTracker::new(graph.clone());
        let mut polling = PollingTracker::new(graph.clone());
        let mut manual = ManualTracker::new(graph.clone());
        for raw in stream {
            let node = raw % graph.len();
            damocles.on_checkin(node);
            eager.on_checkin(node);
            polling.on_checkin(node);
            manual.on_checkin(node);
            let d = damocles.out_of_date();
            prop_assert_eq!(&d, &eager.out_of_date());
            prop_assert_eq!(&d, &polling.out_of_date());
            prop_assert_eq!(&d, &manual.out_of_date());
        }
    }
}

#[test]
fn damocles_scales_with_affected_subgraph_not_design_size() {
    // The same sink-node check-in on growing designs: DAMOCLES work stays
    // flat, the eager baseline grows with the design.
    let mut damocles_units = Vec::new();
    let mut eager_units = Vec::new();
    for blocks in [10usize, 40, 160] {
        let spec = DesignSpec {
            stages: 4,
            blocks,
            fanout: 2,
        };
        let graph = DepGraph::from_spec(&spec);
        let sink = graph.len() - 1;
        let mut d = DamoclesTracker::new(&spec);
        let mut e = EagerTracker::new(graph);
        d.on_checkin(sink);
        e.on_checkin(sink);
        damocles_units.push(d.work().checkin_units);
        eager_units.push(e.work().checkin_units);
    }
    // Flat for DAMOCLES (leaf change touches a constant-size subgraph)…
    assert_eq!(damocles_units[0], damocles_units[2], "{damocles_units:?}");
    // …monotonically growing for the eager baseline, by at least the design
    // growth factor between the smallest and largest shapes.
    assert!(eager_units[2] > eager_units[0] * 8, "{eager_units:?}");
}

#[test]
fn polling_pays_on_query_eager_pays_on_change() {
    let spec = DesignSpec {
        stages: 4,
        blocks: 30,
        fanout: 2,
    };
    let graph = DepGraph::from_spec(&spec);
    let mut eager = EagerTracker::new(graph.clone());
    let mut polling = PollingTracker::new(graph);

    // Many changes, one query.
    for node in 0..20 {
        eager.on_checkin(node);
        polling.on_checkin(node);
    }
    eager.out_of_date();
    polling.out_of_date();
    assert!(eager.work().checkin_units > polling.work().checkin_units * 10);
    assert!(polling.work().query_units > eager.work().query_units * 10);
}

#[test]
fn root_change_hits_everything_in_every_tracker() {
    let spec = DesignSpec {
        stages: 3,
        blocks: 7,
        fanout: 2,
    };
    let graph = DepGraph::from_spec(&spec);
    let n = graph.len();
    let mut trackers: Vec<Box<dyn ChangeTracker>> = vec![
        Box::new(DamoclesTracker::new(&spec)),
        Box::new(EagerTracker::new(graph.clone())),
        Box::new(PollingTracker::new(graph.clone())),
        Box::new(ManualTracker::new(graph)),
    ];
    for t in &mut trackers {
        t.on_checkin(0);
        let stale = t.out_of_date();
        assert_eq!(stale.len(), n - 1, "{} missed nodes", t.name());
        assert!(!stale.contains(&0));
    }
}

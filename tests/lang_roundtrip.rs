//! Experiment LANG (integration side): property tests on the BluePrint
//! language — print/parse round-trips over generated ASTs, parser
//! robustness, and idempotence of the canonical form.

use damocles::core::lang::ast::{
    Action, Blueprint, Expr, LetDef, LinkDef, LinkSource, PropertyDef, RuleDef, Segment, Template,
    Transfer, ViewDef,
};
use damocles::core::lang::diag::Span;
use damocles::core::lang::parser::parse;
use damocles::core::lang::printer::print;
use damocles::meta::Direction;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// AST generators
// ---------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        damocles::core::lang::token::Keyword::from_word(s).is_none()
    })
}

fn atom() -> impl Strategy<Value = String> {
    prop_oneof![
        ident(),
        Just("true".to_string()),
        Just("false".to_string()),
        (0i64..1000).prop_map(|n| n.to_string()),
        // quoted-value material with spaces and the odd dollar
        "[a-z ]{1,12}",
    ]
}

fn transfer() -> impl Strategy<Value = Transfer> {
    prop_oneof![
        Just(Transfer::Create),
        Just(Transfer::Copy),
        Just(Transfer::Move)
    ]
}

fn template() -> impl Strategy<Value = Template> {
    prop_oneof![
        atom().prop_map(Template::lit),
        ident().prop_map(Template::var),
        (ident(), "[a-z ]{1,6}", ident()).prop_map(|(v1, lit, v2)| Template {
            segments: vec![
                Segment::Var(v1),
                Segment::Lit(format!(" {lit} ")),
                Segment::Var(v2),
            ],
        }),
    ]
}

fn expr(depth: u32) -> BoxedStrategy<Expr> {
    // Parser invariant: `Expr::Atom` only ever holds bare tokens (idents,
    // ints, bools); anything with spaces parses as `Expr::Str`.
    let leaf = prop_oneof![
        ident().prop_map(Expr::Var),
        ident().prop_map(Expr::Atom),
        (0i64..1000).prop_map(|n| Expr::Atom(n.to_string())),
        Just(Expr::Atom("true".to_string())),
        "[a-z ]{1,10}".prop_map(Expr::Str),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Eq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Ne(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Expr::Not(Box::new(a))),
        ]
    })
    .boxed()
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (ident(), template()).prop_map(|(prop, value)| Action::Assign { prop, value }),
        (template(), proptest::collection::vec(template(), 0..3))
            .prop_map(|(script, args)| Action::Exec { script, args }),
        template().prop_map(|message| Action::Notify { message }),
        (
            ident(),
            prop_oneof![Just(Direction::Up), Just(Direction::Down)],
            proptest::option::of(ident()),
            proptest::collection::vec(template(), 0..2),
        )
            .prop_map(|(event, direction, to_view, args)| Action::Post {
                event,
                direction,
                to_view,
                args
            }),
    ]
}

fn view(name: String) -> impl Strategy<Value = ViewDef> {
    (
        proptest::collection::vec((ident(), atom(), transfer()), 0..4),
        proptest::collection::vec(
            (
                prop_oneof![
                    ident().prop_map(LinkSource::View),
                    Just(LinkSource::UseLink)
                ],
                transfer(),
                proptest::collection::vec(ident(), 0..3),
                proptest::option::of(ident()),
            ),
            0..3,
        ),
        proptest::collection::vec((ident(), expr(3)), 0..2),
        proptest::collection::vec((ident(), proptest::collection::vec(action(), 1..4)), 0..3),
    )
        .prop_map(move |(props, links, lets, rules)| {
            let mut v = ViewDef::empty(name.clone());
            let mut seen = std::collections::BTreeSet::new();
            for (pname, default, transfer) in props {
                if seen.insert(pname.clone()) {
                    v.properties.push(PropertyDef {
                        name: pname,
                        default,
                        transfer,
                        span: Span::default(),
                    });
                }
            }
            for (source, transfer, propagates, kind) in links {
                v.links.push(LinkDef {
                    source,
                    transfer,
                    propagates,
                    kind,
                    span: Span::default(),
                });
            }
            for (lname, e) in lets {
                if seen.insert(lname.clone()) {
                    v.lets.push(LetDef {
                        name: lname,
                        expr: e,
                        span: Span::default(),
                    });
                }
            }
            for (event, actions) in rules {
                v.rules.push(RuleDef {
                    event,
                    actions,
                    span: Span::default(),
                });
            }
            v
        })
}

fn blueprint() -> impl Strategy<Value = Blueprint> {
    (ident(), proptest::collection::btree_set(ident(), 1..5))
        .prop_flat_map(|(name, view_names)| {
            let views: Vec<_> = view_names.into_iter().map(view).collect();
            (Just(name), views)
        })
        .prop_map(|(name, views)| Blueprint {
            name,
            views,
            span: Span::default(),
        })
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse is the identity on generated ASTs (modulo spans).
    #[test]
    fn printed_blueprints_reparse_identically(bp in blueprint()) {
        let printed = print(&bp);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nsource:\n{printed}"));
        prop_assert_eq!(reparsed.normalized(), bp.normalized());
    }

    /// The canonical form is a fixed point: printing a reparsed print
    /// changes nothing.
    #[test]
    fn printing_is_idempotent(bp in blueprint()) {
        let once = print(&bp);
        let twice = print(&parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    /// The parser never panics on arbitrary input (errors are values).
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse(&input);
    }

    /// The lexer+parser never panic on keyword-dense word soup either.
    #[test]
    fn parser_survives_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("blueprint".to_string()), Just("view".to_string()),
                Just("endview".to_string()), Just("when".to_string()),
                Just("do".to_string()), Just("done".to_string()),
                Just("post".to_string()), Just("exec".to_string()),
                Just("let".to_string()), Just("=".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just(";".to_string()), ident(),
            ],
            0..40,
        )
    ) {
        let source = words.join(" ");
        let _ = parse(&source);
    }
}

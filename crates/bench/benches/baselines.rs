//! Experiment BASE — the Section 4 comparison: per-change tracking overhead
//! of the event-driven BluePrint vs NELSIS-style eager revalidation,
//! make-style polling, and no tracking, across design sizes.
//!
//! Expected shape: DAMOCLES per-checkin cost tracks the affected subgraph
//! (stays near-flat as the design grows when changes are leaf-ish), the
//! eager baseline grows linearly with design size on *every* change, and
//! polling moves that linear cost to every query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use damocles_flows::baseline::{
    ChangeTracker, DamoclesTracker, DepGraph, EagerTracker, ManualTracker, PollingTracker,
};
use damocles_flows::DesignSpec;

fn shapes() -> Vec<(&'static str, DesignSpec)> {
    vec![
        (
            "100oids",
            DesignSpec {
                stages: 4,
                blocks: 25,
                fanout: 3,
            },
        ),
        (
            "400oids",
            DesignSpec {
                stages: 4,
                blocks: 100,
                fanout: 3,
            },
        ),
        (
            "1600oids",
            DesignSpec {
                stages: 4,
                blocks: 400,
                fanout: 3,
            },
        ),
    ]
}

/// One change + one query, on a rotating mid-graph node.
fn op(tracker: &mut dyn ChangeTracker, len: usize, i: &mut usize) {
    let node = (*i * 17 + len / 2) % len;
    *i += 1;
    tracker.on_checkin(node);
    black_box(tracker.out_of_date());
}

fn bench_trackers(c: &mut Criterion) {
    let mut group = c.benchmark_group("base/checkin_plus_query");
    group.sample_size(10);
    for (label, spec) in shapes() {
        let graph = DepGraph::from_spec(&spec);
        let len = graph.len();
        group.throughput(Throughput::Elements(1));

        group.bench_with_input(BenchmarkId::new("damocles", label), &spec, |b, spec| {
            let mut tracker = DamoclesTracker::new(spec);
            let mut i = 0usize;
            b.iter(|| op(&mut tracker, len, &mut i));
        });
        group.bench_with_input(BenchmarkId::new("eager", label), &spec, |b, spec| {
            let mut tracker = EagerTracker::new(DepGraph::from_spec(spec));
            let mut i = 0usize;
            b.iter(|| op(&mut tracker, len, &mut i));
        });
        group.bench_with_input(BenchmarkId::new("polling", label), &spec, |b, spec| {
            let mut tracker = PollingTracker::new(DepGraph::from_spec(spec));
            let mut i = 0usize;
            b.iter(|| op(&mut tracker, len, &mut i));
        });
        group.bench_with_input(BenchmarkId::new("manual", label), &spec, |b, spec| {
            let mut tracker = ManualTracker::new(DepGraph::from_spec(spec));
            let mut i = 0usize;
            b.iter(|| op(&mut tracker, len, &mut i));
        });
    }
    group.finish();
}

fn bench_checkin_only(c: &mut Criterion) {
    // The crossover axis the paper's "light weight / non obstructive" claim
    // lives on: change-side cost alone, leaf changes, growing design.
    let mut group = c.benchmark_group("base/leaf_checkin_only");
    group.sample_size(10);
    for (label, spec) in shapes() {
        let graph = DepGraph::from_spec(&spec);
        let leaf = graph.len() - 1;
        group.bench_with_input(BenchmarkId::new("damocles", label), &spec, |b, spec| {
            let mut tracker = DamoclesTracker::new(spec);
            b.iter(|| tracker.on_checkin(black_box(leaf)));
        });
        group.bench_with_input(BenchmarkId::new("eager", label), &spec, |b, spec| {
            let mut tracker = EagerTracker::new(DepGraph::from_spec(spec));
            b.iter(|| tracker.on_checkin(black_box(leaf)));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_trackers, bench_checkin_only
}
criterion_main!(benches);

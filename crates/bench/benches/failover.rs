//! Experiment FAILOVER — mean time to repair after a leader crash
//! (ISSUE 9).
//!
//! One question: once the leader is declared dead, how long until the
//! fleet accepts writes again? Each trial stands up a journaled leader
//! with one TCP follower, lets the follower catch up, then measures the
//! repair window end to end:
//!
//!   leader declared dead → `promote` (epoch roll + snapshot under the
//!   new term) → leader-chasing client's **first committed write**
//!
//! The client starts aimed at the dead leader's address (connection
//! refused) so the measured path includes the redirect chase, not just
//! the promotion RPC. `failover/mttr` reports p50/p99/max over the
//! trials as a non-criterion probe, in the style of the fleet
//! activation bench.
//!
//! The crash itself is injected as the `LeaderGone` edge the tail pump
//! delivers when the leader's socket dies — the bench measures repair,
//! not kernel socket-teardown time (the chaos suite in
//! `tests/failover.rs` covers the real-SIGKILL path).
//!
//! Smoke mode for CI: set `BENCH_SMOKE=1` to shrink trial counts; set
//! `BENCH_JSON=<file>` to append results as JSON lines — that is how
//! `BENCH_pr9.json` is produced.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use blueprint_core::engine::api::{Request, Response};
use blueprint_core::engine::follower::{spawn_follower_loop, FollowerHandle, FollowerMsg};
use blueprint_core::engine::server::ProjectServer;
use blueprint_core::engine::service::{
    serve_listener, serve_with, spawn_project_loop, ProjectService,
};
use damocles_tools::remote::{LeaderClient, ReconnectPolicy, RemoteWrapper, TailHandshake};

const TRACKED: &str = r#"
    blueprint failoverbench
    view default
        property uptodate default true
        when ckin do uptodate = true; post outofdate down done
        when outofdate do uptodate = false done
    endview
    view HDL_model endview
    endblueprint
"#;

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("damocles-bench-failover-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn target_enabled(name: &str) -> bool {
    std::env::var("BENCH_FILTER").map_or(true, |f| f.is_empty() || name.contains(&f))
}

fn append_bench_json(line: &str) {
    if let Some(path) = std::env::var_os("BENCH_JSON") {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// The reconnecting tail pump from `damocles_server --follow`, minus the
/// retry loop: one connection, frames forwarded until the socket dies.
fn spawn_pump(leader: String, handle: &FollowerHandle) {
    let status = handle.status();
    let feed = handle.feed();
    std::thread::spawn(move || loop {
        if status.promoted() {
            return;
        }
        let (epoch, seq) = status.handshake_cursor();
        let outcome = RemoteWrapper::connect(&leader, "pump")
            .and_then(|wrapper| wrapper.tail_from(epoch, seq));
        match outcome {
            Ok(TailHandshake::Accepted { mut stream, .. }) => loop {
                match stream.next_frame() {
                    Ok(frame) => {
                        if feed.send(FollowerMsg::Frame(frame)).is_err() {
                            return;
                        }
                        if status.needs_reset() {
                            break;
                        }
                    }
                    Err(_) => return, // the bench injects LeaderGone itself
                }
            },
            Ok(TailHandshake::Refused(_)) | Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(10));
    });
}

/// One leader + one caught-up TCP follower, ready to crash. Returns the
/// follower handle, its front-door address, and a dead address standing
/// in for the crashed leader.
fn stand_up(trial: usize, seed_blocks: usize) -> (FollowerHandle, String, String) {
    let dir = bench_dir(&format!("trial-{trial}"));
    let mut service: ProjectService = ProjectService::new();
    assert!(!service
        .call(Request::Init {
            source: TRACKED.into()
        })
        .is_error());
    assert!(!service
        .call(Request::EnableJournal {
            dir: dir.display().to_string(),
            every: 1_000_000,
        })
        .is_error());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let leader_addr = listener.local_addr().unwrap().to_string();
    let (leader, _join) = spawn_project_loop(service);
    {
        let handle = leader.clone();
        std::thread::spawn(move || {
            let _ = serve_listener(listener, &handle);
        });
    }

    let follower_service: ProjectService =
        ProjectService::with_server(ProjectServer::from_source(TRACKED).unwrap());
    let hub = follower_service.tail_hub();
    let (follower, _fjoin) = spawn_follower_loop(follower_service, leader_addr.clone());
    let front = TcpListener::bind("127.0.0.1:0").unwrap();
    let follower_addr = front.local_addr().unwrap().to_string();
    {
        let session = follower.clone();
        std::thread::spawn(move || {
            let _ = serve_with(front, || session.session(), Some(hub));
        });
    }
    spawn_pump(leader_addr, &follower);

    let writer = leader.session();
    for b in 0..seed_blocks {
        let resp = writer.call(Request::Checkin {
            block: format!("b{b}"),
            view: "HDL_model".to_string(),
            user: "bench".to_string(),
            payload: b"module m;".to_vec(),
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    }
    let (epoch, seq) = match writer.call(Request::Stat) {
        Response::Stat { stat } => (
            stat.journal_epoch.expect("journaling on"),
            stat.journal_records.expect("journaling on"),
        ),
        other => panic!("{other:?}"),
    };
    assert!(
        follower
            .status()
            .wait_applied(epoch, seq, Duration::from_secs(10)),
        "follower never caught up; at {:?}",
        follower.status().cursor()
    );

    // A bound-then-dropped port: connecting gets refused, exactly what a
    // chasing client sees dialing a crashed leader.
    let dead = {
        let sock = TcpListener::bind("127.0.0.1:0").unwrap();
        sock.local_addr().unwrap().to_string()
    };
    (follower, follower_addr, dead)
}

/// The repair window for one trial: declare the leader dead, promote the
/// follower under the next term, and chase until the first write lands.
fn repair(trial: usize, follower: &FollowerHandle, follower_addr: &str, dead: &str) -> Duration {
    let t0 = Instant::now();
    follower
        .feed()
        .send(FollowerMsg::LeaderGone {
            reason: "bench: leader crashed".to_string(),
        })
        .unwrap();
    let mut operator = RemoteWrapper::connect(follower_addr, "operator").unwrap();
    let promoted_dir = bench_dir(&format!("promoted-{trial}"));
    match operator
        .request(&Request::Promote {
            dir: promoted_dir.display().to_string(),
            every: 1_000_000,
            term: 2,
        })
        .unwrap()
    {
        Response::Promoted { .. } => {}
        other => panic!("promotion refused: {other:?}"),
    }
    let mut client = LeaderClient::new([dead.to_string(), follower_addr.to_string()], "bench")
        .with_policy(ReconnectPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(1),
            multiplier: 2,
        });
    let resp = client
        .call(&Request::Checkin {
            block: "post-crash".to_string(),
            view: "HDL_model".to_string(),
            user: "bench".to_string(),
            payload: b"module m;".to_vec(),
        })
        .expect("first post-crash write");
    assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    t0.elapsed()
}

fn bench_mttr(_c: &mut Criterion) {
    if !target_enabled("failover_mttr") {
        return;
    }
    let (trials, seed_blocks) = if smoke() { (10, 8) } else { (60, 32) };
    let mut latencies: Vec<Duration> = Vec::with_capacity(trials);
    for trial in 0..trials {
        let (follower, follower_addr, dead) = stand_up(trial, seed_blocks);
        latencies.push(repair(trial, &follower, &follower_addr, &dead));
        let _ = std::fs::remove_dir_all(bench_dir(&format!("trial-{trial}")));
        let _ = std::fs::remove_dir_all(bench_dir(&format!("promoted-{trial}")));
    }
    latencies.sort_unstable();
    let pick = |q: usize| latencies[(latencies.len() - 1) * q / 100];
    let (p50, p99, max) = (pick(50), pick(99), *latencies.last().unwrap());
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "failover/mttr ({seed_blocks} oids behind): {trials} trials, \
         p50 {p50:?}, p99 {p99:?}, max {max:?}"
    );
    append_bench_json(&format!(
        "{{\"id\":\"failover/mttr_{seed_blocks}oids\",\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"trials\":{},\"cores\":{}}}",
        p50.as_nanos(),
        p99.as_nanos(),
        max.as_nanos(),
        trials,
        cores
    ));
}

fn config() -> Criterion {
    let (measure_ms, warm_ms, samples) = if smoke() {
        (250, 80, 5)
    } else {
        (2_000, 400, 20)
    };
    Criterion::default()
        .measurement_time(Duration::from_millis(measure_ms))
        .warm_up_time(Duration::from_millis(warm_ms))
        .sample_size(samples)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_mttr
}
criterion_main!(benches);

//! Experiment PROP — controlling change propagation: cost of one root
//! check-in vs hierarchy depth and fanout, strict vs loosened blueprints.
//!
//! Expected shape: strict cost grows with the affected subgraph (stages ×
//! blocks); loosened cost is flat (the §3.2 "loosening" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use blueprint_core::engine::server::ProjectServer;
use damocles_bench::{loosened_server, populated_server};
use damocles_flows::DesignSpec;

fn root_checkin(server: &mut ProjectServer) {
    server
        .checkin("blk0", "v0", "bench", b"next".to_vec())
        .unwrap();
    server.process_all().unwrap();
}

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop/depth");
    for &stages in &[2usize, 4, 6, 8, 10] {
        let spec = DesignSpec {
            stages,
            blocks: 8,
            fanout: 2,
        };
        group.throughput(Throughput::Elements(spec.oid_count() as u64));
        group.bench_with_input(BenchmarkId::new("strict", stages), &spec, |b, spec| {
            let mut server = populated_server(spec);
            b.iter(|| root_checkin(black_box(&mut server)));
        });
        // The seed's AST-walking dispatch on the same design: the baseline
        // the compiled path is measured against.
        group.bench_with_input(BenchmarkId::new("strict_ast", stages), &spec, |b, spec| {
            let mut server = populated_server(spec).with_ast_dispatch();
            b.iter(|| root_checkin(black_box(&mut server)));
        });
        group.bench_with_input(BenchmarkId::new("loosened", stages), &spec, |b, spec| {
            let mut server = loosened_server(spec);
            b.iter(|| root_checkin(black_box(&mut server)));
        });
    }
    group.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop/fanout");
    for &fanout in &[2usize, 4, 8] {
        let spec = DesignSpec {
            stages: 4,
            blocks: 64,
            fanout,
        };
        group.bench_with_input(BenchmarkId::new("strict", fanout), &spec, |b, spec| {
            let mut server = populated_server(spec);
            b.iter(|| root_checkin(black_box(&mut server)));
        });
        group.bench_with_input(BenchmarkId::new("strict_ast", fanout), &spec, |b, spec| {
            let mut server = populated_server(spec).with_ast_dispatch();
            b.iter(|| root_checkin(black_box(&mut server)));
        });
    }
    group.finish();
}

fn bench_leaf_vs_root(c: &mut Criterion) {
    // Selectivity: a leaf change must cost far less than a root change on
    // the same design.
    let spec = DesignSpec {
        stages: 6,
        blocks: 64,
        fanout: 2,
    };
    let mut group = c.benchmark_group("prop/selectivity");
    group.bench_function("root_checkin", |b| {
        let mut server = populated_server(&spec);
        b.iter(|| root_checkin(black_box(&mut server)));
    });
    group.bench_function("leaf_checkin", |b| {
        let mut server = populated_server(&spec);
        let leaf_block = DesignSpec::block_name(spec.blocks - 1);
        let leaf_view = DesignSpec::view_name(spec.stages - 1);
        b.iter(|| {
            server
                .checkin(&leaf_block, &leaf_view, "bench", b"next".to_vec())
                .unwrap();
            let report = server.process_all().unwrap();
            black_box(report)
        });
    });
    group.finish();
}

fn bench_cycle_guard_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: the cycle guard also deduplicates *diamond* paths
    // (chain × hierarchy), so disabling it on a DAG multiplies deliveries by
    // the path count — kept small here so the ablation finishes.
    let spec = DesignSpec {
        stages: 4,
        blocks: 16,
        fanout: 2,
    };
    let mut group = c.benchmark_group("prop/cycle_guard_ablation");
    group.bench_function("guard_on", |b| {
        let mut server = populated_server(&spec);
        b.iter(|| root_checkin(black_box(&mut server)));
    });
    group.bench_function("guard_off", |b| {
        let mut server = populated_server(&spec);
        server.policy_mut().cycle_guard = false;
        b.iter(|| root_checkin(black_box(&mut server)));
    });
    group.finish();
}

fn bench_lets_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: eager per-delivery `let` re-evaluation (the
    // paper's "continuously being reevaluated") vs deferred batch refresh.
    // A blueprint with three lets per view makes the phase visible.
    let src = r#"blueprint lets
        view default
            property uptodate default true
            when ckin do uptodate = true; post outofdate down done
            when outofdate do uptodate = false done
        endview
        view a
            property x default 0
            let l1 = ($x == 1)
            let l2 = ($x == 2) or ($uptodate == true)
            let l3 = not ($x == 3)
            when ev do x = $arg done
        endview
        endblueprint"#;
    let mut group = c.benchmark_group("prop/lets_ablation");
    group.bench_function("eager", |b| {
        let mut server = ProjectServer::from_source(src).unwrap();
        let oid = server.checkin("b", "a", "bench", b"x".to_vec()).unwrap();
        server.process_all().unwrap();
        let line = format!("postEvent ev up {oid} \"1\"");
        b.iter(|| {
            server.post_line(&line, "bench").unwrap();
            black_box(server.process_all().unwrap());
        });
    });
    group.bench_function("lazy_plus_refresh", |b| {
        let policy = blueprint_core::engine::policy::Policy {
            eager_lets: false,
            ..Default::default()
        };
        let mut server = ProjectServer::from_source(src).unwrap().with_policy(policy);
        let oid = server.checkin("b", "a", "bench", b"x".to_vec()).unwrap();
        server.process_all().unwrap();
        let line = format!("postEvent ev up {oid} \"1\"");
        b.iter(|| {
            server.post_line(&line, "bench").unwrap();
            server.process_all().unwrap();
            black_box(server.refresh_lets().unwrap());
        });
    });
    group.bench_function("lazy_no_refresh", |b| {
        let policy = blueprint_core::engine::policy::Policy {
            eager_lets: false,
            ..Default::default()
        };
        let mut server = ProjectServer::from_source(src).unwrap().with_policy(policy);
        let oid = server.checkin("b", "a", "bench", b"x".to_vec()).unwrap();
        server.process_all().unwrap();
        let line = format!("postEvent ev up {oid} \"1\"");
        b.iter(|| {
            server.post_line(&line, "bench").unwrap();
            black_box(server.process_all().unwrap());
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_depth, bench_fanout, bench_leaf_vs_root, bench_cycle_guard_ablation, bench_lets_ablation
}
criterion_main!(benches);

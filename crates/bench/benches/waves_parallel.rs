//! Experiment WAVES-PARALLEL — sharded propagation waves across worker
//! threads (ISSUE 5).
//!
//! The design under measurement: `F` link-disjoint view families, each a
//! `D`-stage derivation chain instantiated for `B` blocks. The compiler
//! puts every family in its own shard component, so a batch of events
//! that touches all families splits into `F` independent execution
//! groups — the parallelism the worker pool exploits.
//!
//! One measured iteration posts a `ckin` event at every family's root
//! OIDs (pure property waves: no objects or links are created, so the
//! database is identical across iterations and series) and drains the
//! queue with `process_all`. Series differ only in
//! `ProjectServer::set_wave_workers`:
//!
//! * `waves/parallel/workers_1` — the sequential compiled path;
//! * `waves/parallel/workers_{2,4,8}` — the sharded batch path.
//!
//! Interpretation: the sharded path is differentially proven
//! byte-identical to sequential at any worker count (see
//! `crates/core/tests/compiled_differential.rs`), so these series
//! measure pure wall-clock. Two caveats the JSON spells out:
//!
//! * speedup requires hardware parallelism — on a single-core container
//!   the sharded series instead price the overlay + epilogue overhead
//!   (the JSON records the core count next to the numbers);
//! * the write-heavy `waves/parallel` storm used to be the adverse case:
//!   under PR 5 ~85% of its wall-clock was property-write application
//!   replayed serially in the epilogue. PR 10's two-phase write pipeline
//!   moves the arena writes and (hash-sharded) index maintenance into
//!   the parallel phase, leaving only ordered journal-op replay + stats
//!   serial — `bench_phase_split` reports the measured split. The
//!   `waves/exec_storm` series adds per-delivery tool-invocation
//!   rendering (no epilogue cost), the workload shape sharding helps
//!   most; `waves/instance_chains` is the single-family storm that
//!   per-view-component sharding could not parallelize at all and
//!   per-OID instance sharding can.
//!
//! The `waves/exec_async` series (PR 6) swaps the rendering-only executor
//! for a real tool boundary: the same `exec`-heavy storm runs once with
//! the tool **inline** (the classic synchronous path: every invocation
//! executes inside the drain) and once **detached** (the invocation pool:
//! workers run the tool off the command path, results harvest in
//! submission order), plus a detached series under a rate-0.1 fault plan
//! with retries — sync vs async throughput at the same workload. The
//! non-criterion `fault_latency` measurement drives a fault storm through
//! the session command loop and reports p50/p99 latency of mutating
//! requests issued *during* the storm — the "a retrying tool never wedges
//! the loop" acceptance number (`BENCH_pr6.json`).
//!
//! The `waves/trace_overhead` series (PR 7) prices execution tracing:
//! the same write-heavy storm with the `TraceLog` disabled (the default
//! — the "zero hot-path cost when off" acceptance number) and with
//! retention on, draining the records each iteration as `trace get`
//! would. `BENCH_pr7.json` pins both against the PR 6 baseline.
//!
//! Smoke mode for CI: set `BENCH_SMOKE=1` to shrink measurement windows;
//! set `BENCH_JSON=<file>` to append results as JSON lines — that is how
//! `BENCH_pr5.json`, `BENCH_pr6.json`, `BENCH_pr7.json` and
//! `BENCH_pr10.json` are produced.

use std::hint::black_box;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use blueprint_core::engine::api::{Request, Response};
use blueprint_core::engine::exec::{DetachedJob, ScriptExecutor, ToolCtx};
use blueprint_core::engine::invoke::RetryPolicy;
use blueprint_core::engine::server::ProjectServer;
use blueprint_core::engine::service::{spawn_project_loop, ProjectService};
use damocles_meta::{Direction, EventMessage, MetaError, Oid};
use damocles_tools::tool::Tool;
use damocles_tools::{FaultPlan, ToolExecutor};

/// Link-disjoint view families.
const FAMILIES: usize = 8;
/// Derivation stages per family (depth of each wave).
const STAGES: usize = 6;
/// Blocks (independent chains) per family.
const BLOCKS: usize = 16;

/// Instance chains in the single-family storm (`waves/instance_chains`).
const CHAINS: usize = 64;

/// A blueprint of `families` disjoint derivation chains. Every stage
/// carries a `let` so each delivery re-evaluates an expression — the
/// compute the workers parallelize. With `exec_heavy`, every stale
/// delivery also renders a tool invocation (the §3.3 automatic tool
/// loop): pure worker-side compute with no epilogue write, the workload
/// shape sharding helps most.
fn family_blueprint_n(families: usize, exec_heavy: bool) -> String {
    use std::fmt::Write as _;
    let outofdate_rule = if exec_heavy {
        "when outofdate do uptodate = false; exec checker \"$oid\" \"$event by $user at $date\" done\n"
    } else {
        "when outofdate do uptodate = false done\n"
    };
    let mut src = format!(
        "blueprint waves\n\
         view default\n\
             property uptodate default true\n\
             let tracked = ($uptodate == true)\n\
             when ckin do uptodate = true; post outofdate down done\n\
             {outofdate_rule}\
         endview\n",
    );
    for f in 0..families {
        let _ = writeln!(src, "view f{f}_s0 endview");
        for s in 1..STAGES {
            let _ = writeln!(
                src,
                "view f{f}_s{s}\n    link_from f{f}_s{prev} move propagates outofdate, ckin type derived\nendview",
                prev = s - 1
            );
        }
    }
    src.push_str("endblueprint\n");
    src
}

fn family_blueprint(exec_heavy: bool) -> String {
    family_blueprint_n(FAMILIES, exec_heavy)
}

/// Builds the populated server: `blocks` chains per family, each
/// `STAGES` deep, and returns the root OID names events target.
fn populated_n(
    families: usize,
    blocks: usize,
    workers: usize,
    exec_heavy: bool,
) -> (ProjectServer, Vec<String>) {
    let mut server = ProjectServer::from_source(&family_blueprint_n(families, exec_heavy))
        .expect("blueprint parses");
    server.set_wave_workers(workers);
    let mut roots = Vec::new();
    for f in 0..families {
        for b in 0..blocks {
            let block = format!("f{f}b{b}");
            let mut prev = server
                .checkin(&block, &format!("f{f}_s0"), "bench", b"r".to_vec())
                .unwrap();
            roots.push(prev.to_string());
            for s in 1..STAGES {
                let next = server
                    .checkin(&block, &format!("f{f}_s{s}"), "bench", b"d".to_vec())
                    .unwrap();
                server.connect_oids(&prev, &next).unwrap();
                prev = next;
            }
        }
    }
    server.process_all().unwrap();
    (server, roots)
}

fn populated(workers: usize, exec_heavy: bool) -> (ProjectServer, Vec<String>) {
    populated_n(FAMILIES, BLOCKS, workers, exec_heavy)
}

/// One measured iteration: a batch of root `ckin` events (one per chain,
/// spanning every family) drained to quiescence.
fn storm<E: ScriptExecutor>(server: &mut ProjectServer<E>, roots: &[String]) -> u64 {
    for root in roots {
        server
            .post_line(&format!("postEvent ckin up {root}"), "bench")
            .unwrap();
    }
    server.process_all().unwrap().deliveries
}

fn bench_series(c: &mut Criterion, name: &str, exec_heavy: bool) {
    let mut group = c.benchmark_group(name);
    // Elements = wave deliveries per iteration: every chain delivers at
    // each of its stages.
    group.throughput(Throughput::Elements((FAMILIES * BLOCKS * STAGES) as u64));
    for &workers in &[1usize, 2, 4, 8] {
        let (mut server, roots) = populated(workers, exec_heavy);
        // Sanity: per-OID sharding puts every instance chain — not just
        // every view family — in its own group, and every chain link is
        // one recorded union.
        if workers > 1 {
            let map = server.shard_map();
            assert_eq!(map.group_count() as usize, FAMILIES * BLOCKS);
            assert_eq!(map.merges() as usize, FAMILIES * BLOCKS * (STAGES - 1));
        }
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| black_box(storm(&mut server, &roots)));
        });
    }
    group.finish();
}

/// CI runs this bench once per PR summary file; `BENCH_FILTER` selects
/// which target families run so each smoke file carries only its own
/// series (`parallel_waves` for the sharding series, `exec_async` for
/// the async-executor series). Unset = everything.
fn target_enabled(name: &str) -> bool {
    std::env::var("BENCH_FILTER").map_or(true, |f| f.is_empty() || name.contains(&f))
}

fn bench_parallel_waves(c: &mut Criterion) {
    if !target_enabled("parallel_waves") {
        return;
    }
    // Write-heavy tracking storm: every delivery's product is a property
    // write, so the deterministic epilogue (serial write replay) bounds
    // the speedup — the adverse case for sharding.
    bench_series(c, "waves/parallel", false);
    // Tool-invocation storm: deliveries also render exec invocations —
    // worker-side compute with no epilogue cost, the favourable case.
    bench_series(c, "waves/exec_storm", true);
}

/// The instance-sharding storm (PR 10): ONE view family, `CHAINS`
/// independent instance chains. Compile-time per-view-component sharding
/// sees a single shard group here — the whole batch would run serial at
/// any worker count. Per-OID union-find sharding gives one group per
/// chain, so this series isolates exactly the parallelism instance-level
/// sharding unlocked.
fn bench_instance_chains(c: &mut Criterion) {
    if !target_enabled("parallel_waves") {
        return;
    }
    let mut group = c.benchmark_group("waves/instance_chains");
    group.throughput(Throughput::Elements((CHAINS * STAGES) as u64));
    for &workers in &[1usize, 2, 4, 8] {
        let (mut server, roots) = populated_n(1, CHAINS, workers, false);
        if workers > 1 {
            let map = server.shard_map();
            assert_eq!(map.group_count() as usize, CHAINS);
            assert_eq!(map.merges() as usize, CHAINS * (STAGES - 1));
        }
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| black_box(storm(&mut server, &roots)));
        });
    }
    group.finish();
}

/// The Amdahl accounting behind PR 10 (not a criterion series): runs the
/// write-heavy storm at several worker counts and reports how the drain's
/// wall-clock splits between the worker phase (wave execution on the
/// shard lanes) and the apply phase (write application + absorb),
/// straight from [`ProjectServer::wave_phase_ns`]. Under PR 5 the apply
/// phase was one serial `set_prop` replay — ~85% of this storm. The
/// two-phase pipeline runs the arena writes and hash-sharded index
/// maintenance inside the apply phase in parallel, leaving only ordered
/// journal-op replay + stats serial, so the apply fraction (and with
/// cores, its wall-clock) is the number this PR exists to shrink.
fn bench_phase_split(_c: &mut Criterion) {
    if !target_enabled("parallel_waves") {
        return;
    }
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let iters = if smoke { 3 } else { 20 };
    for &workers in &[2usize, 4] {
        let (mut server, roots) = populated(workers, false);
        let (w0, a0) = server.wave_phase_ns();
        for _ in 0..iters {
            black_box(storm(&mut server, &roots));
        }
        let (w1, a1) = server.wave_phase_ns();
        let (worker_ns, apply_ns) = (w1 - w0, a1 - a0);
        let total = (worker_ns + apply_ns).max(1);
        let apply_frac = apply_ns as f64 / total as f64;
        println!(
            "waves/phase_split/workers_{workers}: worker {worker_ns} ns, \
             apply {apply_ns} ns ({:.1}% of drain) over {iters} storms",
            apply_frac * 100.0
        );
        append_bench_json(&format!(
            "{{\"id\":\"waves/phase_split/workers_{workers}\",\"worker_ns\":{worker_ns},\
             \"apply_ns\":{apply_ns},\"apply_fraction\":{apply_frac:.4},\"storms\":{iters}}}"
        ));
    }
}

// ---------------------------------------------------------------------
// PR 6: sync vs async tool execution, and command-loop latency under
// a fault storm.
// ---------------------------------------------------------------------

/// The bench stand-in for a real verification tool: a deterministic hash
/// over the interpolated arguments plus a short arithmetic spin, so an
/// invocation costs real worker-side microseconds. Inline and detached
/// forms do the identical compute — the series difference is purely
/// *where* it runs (on the command loop vs. the invocation pool).
struct Checker {
    fault: FaultPlan,
}

fn checker_work(args: &[String]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for a in args {
        for b in a.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    for i in 0..20_000u64 {
        h = h.rotate_left(7).wrapping_add(i);
    }
    h
}

impl Tool for Checker {
    fn name(&self) -> &'static str {
        "checker"
    }

    fn run(
        &mut self,
        _ctx: &mut ToolCtx<'_>,
        args: &[String],
    ) -> Result<Vec<EventMessage>, MetaError> {
        black_box(checker_work(args));
        Ok(Vec::new())
    }

    fn prepare_detached(&self, _ctx: &ToolCtx<'_>, args: &[String]) -> Option<DetachedJob> {
        let subject = args.first().cloned().unwrap_or_default();
        let fault = self.fault;
        let args = args.to_vec();
        Some(Box::new(move |attempt| {
            if fault.fails_attempt("checker", &subject, attempt) {
                return Err("checker crashed".to_string());
            }
            black_box(checker_work(&args));
            Ok(Vec::new())
        }))
    }
}

fn checker_executor(fault: FaultPlan, detached: bool) -> ToolExecutor {
    let mut executor = ToolExecutor::new();
    executor.register(Box::new(Checker { fault }));
    if detached {
        executor = executor.detached();
    }
    executor
}

/// A retry discipline fast enough for bench iterations under faults.
fn bench_retries() -> RetryPolicy {
    RetryPolicy {
        max_retries: 5,
        base_delay: Duration::from_millis(1),
        multiplier: 2,
        timeout: Duration::from_secs(30),
    }
}

/// Like [`populated`], but with a real tool executor behind the `exec`
/// boundary (always the `exec`-heavy blueprint, sequential drain).
fn populated_exec(executor: ToolExecutor) -> (ProjectServer<ToolExecutor>, Vec<String>) {
    let bp = blueprint_core::parse(&family_blueprint(true)).expect("blueprint parses");
    let mut server = ProjectServer::with_executor(bp, executor).expect("server builds");
    server.set_retry_policy(None, bench_retries());
    let mut roots = Vec::new();
    for f in 0..FAMILIES {
        for b in 0..BLOCKS {
            let block = format!("f{f}b{b}");
            let mut prev = server
                .checkin(&block, &format!("f{f}_s0"), "bench", b"r".to_vec())
                .unwrap();
            roots.push(prev.to_string());
            for s in 1..STAGES {
                let next = server
                    .checkin(&block, &format!("f{f}_s{s}"), "bench", b"d".to_vec())
                    .unwrap();
                server.connect_oids(&prev, &next).unwrap();
                prev = next;
            }
        }
    }
    server.process_all().unwrap();
    (server, roots)
}

/// Sync vs async tool execution at the same workload: the `exec`-heavy
/// storm with the checker running inline (every invocation executes on
/// the command loop inside the drain), detached on the invocation pool,
/// and detached under a rate-0.1 fault plan with retries.
fn bench_async_executor(c: &mut Criterion) {
    if !target_enabled("exec_async") {
        return;
    }
    let mut group = c.benchmark_group("waves/exec_async");
    // Elements = checker invocations per iteration: one per stale
    // delivery.
    group.throughput(Throughput::Elements((FAMILIES * BLOCKS * STAGES) as u64));
    let modes: [(&str, FaultPlan, bool); 3] = [
        ("inline", FaultPlan::never(), false),
        ("detached", FaultPlan::never(), true),
        ("detached_faults_0.1", FaultPlan::new(6, 0.1), true),
    ];
    for (label, fault, detached) in modes {
        let (mut server, roots) = populated_exec(checker_executor(fault, detached));
        group.bench_with_input(BenchmarkId::new("mode", label), &label, |b, _| {
            b.iter(|| black_box(storm(&mut server, &roots)));
        });
    }
    group.finish();
}

/// Execution-trace overhead (PR 7): the write-heavy storm with tracing
/// disabled vs. retaining, at 1 worker (sequential drain) and 4 workers
/// (per-lane trace buffers + deterministic absorb). `trace_off` must sit
/// within noise of `waves/parallel` at the same worker count — a
/// disabled `TraceLog` is one branch per would-be record.
fn bench_trace_overhead(c: &mut Criterion) {
    if !target_enabled("trace_overhead") {
        return;
    }
    let mut group = c.benchmark_group("waves/trace_overhead");
    group.throughput(Throughput::Elements((FAMILIES * BLOCKS * STAGES) as u64));
    for &workers in &[1usize, 4] {
        for retaining in [false, true] {
            let label = format!(
                "{}_w{workers}",
                if retaining { "trace_on" } else { "trace_off" }
            );
            let (mut server, roots) = populated(workers, false);
            server.set_trace_retention(retaining);
            group.bench_with_input(BenchmarkId::new("mode", &label), &label, |b, _| {
                b.iter(|| {
                    let deliveries = black_box(storm(&mut server, &roots));
                    // Drain like `trace get` would; otherwise retained
                    // records accumulate across iterations and the series
                    // measures allocator growth, not tracing.
                    let records = server.take_trace();
                    if retaining {
                        assert!(!records.is_empty());
                    }
                    black_box(records.len() as u64) + deliveries
                });
            });
        }
    }
    group.finish();
}

/// Appends one result line to the `BENCH_JSON` file, matching the format
/// the criterion harness emits.
fn append_bench_json(line: &str) {
    if let Some(path) = std::env::var_os("BENCH_JSON") {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// The acceptance number behind "a retrying tool never wedges the command
/// loop": run the `exec`-heavy storm through the session command loop
/// with a rate-0.1 fault plan (detached checker, retries on backoff), and
/// measure the latency of mutating requests issued from a second session
/// *while* the storm is in flight. Reports p50/p99/max to stdout and to
/// `BENCH_JSON`. Not a criterion series — criterion measures throughput
/// of a drained iteration; this measures interactive latency under load.
fn bench_fault_latency(_c: &mut Criterion) {
    if !target_enabled("exec_async") {
        return;
    }
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let (rounds, probes_per_round) = if smoke { (2, 40) } else { (8, 250) };

    let (server, roots) = populated_exec(checker_executor(FaultPlan::new(6, 0.1), true));
    let service = ProjectService::with_server(server);
    let (handle, join) = spawn_project_loop(service);
    let storm_session = handle.session();
    let probe_session = handle.session();

    let in_flight = || match probe_session.call(Request::Stat) {
        Response::Stat { stat } => {
            stat.pending_invocations + stat.running_invocations + stat.retrying_invocations
        }
        other => panic!("unexpected stat response {other:?}"),
    };

    let mut latencies: Vec<Duration> = Vec::new();
    for _ in 0..rounds {
        // Kick off the storm: root ckins cascade into checker
        // invocations, ~10% of which crash and retry on backoff.
        for root in &roots {
            let oid: Oid = root.parse().unwrap();
            let resp = storm_session.call(Request::Post {
                message: EventMessage::new("ckin", Direction::Up, oid),
                user: "bench".to_string(),
            });
            assert!(matches!(resp, Response::Ok), "{resp:?}");
        }
        let resp = storm_session.call(Request::ProcessAll);
        assert!(matches!(resp, Response::Processed { .. }), "{resp:?}");

        // Probe: mutating requests from a second session, timed while
        // invocations are still in flight.
        for p in 0..probes_per_round {
            let oid: Oid = roots[p % roots.len()].parse().unwrap();
            let t0 = Instant::now();
            let resp = probe_session.call(Request::Post {
                message: EventMessage::new("probe", Direction::Up, oid),
                user: "bench".to_string(),
            });
            latencies.push(t0.elapsed());
            assert!(matches!(resp, Response::Ok), "{resp:?}");
        }

        // Drain before the next round so rounds see comparable storms.
        while in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let resp = probe_session.call(Request::ProcessAll);
        assert!(matches!(resp, Response::Processed { .. }), "{resp:?}");
    }
    drop(storm_session);
    drop(probe_session);
    drop(handle);
    join.join().unwrap();

    latencies.sort_unstable();
    let pick = |q: usize| latencies[(latencies.len() - 1) * q / 100];
    let (p50, p99, max) = (pick(50), pick(99), *latencies.last().unwrap());
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "waves/exec_async/fault_latency_rate0.1: {} probes, p50 {p50:?}, p99 {p99:?}, max {max:?}",
        latencies.len()
    );
    append_bench_json(&format!(
        "{{\"id\":\"waves/exec_async/fault_latency_rate0.1\",\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"probes\":{},\"cores\":{}}}",
        p50.as_nanos(),
        p99.as_nanos(),
        max.as_nanos(),
        latencies.len(),
        cores
    ));
}

fn config() -> Criterion {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let (measure_ms, warm_ms, samples) = if smoke {
        (250, 80, 5)
    } else {
        (2_000, 400, 20)
    };
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(measure_ms))
        .warm_up_time(std::time::Duration::from_millis(warm_ms))
        .sample_size(samples)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parallel_waves, bench_instance_chains, bench_async_executor, bench_trace_overhead, bench_fault_latency, bench_phase_split
}
criterion_main!(benches);

//! Experiment WAVES-PARALLEL — sharded propagation waves across worker
//! threads (ISSUE 5).
//!
//! The design under measurement: `F` link-disjoint view families, each a
//! `D`-stage derivation chain instantiated for `B` blocks. The compiler
//! puts every family in its own shard component, so a batch of events
//! that touches all families splits into `F` independent execution
//! groups — the parallelism the worker pool exploits.
//!
//! One measured iteration posts a `ckin` event at every family's root
//! OIDs (pure property waves: no objects or links are created, so the
//! database is identical across iterations and series) and drains the
//! queue with `process_all`. Series differ only in
//! `ProjectServer::set_wave_workers`:
//!
//! * `waves/parallel/workers_1` — the sequential compiled path;
//! * `waves/parallel/workers_{2,4,8}` — the sharded batch path.
//!
//! Interpretation: the sharded path is differentially proven
//! byte-identical to sequential at any worker count (see
//! `crates/core/tests/compiled_differential.rs`), so these series
//! measure pure wall-clock. Two caveats the JSON spells out:
//!
//! * speedup requires hardware parallelism — on a single-core container
//!   the sharded series instead price the overlay + epilogue overhead
//!   (the JSON records the core count next to the numbers);
//! * the write-heavy `waves/parallel` storm is the adverse case: ~85% of
//!   its wall-clock is property-write application (index + journal-op +
//!   stats maintenance), which the deterministic epilogue replays
//!   serially — Amdahl caps that workload regardless of cores. The
//!   `waves/exec_storm` series adds per-delivery tool-invocation
//!   rendering (no epilogue cost), the workload shape sharding helps.
//!
//! Smoke mode for CI: set `BENCH_SMOKE=1` to shrink measurement windows;
//! set `BENCH_JSON=<file>` to append results as JSON lines — that is how
//! `BENCH_pr5.json` is produced.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use blueprint_core::engine::server::ProjectServer;

/// Link-disjoint view families.
const FAMILIES: usize = 8;
/// Derivation stages per family (depth of each wave).
const STAGES: usize = 6;
/// Blocks (independent chains) per family.
const BLOCKS: usize = 16;

/// A blueprint of `FAMILIES` disjoint derivation chains. Every stage
/// carries a `let` so each delivery re-evaluates an expression — the
/// compute the workers parallelize. With `exec_heavy`, every stale
/// delivery also renders a tool invocation (the §3.3 automatic tool
/// loop): pure worker-side compute with no epilogue write, the workload
/// shape sharding helps most.
fn family_blueprint(exec_heavy: bool) -> String {
    use std::fmt::Write as _;
    let outofdate_rule = if exec_heavy {
        "when outofdate do uptodate = false; exec checker \"$oid\" \"$event by $user at $date\" done\n"
    } else {
        "when outofdate do uptodate = false done\n"
    };
    let mut src = format!(
        "blueprint waves\n\
         view default\n\
             property uptodate default true\n\
             let tracked = ($uptodate == true)\n\
             when ckin do uptodate = true; post outofdate down done\n\
             {outofdate_rule}\
         endview\n",
    );
    for f in 0..FAMILIES {
        let _ = writeln!(src, "view f{f}_s0 endview");
        for s in 1..STAGES {
            let _ = writeln!(
                src,
                "view f{f}_s{s}\n    link_from f{f}_s{prev} move propagates outofdate, ckin type derived\nendview",
                prev = s - 1
            );
        }
    }
    src.push_str("endblueprint\n");
    src
}

/// Builds the populated server: `BLOCKS` chains per family, each
/// `STAGES` deep, and returns the root OID names events target.
fn populated(workers: usize, exec_heavy: bool) -> (ProjectServer, Vec<String>) {
    let mut server =
        ProjectServer::from_source(&family_blueprint(exec_heavy)).expect("blueprint parses");
    server.set_wave_workers(workers);
    let mut roots = Vec::new();
    for f in 0..FAMILIES {
        for b in 0..BLOCKS {
            let block = format!("f{f}b{b}");
            let mut prev = server
                .checkin(&block, &format!("f{f}_s0"), "bench", b"r".to_vec())
                .unwrap();
            roots.push(prev.to_string());
            for s in 1..STAGES {
                let next = server
                    .checkin(&block, &format!("f{f}_s{s}"), "bench", b"d".to_vec())
                    .unwrap();
                server.connect_oids(&prev, &next).unwrap();
                prev = next;
            }
        }
    }
    server.process_all().unwrap();
    (server, roots)
}

/// One measured iteration: a batch of root `ckin` events (one per chain,
/// spanning every family) drained to quiescence.
fn storm(server: &mut ProjectServer, roots: &[String]) -> u64 {
    for root in roots {
        server
            .post_line(&format!("postEvent ckin up {root}"), "bench")
            .unwrap();
    }
    server.process_all().unwrap().deliveries
}

fn bench_series(c: &mut Criterion, name: &str, exec_heavy: bool) {
    let mut group = c.benchmark_group(name);
    // Elements = wave deliveries per iteration: every chain delivers at
    // each of its stages.
    group.throughput(Throughput::Elements((FAMILIES * BLOCKS * STAGES) as u64));
    for &workers in &[1usize, 2, 4, 8] {
        let (mut server, roots) = populated(workers, exec_heavy);
        // Sanity: the partition really has one group per family.
        if workers > 1 {
            let map = server.shard_map();
            assert!(
                map.group_count() as usize >= FAMILIES,
                "expected >= {FAMILIES} shard groups, got {}",
                map.group_count()
            );
            assert_eq!(map.merges(), 0);
        }
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| black_box(storm(&mut server, &roots)));
        });
    }
    group.finish();
}

fn bench_parallel_waves(c: &mut Criterion) {
    // Write-heavy tracking storm: every delivery's product is a property
    // write, so the deterministic epilogue (serial write replay) bounds
    // the speedup — the adverse case for sharding.
    bench_series(c, "waves/parallel", false);
    // Tool-invocation storm: deliveries also render exec invocations —
    // worker-side compute with no epilogue cost, the favourable case.
    bench_series(c, "waves/exec_storm", true);
}

fn config() -> Criterion {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let (measure_ms, warm_ms, samples) = if smoke {
        (250, 80, 5)
    } else {
        (2_000, 400, 20)
    };
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(measure_ms))
        .warm_up_time(std::time::Duration::from_millis(warm_ms))
        .sample_size(samples)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parallel_waves
}
criterion_main!(benches);

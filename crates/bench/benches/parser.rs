//! Experiment LANG — BluePrint initialization: parse/validate/print
//! throughput on the ASCII rule files of Section 3.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use blueprint_core::lang::{parser, printer, validate};
use damocles_bench::chain_blueprint_source;
use damocles_flows::EDTC_SOURCE;

fn bench_edtc_parse(c: &mut Criterion) {
    c.bench_function("lang/parse_edtc", |b| {
        b.iter(|| {
            let bp = parser::parse(black_box(EDTC_SOURCE)).unwrap();
            black_box(bp)
        });
    });
    let bp = parser::parse(EDTC_SOURCE).unwrap();
    c.bench_function("lang/validate_edtc", |b| {
        b.iter(|| black_box(validate::validate(black_box(&bp))));
    });
    c.bench_function("lang/print_edtc", |b| {
        b.iter(|| black_box(printer::print(black_box(&bp))));
    });
}

fn bench_parse_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lang/parse_scaling");
    for &views in &[10usize, 50, 200, 800] {
        let src = chain_blueprint_source(views);
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(views), &src, |b, src| {
            b.iter(|| {
                let bp = parser::parse(black_box(src)).unwrap();
                black_box(bp)
            });
        });
    }
    group.finish();
}

fn bench_server_init(c: &mut Criterion) {
    // Full (re-)initialization as the project administrator does it:
    // parse + validate + server construction.
    c.bench_function("lang/server_init_edtc", |b| {
        b.iter(|| {
            let server =
                blueprint_core::ProjectServer::from_source(black_box(EDTC_SOURCE)).unwrap();
            black_box(server)
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_edtc_parse, bench_parse_scaling, bench_server_init
}
criterion_main!(benches);

//! Experiment FIG45 — the sample design flow of Figs. 4–5: the complete
//! Section 3.4 walkthrough and the event-message cost per designer action.
//!
//! Series: full walkthrough latency, per-action event counts, and the
//! automated (tool-driven) variant of the same flow.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use blueprint_core::engine::server::ProjectServer;
use damocles_flows::edtc_blueprint;
use damocles_flows::scenario::{play, Step};
use damocles_tools::{design_data, FaultPlan, ToolExecutor};

fn walkthrough_steps() -> Vec<Step> {
    vec![
        Step::checkin("CPU", "HDL_model", "designers", b"module cpu; BUG"),
        Step::ProcessAll,
        Step::post("postEvent hdl_sim up CPU,HDL_model,1 \"4 errors\"", "sim"),
        Step::ProcessAll,
        Step::checkin("CPU", "HDL_model", "designers", b"module cpu; fixed"),
        Step::ProcessAll,
        Step::post("postEvent hdl_sim up CPU,HDL_model,2 \"good\"", "sim"),
        Step::ProcessAll,
        Step::checkin("CPU", "schematic", "synthesis", b"cpu sch"),
        Step::checkin("REG", "schematic", "synthesis", b"reg sch"),
        Step::ProcessAll,
        Step::checkin("CPU", "HDL_model", "designers", b"module cpu; v3"),
        Step::ProcessAll,
    ]
}

fn bench_walkthrough(c: &mut Criterion) {
    c.bench_function("fig45/edtc_walkthrough", |b| {
        b.iter_batched(
            || ProjectServer::new(edtc_blueprint()).unwrap(),
            |mut server| {
                let report = play(&mut server, &walkthrough_steps()).unwrap();
                black_box(report)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_checkin_action(c: &mut Criterion) {
    // One designer action (schematic check-in) on a standing EDTC design:
    // the paper's per-action tracking overhead.
    let mut server = ProjectServer::new(edtc_blueprint()).unwrap();
    let hdl = server
        .checkin("CPU", "HDL_model", "d", b"m".to_vec())
        .unwrap();
    let sch = server
        .checkin("CPU", "schematic", "d", b"s".to_vec())
        .unwrap();
    let net = server
        .checkin("CPU", "netlist", "d", b"n".to_vec())
        .unwrap();
    let lay = server.checkin("CPU", "layout", "d", b"l".to_vec()).unwrap();
    server.connect_oids(&hdl, &sch).unwrap();
    server.connect_oids(&sch, &net).unwrap();
    server.connect_oids(&sch, &lay).unwrap();
    server.process_all().unwrap();
    c.bench_function("fig45/hdl_checkin_action", |b| {
        b.iter(|| {
            server
                .checkin("CPU", "HDL_model", "d", b"next".to_vec())
                .unwrap();
            let report = server.process_all().unwrap();
            black_box(report)
        });
    });
}

const AUTOMATED: &str = r#"
blueprint automated
view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
    when ckin do exec synthesizer "$oid" done
endview
view schematic
    property nl_sim_res default bad
    link_from HDL_model move propagates outofdate type derived
    use_link move propagates outofdate
    when nl_sim do nl_sim_res = $arg done
    when ckin do exec netlister "$oid"; exec layout_gen "$oid" done
endview
view netlist
    property sim_result default bad
    link_from schematic move propagates nl_sim, outofdate type derived
    when nl_sim do sim_result = $arg done
    when ckin do exec simulator "$oid" done
endview
view layout
    property drc_result default bad
    property lvs_result default not_equiv
    link_from schematic move propagates lvs, outofdate type equivalence
    when drc do drc_result = $arg done
    when lvs do lvs_result = $arg done
    when ckin do exec drc "$oid"; exec lvs "$oid" done
endview
endblueprint
"#;

fn bench_automated_cascade(c: &mut Criterion) {
    // Fig. 4's classical tool pipeline, executed automatically: one HDL
    // check-in drives synthesis → netlist → sim → layout → DRC/LVS.
    c.bench_function("fig45/automated_cascade_per_hdl_checkin", |b| {
        b.iter_batched(
            || {
                let bp = blueprint_core::parse(AUTOMATED).unwrap();
                ProjectServer::with_executor(bp, ToolExecutor::standard(FaultPlan::never()))
                    .unwrap()
            },
            |mut server| {
                server
                    .checkin(
                        "CPU",
                        "HDL_model",
                        "bench",
                        design_data::hdl_source("CPU", 1, &["REG"], false),
                    )
                    .unwrap();
                let report = server.process_all().unwrap();
                black_box(report)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_walkthrough, bench_checkin_action, bench_automated_cascade
}
criterion_main!(benches);

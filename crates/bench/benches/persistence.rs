//! Experiment PERSIST — durability cost: full text-image snapshots vs the
//! append-only op journal (ISSUE 2).
//!
//! The claim under measurement: incremental checkpointing cost scales with
//! the number of ops since the last checkpoint (the *dirty set*), not with
//! database size — so at 10k+ OIDs a small mutation batch is folded into
//! the journal orders of magnitude faster than `persist::save` can write
//! the full image.
//!
//! Series:
//! * `persist/full_save/{oids}` — `persist::save` + file write + fsync
//!   (the seed's only durability path).
//! * `persist/incremental_checkpoint/{oids}` — journal a 16-op dirty set:
//!   mutate, drain, append, fsync. Same database sizes; near-constant.
//! * `persist/journal_append/{ops}` — raw buffered append throughput.
//! * `persist/recover/{oids}` — `journal::recover` of snapshot + a 64-op
//!   tail (cold-start latency after a crash).
//!
//! Smoke mode for CI: set `BENCH_SMOKE=1` to shrink measurement windows;
//! set `BENCH_JSON=<file>` (vendored-criterion feature) to append results
//! as JSON lines — that is how `BENCH_pr2.json` is produced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use damocles_meta::journal::{self, JournalWriter};
use damocles_meta::{LinkClass, LinkKind, MetaDb, Oid, OidId, Value, Workspace};

const DIRTY_SET: usize = 16;

fn sizes() -> Vec<usize> {
    vec![1_000, 10_000]
}

/// A design-shaped database: one netlist chain per block, two properties
/// per OID, links carrying a PROPAGATE set.
fn build_db(oids: usize) -> (MetaDb, Vec<OidId>) {
    let mut db = MetaDb::with_capacity(oids);
    let mut ids = Vec::with_capacity(oids);
    let mut prev: Option<OidId> = None;
    for i in 0..oids {
        let id = db
            .create_oid(Oid::new(format!("blk{i}"), "netlist", 1))
            .unwrap();
        db.set_prop(id, "uptodate", Value::Bool(i % 2 == 0))
            .unwrap();
        db.set_prop(id, "owner", Value::Str(format!("user{}", i % 7)))
            .unwrap();
        if let Some(p) = prev {
            db.add_link_with(
                p,
                id,
                LinkClass::Derive,
                LinkKind::DeriveFrom,
                ["outofdate"],
            )
            .unwrap();
        }
        prev = Some(id);
        ids.push(id);
    }
    (db, ids)
}

fn bench_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("damocles-bench-persist");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The seed durability path: full image + file write + fsync.
fn bench_full_save(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist/full_save");
    let dir = bench_dir();
    for oids in sizes() {
        let (db, _) = build_db(oids);
        let path = dir.join(format!("full-{oids}.ddb"));
        group.throughput(Throughput::Elements(oids as u64));
        group.bench_with_input(BenchmarkId::from_parameter(oids), &db, |b, db| {
            b.iter(|| {
                let image = damocles_meta::persist::save(black_box(db));
                journal::write_file_atomic(&path, &image).unwrap();
                black_box(image.len())
            });
        });
    }
    group.finish();
}

/// The journal durability path for the same databases: a 16-op dirty set
/// is mutated, drained and fsynced. Cost tracks the dirty set, not `oids`.
fn bench_incremental_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist/incremental_checkpoint");
    let dir = bench_dir();
    for oids in sizes() {
        let (mut db, ids) = build_db(oids);
        db.attach_journal();
        let mut writer = JournalWriter::create(dir.join(format!("incr-{oids}.djl")), 1, 1).unwrap();
        let mut cursor = 0usize;
        group.throughput(Throughput::Elements(DIRTY_SET as u64));
        group.bench_with_input(BenchmarkId::from_parameter(oids), &(), |b, ()| {
            b.iter(|| {
                for k in 0..DIRTY_SET {
                    let id = ids[(cursor + k * 37) % ids.len()];
                    db.set_prop(id, "uptodate", Value::Bool(k % 2 == 0))
                        .unwrap();
                }
                cursor += 1;
                let ops = db.drain_journal_ops();
                for op in &ops {
                    writer.append(op).unwrap();
                }
                writer.sync().unwrap();
                black_box(ops.len())
            });
        });
    }
    group.finish();
}

/// Raw buffered append throughput (no fsync): the per-op journal tax.
fn bench_journal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist/journal_append");
    let dir = bench_dir();
    for ops in [64usize, 512] {
        let (mut db, ids) = build_db(256);
        db.attach_journal();
        let mut writer = JournalWriter::create(dir.join(format!("app-{ops}.djl")), 1, 1).unwrap();
        group.throughput(Throughput::Elements(ops as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ops), &(), |b, ()| {
            b.iter(|| {
                for k in 0..ops {
                    let id = ids[k % ids.len()];
                    db.set_prop(id, "drc", Value::Int(k as i64)).unwrap();
                }
                let drained = db.drain_journal_ops();
                for op in &drained {
                    writer.append(op).unwrap();
                }
                black_box(drained.len())
            });
        });
    }
    group.finish();
}

/// Crash-recovery latency: load snapshot + replay a 64-op tail.
fn bench_recover(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist/recover");
    for oids in sizes() {
        let (mut db, ids) = build_db(oids);
        let ws = Workspace::new("bench");
        let snapshot = journal::write_snapshot(&db, &ws, 1, 1);
        db.attach_journal();
        for k in 0..64usize {
            let id = ids[(k * 131) % ids.len()];
            db.set_prop(id, "uptodate", Value::Bool(k % 3 == 0))
                .unwrap();
        }
        let ops = db.drain_journal_ops();
        let mut tail = journal::encode_header(1, 1).into_bytes();
        for (seq, op) in ops.iter().enumerate() {
            tail.extend_from_slice(journal::encode_record(seq as u64, op).as_bytes());
        }
        group.throughput(Throughput::Elements(oids as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(oids),
            &(snapshot, tail),
            |b, (snapshot, tail)| {
                b.iter(|| {
                    let recovered = journal::recover(black_box(snapshot), black_box(tail)).unwrap();
                    black_box(recovered.report.replayed_ops)
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let (measure_ms, warm_ms, samples) = if smoke {
        (250, 80, 5)
    } else {
        (2_000, 400, 20)
    };
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(measure_ms))
        .warm_up_time(std::time::Duration::from_millis(warm_ms))
        .sample_size(samples)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_full_save, bench_incremental_checkpoint, bench_journal_append, bench_recover
}
criterion_main!(benches);

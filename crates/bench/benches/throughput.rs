//! Experiment THROUGHPUT — durable requests/sec through the command loop:
//! fsync-per-op vs group commit (ISSUE 3).
//!
//! The claim under measurement: the journal fsync (~0.2 ms, flat in db
//! size — BENCH_pr2) dominates per-request durability cost, so letting
//! the session command loop execute a *batch* of queued requests and
//! journal them with **one** append+fsync multiplies durable request
//! throughput by roughly the batch size, while keeping the same crash
//! contract (a reply in hand means the effect is on disk).
//!
//! Series (burst = 128 pipelined `checkin` requests per iteration, each
//! creating an OID, applying templates and journaling its payload):
//!
//! * `throughput/checkin_fsync_per_op/128` — command loop with
//!   `max_batch = 1`: every request pays its own fsync (the PR 2
//!   behaviour).
//! * `throughput/checkin_group_commit_16/128` — `max_batch = 16`.
//! * `throughput/checkin_group_commit_64/128` — `max_batch = 64`.
//! * `throughput/checkin_no_journal/128` — durability off: the engine +
//!   protocol ceiling the group commit converges towards.
//!
//! Acceptance (ISSUE 3): group commit at batch ≥ 16 sustains ≥ 5× the
//! durable event throughput of fsync-per-op.
//!
//! Smoke mode for CI: set `BENCH_SMOKE=1` to shrink measurement windows;
//! set `BENCH_JSON=<file>` to append results as JSON lines — that is how
//! `BENCH_pr3.json` is produced.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use blueprint_core::engine::api::{Request, Response};
use blueprint_core::engine::server::ProjectServer;
use blueprint_core::engine::service::{
    spawn_project_loop, spawn_project_loop_with_window, ClientSession, ProjectService,
};
use damocles_meta::{persist, MetaDb, Workspace};

/// Pipelined requests per measured iteration.
const BURST: usize = 128;

fn edtc_service() -> ProjectService {
    let server = ProjectServer::from_source(damocles_flows::EDTC_SOURCE).expect("EDTC parses");
    ProjectService::with_server(server)
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("damocles-bench-throughput-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An empty project image; `LoadProject`ing it resets database, journal
/// and workspace, so every measured iteration sees the same steady
/// state instead of an ever-growing database.
fn empty_image_path() -> std::path::PathBuf {
    let path = bench_dir("reset").join("empty.ddb");
    let image = persist::save_project(&MetaDb::new(), &Workspace::new("bench"));
    std::fs::write(&path, image).unwrap();
    path
}

/// Spawns a command loop over an EDTC service, optionally journaled.
/// `max_batch = None` uses the adaptive (production) window.
fn spawn(tag: &str, journaled: bool, max_batch: Option<usize>) -> ClientSession {
    let mut service = edtc_service();
    if journaled {
        let dir = bench_dir(tag);
        let resp = service.call(Request::EnableJournal {
            dir: dir.display().to_string(),
            // Never fold during a burst: measure append+fsync, not
            // checkpoint writes (the per-iteration reset folds anyway).
            every: u64::MAX,
        });
        assert!(matches!(resp, Response::Epoch { .. }), "{resp:?}");
    }
    let (handle, _join) = match max_batch {
        Some(n) => spawn_project_loop_with_window(service, Some(n)),
        None => spawn_project_loop(service),
    };
    handle.session()
}

/// One measured iteration: reset to the empty project (identical cost in
/// every series), then pipeline BURST check-ins and drain every reply —
/// each reply implies the request is journaled+fsynced when durability
/// is on.
fn burst(session: &ClientSession, reset: &str) -> usize {
    match session.call(Request::LoadProject {
        path: reset.to_string(),
    }) {
        Response::Loaded { .. } => {}
        other => panic!("reset failed: {other:?}"),
    }
    let pending: Vec<_> = (0..BURST)
        .map(|n| {
            session.submit(Request::Checkin {
                block: format!("b{n}"),
                view: "HDL_model".to_string(),
                user: "bench".to_string(),
                payload: b"module m;".to_vec(),
            })
        })
        .collect();
    let mut created = 0usize;
    for rx in pending {
        match rx.recv() {
            Some(Response::Created { .. }) => created += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    created
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.throughput(Throughput::Elements(BURST as u64));
    let reset = empty_image_path();
    let reset = reset.display().to_string();

    let configs: &[(&str, bool, Option<usize>)] = &[
        ("checkin_fsync_per_op", true, Some(1)),
        ("checkin_group_commit_16", true, Some(16)),
        ("checkin_group_commit_64", true, Some(64)),
        // The production default: no knob, window derived from the
        // pipelined backlog at batch formation.
        ("checkin_group_commit_adaptive", true, None),
        ("checkin_no_journal", false, None),
    ];
    for &(name, journaled, max_batch) in configs {
        let session = spawn(name, journaled, max_batch);
        group.bench_with_input(BenchmarkId::new(name, BURST), &(), |b, ()| {
            b.iter(|| black_box(burst(&session, &reset)));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let (measure_ms, warm_ms, samples) = if smoke {
        (250, 80, 5)
    } else {
        (2_000, 400, 20)
    };
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(measure_ms))
        .warm_up_time(std::time::Duration::from_millis(warm_ms))
        .sample_size(samples)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_throughput
}
criterion_main!(benches);

//! Experiment TOOL — tool scheduling (Section 3.3): automated flow depth,
//! wrapper permission-check overhead, and simulated tool cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use blueprint_core::engine::audit::AuditLog;
use blueprint_core::engine::exec::{ScriptExecutor, ScriptInvocation, ToolCtx};
use blueprint_core::engine::server::ProjectServer;
use blueprint_core::lang::parser::parse;
use damocles_meta::{MetaDb, Oid, Workspace};
use damocles_tools::{design_data, FaultPlan, Netlister, Requirement, Tool, ToolExecutor};

/// Chain blueprints where every stage's ckin execs the tool for the next.
fn chained_exec_blueprint(depth: usize) -> String {
    let mut src = String::from(
        "blueprint chain\nview default\n    property uptodate default true\n    when ckin do uptodate = true done\nendview\n",
    );
    for i in 0..depth {
        src.push_str(&format!("view s{i}\n"));
        if i > 0 {
            src.push_str(&format!(
                "    link_from s{} move propagates outofdate type derived\n",
                i - 1
            ));
        }
        if i + 1 < depth {
            src.push_str(&format!(
                "    when ckin do exec mkstage{} \"$oid\" done\n",
                i + 1
            ));
        }
        src.push_str("endview\n");
    }
    src.push_str("endblueprint\n");
    src
}

/// A tool that derives the next stage's object from its input.
struct StageMaker {
    stage: usize,
    name: &'static str,
}

impl Tool for StageMaker {
    fn name(&self) -> &'static str {
        self.name
    }
    fn run(
        &mut self,
        ctx: &mut ToolCtx<'_>,
        args: &[String],
    ) -> Result<Vec<damocles_meta::EventMessage>, damocles_meta::MetaError> {
        let oid: Oid = args[0].parse()?;
        let input = ctx.db.require(&oid)?;
        let payload = ctx
            .workspace
            .datum(input)
            .map(|d| d.content.clone())
            .unwrap_or_default();
        let derived = design_data::derive("stage", &payload);
        let (new_id, new_oid) = ctx.create_versioned(
            oid.block.as_str(),
            &format!("s{}", self.stage),
            self.name,
            derived,
        )?;
        let _ = ctx.connect(input, new_id);
        Ok(vec![damocles_meta::EventMessage::new(
            "ckin",
            damocles_meta::Direction::Up,
            new_oid,
        )])
    }
}

fn stage_names() -> [&'static str; 8] {
    [
        "mkstage0", "mkstage1", "mkstage2", "mkstage3", "mkstage4", "mkstage5", "mkstage6",
        "mkstage7",
    ]
}

fn bench_cascade_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("tool/cascade_depth");
    group.sample_size(10);
    for &depth in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter_batched(
                || {
                    let bp = parse(&chained_exec_blueprint(depth)).unwrap();
                    let mut ex = ToolExecutor::new();
                    for (i, name) in stage_names().iter().enumerate().take(depth).skip(1) {
                        ex.register(Box::new(StageMaker { stage: i, name }));
                    }
                    ProjectServer::with_executor(bp, ex).unwrap()
                },
                |mut server| {
                    server
                        .checkin("chip", "s0", "bench", b"seed".to_vec())
                        .unwrap();
                    let report = server.process_all().unwrap();
                    assert_eq!(report.scripts as usize, depth - 1);
                    black_box(report)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_permission_check(c: &mut Criterion) {
    // Wrapper permission query (§3.3): the per-run overhead of checking the
    // input state before the tool may run.
    let bp = parse("blueprint t view schematic endview view netlist link_from schematic propagates outofdate type derived endview endblueprint").unwrap();
    let mut db = MetaDb::new();
    let mut ws = Workspace::new("w");
    let mut audit = AuditLog::counters_only();
    let (_, sch) = ws
        .checkin(&mut db, "cpu", "schematic", "bench", b"s".to_vec())
        .unwrap();
    db.set_prop(
        db.require(&sch).unwrap(),
        "uptodate",
        damocles_meta::Value::Bool(true),
    )
    .unwrap();

    let mut denied_ex = ToolExecutor::new();
    denied_ex.register(Box::new(Netlister::new()));
    denied_ex.require("netlister", Requirement::prop("nonexistent_prop"));

    let invocation = ScriptInvocation {
        script: "netlister".into(),
        args: vec![sch.to_string()],
        notify: false,
        origin: sch.to_string(),
        event: "ckin".into(),
    };
    c.bench_function("tool/permission_denied_path", |b| {
        b.iter(|| {
            let mut ctx = ToolCtx {
                db: &mut db,
                workspace: &mut ws,
                blueprint: &bp,
                audit: &mut audit,
            };
            let msgs = denied_ex.execute(black_box(&invocation), &mut ctx);
            black_box(msgs)
        });
    });
}

fn bench_tool_runs(c: &mut Criterion) {
    // Raw cost of one simulated netlister run (object creation + payload
    // derivation + linking).
    let bp = parse("blueprint t view schematic endview view netlist link_from schematic propagates outofdate type derived endview endblueprint").unwrap();
    c.bench_function("tool/netlister_run", |b| {
        b.iter_batched(
            || {
                let mut db = MetaDb::new();
                let mut ws = Workspace::new("w");
                let (_, sch) = ws
                    .checkin(&mut db, "cpu", "schematic", "bench", b"sch-data".to_vec())
                    .unwrap();
                (db, ws, sch)
            },
            |(mut db, mut ws, sch)| {
                let mut audit = AuditLog::counters_only();
                let mut ctx = ToolCtx {
                    db: &mut db,
                    workspace: &mut ws,
                    blueprint: &bp,
                    audit: &mut audit,
                };
                let msgs = Netlister::new().run(&mut ctx, &[sch.to_string()]).unwrap();
                black_box(msgs)
            },
            criterion::BatchSize::SmallInput,
        );
    });

    c.bench_function("tool/fault_plan_decision", |b| {
        let plan = FaultPlan::new(7, 0.3);
        b.iter(|| black_box(plan.fails("drc", black_box("alu,layout,17"))));
    });
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cascade_depth, bench_permission_check, bench_tool_runs
}
criterion_main!(benches);

//! Experiment FLEET — the multi-project engine fleet (ISSUE 8).
//!
//! Three questions, three series:
//!
//! * `fleet/routing/*` — what does the fleet front door cost per request
//!   against a dedicated `ProjectHandle` command loop? Both sides serve
//!   one journaled project; the fleet adds the router hop, the worker
//!   inbox, and per-project settle. Measured on `stat` so the number is
//!   pure routing (no fsync in either path).
//! * `fleet/activation/*` — the LRU cycle priced end to end: with
//!   `max_active = 1`, two tenants alternating requests force every
//!   single call through park → evict (flush + checkpoint) → pin →
//!   recover (snapshot + tail replay). The non-criterion probe reports
//!   p50/p99 of that full cold-hit latency.
//! * `fleet/throughput/*` — durable post+drain round-trips per second
//!   for a resident fleet (8 tenants in 8 slots, no eviction) vs the
//!   headline churn shape (100 tenants through 8 slots, nearly every
//!   touch pays an eviction + reactivation).
//!
//! Smoke mode for CI: set `BENCH_SMOKE=1` to shrink measurement windows;
//! set `BENCH_JSON=<file>` to append results as JSON lines — that is how
//! `BENCH_pr8.json` is produced.

use std::hint::black_box;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use blueprint_core::engine::api::{Request, Response};
use blueprint_core::engine::exec::NullExecutor;
use blueprint_core::engine::fleet::{spawn_fleet, FleetConfig, FleetSession, ProjectRegistry};
use blueprint_core::engine::service::{spawn_project_loop, ProjectService};
use damocles_meta::{Direction, EventMessage, Oid};

/// The tracked flow every tenant runs — the same shape the single-node
/// throughput bench journals, so routing numbers are comparable.
const TRACKED: &str = r#"
    blueprint fleetbench
    view default
        property uptodate default true
        when ckin do uptodate = true; post outofdate down done
        when outofdate do uptodate = false done
    endview
    view HDL_model endview
    endblueprint
"#;

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("damocles-bench-fleet-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

/// `BENCH_FILTER` selects target families, as in the other bench files.
fn target_enabled(name: &str) -> bool {
    std::env::var("BENCH_FILTER").map_or(true, |f| f.is_empty() || name.contains(&f))
}

fn must_attach(session: &FleetSession, project: &str) {
    let resp = session.call(Request::Attach {
        project: project.to_string(),
        create: true,
    });
    assert!(
        matches!(resp, Response::Attached { .. }),
        "attach failed: {resp:?}"
    );
}

/// Seeds one tenant with `blocks` HDL check-ins and returns the OID the
/// measured posts target.
fn seed(session: &FleetSession, blocks: usize) -> Oid {
    let mut first = None;
    for b in 0..blocks {
        let resp = session.call(Request::Checkin {
            block: format!("b{b}"),
            view: "HDL_model".to_string(),
            user: "bench".to_string(),
            payload: b"module m;".to_vec(),
        });
        match resp {
            Response::Created { oid } => first.get_or_insert(oid),
            other => panic!("seed check-in failed: {other:?}"),
        };
    }
    first.expect("at least one seeded block")
}

/// One durable round-trip: post a `ckin` event at the tenant's root OID
/// and drain it (a property write, no object growth — the database is
/// identical across iterations).
fn touch(session: &FleetSession, oid: &Oid) {
    let resp = session.call(Request::Post {
        message: EventMessage::new("ckin", Direction::Up, oid.clone()),
        user: "bench".to_string(),
    });
    assert!(matches!(resp, Response::Ok), "{resp:?}");
    let resp = session.call(Request::ProcessAll);
    assert!(matches!(resp, Response::Processed { .. }), "{resp:?}");
}

fn append_bench_json(line: &str) {
    if let Some(path) = std::env::var_os("BENCH_JSON") {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

// ---------------------------------------------------------------------
// Routing overhead vs a dedicated ProjectHandle
// ---------------------------------------------------------------------

fn bench_routing(c: &mut Criterion) {
    if !target_enabled("fleet_routing") {
        return;
    }
    let mut group = c.benchmark_group("fleet/routing");

    // Dedicated baseline: one journaled project behind its own command
    // loop, no router in the path.
    let dir = bench_dir("routing-direct");
    let mut service: ProjectService = ProjectService::new();
    assert!(!service
        .call(Request::Init {
            source: TRACKED.into()
        })
        .is_error());
    assert!(!service
        .call(Request::EnableJournal {
            dir: dir.display().to_string(),
            every: 1024,
        })
        .is_error());
    let (handle, _join) = spawn_project_loop(service);
    let direct = handle.session();
    group.bench_function("stat_direct", |b| {
        b.iter(|| black_box(direct.call(Request::Stat)));
    });

    // The same project served through the fleet: router → worker inbox →
    // per-project settle → reply.
    let root = bench_dir("routing-fleet");
    let registry = ProjectRegistry::open(&root, TRACKED, FleetConfig::default()).unwrap();
    let (fleet, _fleet_join) = spawn_fleet::<NullExecutor>(registry);
    let session = fleet.session();
    must_attach(&session, "solo");
    seed(&session, 1);
    group.bench_function("stat_fleet", |b| {
        b.iter(|| black_box(session.call(Request::Stat)));
    });
    group.finish();
}

// ---------------------------------------------------------------------
// Activation latency: the full LRU cycle per request
// ---------------------------------------------------------------------

/// Two tenants, one residency slot: every call parks, evicts the other
/// tenant (flush + checkpoint), pins, and recovers from `snapshot +
/// tail` — the complete cold-hit path. p50/p99 of `stat` round-trips
/// through that cycle is the activation latency number.
fn bench_activation(_c: &mut Criterion) {
    if !target_enabled("fleet_activation") {
        return;
    }
    let (seed_blocks, cycles) = if smoke() { (8, 40) } else { (64, 400) };
    let root = bench_dir("activation");
    let config = FleetConfig {
        engine_workers: 1,
        max_active: 1,
        ..FleetConfig::default()
    };
    let registry = ProjectRegistry::open(&root, TRACKED, config).unwrap();
    let (fleet, _join) = spawn_fleet::<NullExecutor>(registry);
    let counters = fleet.counters();
    let sessions: Vec<FleetSession> = ["ping", "pong"]
        .iter()
        .map(|name| {
            let session = fleet.session();
            must_attach(&session, name);
            seed(&session, seed_blocks);
            session
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::with_capacity(cycles);
    for i in 0..cycles {
        let session = &sessions[i % 2];
        let t0 = Instant::now();
        let resp = session.call(Request::Stat);
        latencies.push(t0.elapsed());
        assert!(matches!(resp, Response::Stat { .. }), "{resp:?}");
    }
    // Every measured call except possibly the first crossed the full
    // evict + recover cycle.
    let activations = counters
        .activations
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        activations as usize >= cycles,
        "only {activations} activations over {cycles} alternating calls"
    );

    latencies.sort_unstable();
    let pick = |q: usize| latencies[(latencies.len() - 1) * q / 100];
    let (p50, p99, max) = (pick(50), pick(99), *latencies.last().unwrap());
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "fleet/activation/cycle ({seed_blocks} oids/tenant): {cycles} cycles, \
         p50 {p50:?}, p99 {p99:?}, max {max:?}"
    );
    append_bench_json(&format!(
        "{{\"id\":\"fleet/activation/cycle_{seed_blocks}oids\",\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"cycles\":{},\"cores\":{}}}",
        p50.as_nanos(),
        p99.as_nanos(),
        max.as_nanos(),
        cycles,
        cores
    ));
}

// ---------------------------------------------------------------------
// Throughput: resident fleet vs the 100-through-8 churn shape
// ---------------------------------------------------------------------

fn bench_throughput(c: &mut Criterion) {
    if !target_enabled("fleet_throughput") {
        return;
    }
    let mut group = c.benchmark_group("fleet/throughput");

    // Shapes: (series, tenants, max_active). The resident shape never
    // evicts; the churn shape pays the LRU cycle on nearly every touch.
    let shapes: &[(&str, usize, usize)] = &[("resident_8_of_8", 8, 8), ("churn_100_of_8", 100, 8)];
    for &(series, tenants, max_active) in shapes {
        let root = bench_dir(&format!("throughput-{series}"));
        let config = FleetConfig {
            engine_workers: 4,
            max_active,
            ..FleetConfig::default()
        };
        let mut registry = ProjectRegistry::open(&root, TRACKED, config).unwrap();
        for t in 0..tenants {
            registry.register(&format!("t{t:03}")).unwrap();
        }
        let (fleet, _join) = spawn_fleet::<NullExecutor>(registry);
        let sessions: Vec<(FleetSession, Oid)> = (0..tenants)
            .map(|t| {
                let session = fleet.session();
                must_attach(&session, &format!("t{t:03}"));
                let oid = seed(&session, 1);
                (session, oid)
            })
            .collect();
        // One element = one durable post + drain on one tenant; a full
        // iteration sweeps the roster once.
        group.throughput(Throughput::Elements(tenants as u64));
        group.bench_function(series, |b| {
            b.iter(|| {
                for (session, oid) in &sessions {
                    touch(session, oid);
                }
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    let (measure_ms, warm_ms, samples) = if smoke() {
        (250, 80, 5)
    } else {
        (2_000, 400, 20)
    };
    Criterion::default()
        .measurement_time(Duration::from_millis(measure_ms))
        .warm_up_time(Duration::from_millis(warm_ms))
        .sample_size(samples)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_routing, bench_activation, bench_throughput
}
criterion_main!(benches);

//! Experiments FIG2 + FIG3 — template-rule application across versions:
//! property transfer (Fig. 2) and link shifting (Fig. 3).
//!
//! Series: new-version creation cost vs number of template properties
//! (copy / move / default) and vs number of attached links (move).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use blueprint_core::engine::audit::AuditLog;
use blueprint_core::engine::template;
use blueprint_core::lang::parser::parse;
use damocles_meta::{LinkClass, LinkKind, MetaDb, Oid, Value};

/// A blueprint whose view carries `n` template properties of one transfer
/// mode.
fn property_blueprint(n: usize, mode: &str) -> blueprint_core::Blueprint {
    let mut src = String::from("blueprint bp view V\n");
    for i in 0..n {
        src.push_str(&format!("    property p{i} default bad {mode}\n"));
    }
    src.push_str("endview endblueprint");
    parse(&src).unwrap()
}

fn bench_property_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/property_transfer");
    for &n in &[4usize, 16, 64, 256] {
        for mode in ["", "copy", "move"] {
            let label = if mode.is_empty() { "default" } else { mode };
            let bp = property_blueprint(n, mode);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter_batched(
                    || {
                        // A v1 with all properties populated.
                        let mut db = MetaDb::new();
                        let mut audit = AuditLog::counters_only();
                        let v1 = db.create_oid(Oid::new("alu", "V", 1)).unwrap();
                        template::apply_on_create(&bp, &mut db, v1, &mut audit).unwrap();
                        for i in 0..n {
                            db.set_prop(v1, &format!("p{i}"), Value::from_atom("ok"))
                                .unwrap();
                        }
                        (db, audit)
                    },
                    |(mut db, mut audit)| {
                        let v2 = db.create_oid(Oid::new("alu", "V", 2)).unwrap();
                        let report =
                            template::apply_on_create(&bp, &mut db, v2, &mut audit).unwrap();
                        black_box(report)
                    },
                    criterion::BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_link_move(c: &mut Criterion) {
    // Fig. 3 at scale: a GDSII object with n incoming derive links; creating
    // version v+1 shifts them all.
    let bp = parse(
        "blueprint f3 view NetList endview view GDSII link_from NetList move propagates OutOfDate type derive_from endview endblueprint",
    )
    .unwrap();
    let mut group = c.benchmark_group("fig3/link_move");
    for &n in &[4usize, 16, 64, 256] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut db = MetaDb::new();
                    let gds = db.create_oid(Oid::new("alu", "GDSII", 1)).unwrap();
                    for i in 0..n {
                        let nl = db
                            .create_oid(Oid::new(format!("nl{i}"), "NetList", 1))
                            .unwrap();
                        db.add_link_with(
                            nl,
                            gds,
                            LinkClass::Derive,
                            LinkKind::DeriveFrom,
                            ["OutOfDate"],
                        )
                        .unwrap();
                    }
                    db
                },
                |mut db| {
                    let mut audit = AuditLog::counters_only();
                    let v2 = db.create_oid(Oid::new("alu", "GDSII", 2)).unwrap();
                    let report = template::apply_on_create(&bp, &mut db, v2, &mut audit).unwrap();
                    assert_eq!(report.links_moved, n);
                    black_box(db)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_link_instantiation(c: &mut Criterion) {
    // Template-filling link creation (the "new Link being created" path).
    let bp = parse(
        "blueprint t view A endview view B link_from A propagates e1, e2, e3 type derived endview endblueprint",
    )
    .unwrap();
    c.bench_function("fig3/instantiate_link", |b| {
        b.iter_batched(
            || {
                let mut db = MetaDb::new();
                let a = db.create_oid(Oid::new("x", "A", 1)).unwrap();
                let bb = db.create_oid(Oid::new("x", "B", 1)).unwrap();
                (db, a, bb)
            },
            |(mut db, a, bb)| {
                let link = template::instantiate_link(&bp, &mut db, a, bb).unwrap();
                black_box(link)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_property_transfer, bench_link_move, bench_link_instantiation
}
criterion_main!(benches);

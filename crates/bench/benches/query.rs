//! Experiment QUERY — designer queries and Configuration snapshots
//! (Sections 2 and 3.1): project-state query latency and snapshot build
//! cost vs database size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use damocles_bench::populated_server;
use damocles_flows::DesignSpec;
use damocles_meta::{ConfigurationBuilder, ProjectQuery, SnapshotRule};

fn sizes() -> Vec<DesignSpec> {
    vec![
        DesignSpec {
            stages: 4,
            blocks: 25,
            fanout: 3,
        },
        DesignSpec {
            stages: 4,
            blocks: 100,
            fanout: 3,
        },
        DesignSpec {
            stages: 4,
            blocks: 400,
            fanout: 3,
        },
    ]
}

fn bench_out_of_date(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/out_of_date");
    for spec in sizes() {
        let mut server = populated_server(&spec);
        // Make roughly half the design stale.
        server
            .checkin("blk0", "v0", "bench", b"change".to_vec())
            .unwrap();
        server.process_all().unwrap();
        group.throughput(Throughput::Elements(spec.oid_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.oid_count()),
            &server,
            |b, server| {
                b.iter(|| black_box(server.query().out_of_date("uptodate")));
            },
        );
    }
    group.finish();
}

fn bench_work_remaining(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/work_remaining");
    for spec in sizes() {
        let server = populated_server(&spec);
        let sink = server
            .db()
            .latest_version(
                &DesignSpec::block_name(spec.blocks - 1),
                &DesignSpec::view_name(spec.stages - 1),
            )
            .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.oid_count()),
            &server,
            |b, server| {
                b.iter(|| {
                    let work = server
                        .query()
                        .work_remaining(black_box(sink), "uptodate")
                        .unwrap();
                    black_box(work)
                });
            },
        );
    }
    group.finish();
}

fn bench_snapshots(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/snapshot_build");
    for spec in sizes() {
        let server = populated_server(&spec);
        let root = server.db().latest_version("blk0", "v0").unwrap();
        group.throughput(Throughput::Elements(spec.oid_count() as u64));
        group.bench_with_input(
            BenchmarkId::new("closure", spec.oid_count()),
            &server,
            |b, server| {
                b.iter(|| {
                    let snap = ConfigurationBuilder::new(server.db())
                        .traverse(black_box(root), SnapshotRule::Closure)
                        .build("bench");
                    black_box(snap)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("query_rule", spec.oid_count()),
            &server,
            |b, server| {
                b.iter(|| {
                    let snap = ConfigurationBuilder::new(server.db())
                        .query(|entry| entry.oid.version == 1)
                        .build("bench");
                    black_box(snap)
                });
            },
        );
    }
    group.finish();
}

fn bench_dependency_closure(c: &mut Criterion) {
    let spec = DesignSpec {
        stages: 6,
        blocks: 100,
        fanout: 2,
    };
    let server = populated_server(&spec);
    let sink = server
        .db()
        .latest_version(
            &DesignSpec::block_name(spec.blocks - 1),
            &DesignSpec::view_name(spec.stages - 1),
        )
        .unwrap();
    c.bench_function("query/dependency_closure", |b| {
        let q = ProjectQuery::new(server.db());
        b.iter(|| black_box(q.dependency_closure(black_box(sink)).unwrap()));
    });
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_out_of_date, bench_work_remaining, bench_snapshots, bench_dependency_closure
}
criterion_main!(benches);

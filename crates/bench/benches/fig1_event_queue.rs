//! Experiment FIG1 — the BluePrint architecture of Fig. 1: design events are
//! queued FIFO and processed sequentially by the engine.
//!
//! Series: queue throughput (enqueue + drain) vs batch size, wire-format
//! parsing cost, and end-to-end post→process latency on the EDTC server.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use blueprint_core::engine::event::QueuedEvent;
use blueprint_core::engine::queue::EventQueue;
use blueprint_core::engine::server::ProjectServer;
use damocles_flows::edtc_blueprint;
use damocles_meta::{Direction, EventMessage, MetaDb, Oid};

fn bench_queue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/queue_fifo");
    let mut db = MetaDb::new();
    let id = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
    for &n in &[100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.enqueue(
                        QueuedEvent::target("hdl_sim", Direction::Up, id, "bench")
                            .with_arg(format!("run {i}")),
                    );
                }
                let mut drained = 0usize;
                while let Some(ev) = q.dequeue() {
                    drained += 1;
                    black_box(&ev);
                }
                assert_eq!(drained, n);
            });
        });
    }
    group.finish();
}

fn bench_wire_parse(c: &mut Criterion) {
    let line = r#"postEvent ckin up reg,verilog,4 "logic sim passed""#;
    c.bench_function("fig1/wire_parse", |b| {
        b.iter(|| {
            let msg: EventMessage = black_box(line).parse().unwrap();
            black_box(msg)
        });
    });
    let msg: EventMessage = line.parse().unwrap();
    c.bench_function("fig1/wire_format", |b| {
        b.iter(|| black_box(msg.to_string()));
    });
}

fn bench_end_to_end_event(c: &mut Criterion) {
    // post → queue → engine → property update, on the EDTC blueprint with a
    // non-propagating event (pure per-event overhead), compiled dispatch vs
    // the seed's AST-walking dispatch.
    let mut server = ProjectServer::new(edtc_blueprint()).unwrap();
    let hdl = server
        .checkin("CPU", "HDL_model", "bench", b"m".to_vec())
        .unwrap();
    server.process_all().unwrap();
    let line = format!("postEvent hdl_sim up {hdl} \"good\"");
    c.bench_function("fig1/post_and_process_one_event", |b| {
        b.iter(|| {
            server.post_line(&line, "bench").unwrap();
            let report = server.process_all().unwrap();
            black_box(report)
        });
    });

    let mut server = ProjectServer::new(edtc_blueprint())
        .unwrap()
        .with_ast_dispatch();
    let hdl = server
        .checkin("CPU", "HDL_model", "bench", b"m".to_vec())
        .unwrap();
    server.process_all().unwrap();
    let line = format!("postEvent hdl_sim up {hdl} \"good\"");
    c.bench_function("fig1/post_and_process_one_event_ast", |b| {
        b.iter(|| {
            server.post_line(&line, "bench").unwrap();
            let report = server.process_all().unwrap();
            black_box(report)
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_queue_throughput, bench_wire_parse, bench_end_to_end_event
}
criterion_main!(benches);

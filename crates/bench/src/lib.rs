//! Shared helpers for the reproduction benches.
//!
//! Each bench file regenerates one experiment from DESIGN.md §3; the
//! measured series are recorded against the paper's qualitative claims in
//! EXPERIMENTS.md.

use blueprint_core::engine::server::ProjectServer;
use damocles_flows::{generator, DesignSpec};

/// A strict-propagation server populated with `spec`'s design.
pub fn populated_server(spec: &DesignSpec) -> ProjectServer {
    let mut server = ProjectServer::from_source(&spec.blueprint_source(true))
        .expect("generated blueprint valid");
    generator::populate(&mut server, spec).expect("populate");
    server
}

/// A loosened (no-propagation) server populated with `spec`'s design.
pub fn loosened_server(spec: &DesignSpec) -> ProjectServer {
    let mut server = ProjectServer::from_source(&spec.blueprint_source(false))
        .expect("generated blueprint valid");
    generator::populate(&mut server, spec).expect("populate");
    server
}

/// Generates a blueprint source with `views` chained views, for parser
/// throughput benches.
pub fn chain_blueprint_source(views: usize) -> String {
    let spec = DesignSpec {
        stages: views,
        blocks: 1,
        fanout: 1,
    };
    spec.blueprint_source(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        let spec = DesignSpec::tiny();
        let s = populated_server(&spec);
        assert_eq!(s.db().oid_count(), spec.oid_count());
        let l = loosened_server(&spec);
        assert_eq!(l.db().oid_count(), spec.oid_count());
        assert!(chain_blueprint_source(5).contains("view v4"));
    }
}

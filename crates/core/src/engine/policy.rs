//! Project policies governing the run-time engine.
//!
//! "The BluePrint allows to capture the entire information about the design
//! flow and to implement design policies for enforcing the project
//! methodology." — Section 3.2. Policies are the knobs the project
//! administrator turns per project phase: strictness towards unknown views
//! and events, propagation depth limits, and frozen views (a sign-off phase
//! may forbid check-ins to released views).

use std::collections::BTreeSet;

/// How the engine treats events for which nothing is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strictness {
    /// Silently ignore (the paper's non-obstructive default).
    #[default]
    Lenient,
    /// Record an [`super::audit::AuditRecord::UnmatchedEvent`] but continue.
    Observe,
    /// Fail the event with an error (for locked-down sign-off phases).
    Reject,
}

/// Engine policy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// Maximum depth of post-cascades within one wave. The paper never
    /// bounds this (1995 blueprints were small); we bound it so a
    /// mis-written blueprint cannot hang the project server. Deviations are
    /// recorded in the audit log as `DepthTruncated`.
    pub max_post_depth: u32,
    /// Treatment of events targeting views with no rules at all.
    pub unmatched_events: Strictness,
    /// Treatment of OIDs whose view is not declared in the blueprint.
    pub unknown_views: Strictness,
    /// Views whose `ckin` is forbidden (released / signed-off data).
    pub frozen_views: BTreeSet<String>,
    /// Whether the cycle guard is enabled. Disabling it is only safe on
    /// acyclic link graphs; the ablation bench measures its cost.
    pub cycle_guard: bool,
    /// Whether continuous assignments are re-evaluated eagerly on every
    /// delivery (the paper's "continuously being reevaluated"). With
    /// `false`, deliveries skip the `let` phase and the caller batches the
    /// work through `ProjectServer::refresh_lets` — the ⚗ ablation of
    /// DESIGN.md.
    pub eager_lets: bool,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            max_post_depth: 64,
            unmatched_events: Strictness::Lenient,
            unknown_views: Strictness::Lenient,
            frozen_views: BTreeSet::new(),
            cycle_guard: true,
            eager_lets: true,
        }
    }
}

impl Policy {
    /// The paper's non-obstructive defaults.
    pub fn non_obstructive() -> Self {
        Policy::default()
    }

    /// A locked-down policy for sign-off phases: unknown views and unmatched
    /// events are rejected.
    pub fn signoff() -> Self {
        Policy {
            unmatched_events: Strictness::Reject,
            unknown_views: Strictness::Reject,
            ..Policy::default()
        }
    }

    /// Freezes a view (builder style).
    pub fn freeze_view(mut self, view: impl Into<String>) -> Self {
        self.frozen_views.insert(view.into());
        self
    }

    /// Whether check-ins to `view` are forbidden.
    pub fn is_frozen(&self, view: &str) -> bool {
        self.frozen_views.contains(view)
    }
}

/// A policy violation surfaced to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyViolation {
    /// An event targeted an OID whose view the blueprint does not declare.
    UnknownView {
        /// The undeclared view name.
        view: String,
        /// The offending event.
        event: String,
    },
    /// An event matched no rule anywhere under a rejecting policy.
    UnmatchedEvent {
        /// The view that had no rules for it.
        view: String,
        /// The offending event.
        event: String,
    },
    /// A check-in targeted a frozen view.
    FrozenView {
        /// The frozen view name.
        view: String,
    },
}

impl std::fmt::Display for PolicyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyViolation::UnknownView { view, event } => {
                write!(f, "event `{event}` targets undeclared view `{view}`")
            }
            PolicyViolation::UnmatchedEvent { view, event } => {
                write!(f, "event `{event}` matches no rule of view `{view}`")
            }
            PolicyViolation::FrozenView { view } => {
                write!(f, "view `{view}` is frozen by project policy")
            }
        }
    }
}

impl std::error::Error for PolicyViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_non_obstructive() {
        let p = Policy::default();
        assert_eq!(p.unmatched_events, Strictness::Lenient);
        assert_eq!(p.unknown_views, Strictness::Lenient);
        assert!(p.cycle_guard);
        assert!(p.frozen_views.is_empty());
        assert_eq!(p, Policy::non_obstructive());
    }

    #[test]
    fn signoff_rejects() {
        let p = Policy::signoff();
        assert_eq!(p.unmatched_events, Strictness::Reject);
        assert_eq!(p.unknown_views, Strictness::Reject);
    }

    #[test]
    fn freeze_view_builder() {
        let p = Policy::default()
            .freeze_view("layout")
            .freeze_view("netlist");
        assert!(p.is_frozen("layout"));
        assert!(p.is_frozen("netlist"));
        assert!(!p.is_frozen("schematic"));
    }

    #[test]
    fn violation_messages() {
        let v = PolicyViolation::FrozenView {
            view: "layout".into(),
        };
        assert!(v.to_string().contains("frozen"));
        let v = PolicyViolation::UnknownView {
            view: "ghost".into(),
            event: "ckin".into(),
        };
        assert!(v.to_string().contains("undeclared"));
    }
}

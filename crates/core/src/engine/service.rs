//! The project service: a [`ProjectServer`] behind the typed command
//! protocol, plus the session-based command loop that serializes many
//! concurrent clients onto the single engine and group-commits their
//! journal ops at batch boundaries.
//!
//! Three layers, innermost first:
//!
//! * [`ProjectService`] — a single-threaded interpreter: one
//!   [`Request`] in, one [`Response`] out. Owns the (optional, until
//!   `Init`) server and the named snapshot [`Configuration`]s, so every
//!   client surface shares the same semantics.
//! * [`spawn_project_loop`] — moves a service onto a dedicated thread
//!   behind an mpsc command queue. [`ProjectHandle::session`] hands out
//!   [`SessionId`]-tagged [`ClientSession`]s; their requests are drained
//!   in arrival order, **executed as a batch, journaled with one
//!   append+fsync, and only then replied to** — the group-commit point
//!   the ROADMAP asked for. A reply in hand means the effect is durable
//!   (when journaling is enabled), yet the fsync cost is amortized over
//!   up to `max_batch` requests.
//! * [`serve_listener`] — a minimal line-framed TCP front door: one
//!   request line in, one response line out, in the [`Request`] /
//!   [`Response`] text codec (raw §3.1 `postEvent` lines are accepted
//!   too), so external wrapper processes post events over the network
//!   exactly as the paper describes.
//!
//! # Crash semantics of the group-commit window
//!
//! While a batch executes, its journal ops buffer in memory; the on-disk
//! journal still ends at the previous batch boundary. A crash inside the
//! window therefore loses the whole un-acked batch and nothing else:
//! recovery replays a valid prefix that ends exactly at a batch boundary.
//! Clients that have not received a reply must treat their request as
//! not-happened — which is precisely what the reply-after-fsync ordering
//! guarantees.
//!
//! Scope: the guarantee covers **state mutations** (objects, properties,
//! links, payloads) **and accepted work**. A [`Request::Post`] ack means
//! the event was journaled as accepted (an `EventQueued` record hits the
//! disk before the reply goes out); recovery re-enqueues every accepted
//! event with no matching `EventDone`, and re-dispatches every journaled
//! tool invocation with no terminal record. Replay is at-least-once: an
//! event whose effects committed in the same batch as its `EventDone`
//! marker is never re-run, while a crash between batch boundaries
//! re-runs the event — safe, because posts are idempotent
//! last-writer-wins property updates in the paper's flows.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use damocles_meta::qlang::Query;
use damocles_meta::{
    dump, persist, Configuration, ConfigurationBuilder, EventMessage, SnapshotRule, Value,
};

use crate::engine::api::{
    ApiError, AuditCounters, NodeRole, Request, Response, ServerStat, SessionId, SnapshotInfo,
    SummaryRow, TraceMode, WorkLeftItem,
};
use crate::engine::error::EngineError;
use crate::engine::exec::{NullExecutor, ScriptExecutor};
use crate::engine::invoke::RetryPolicy;
use crate::engine::server::ProjectServer;
use crate::engine::tail::{TailCursor, TailEnded, TailHub};
use crate::engine::trace::TraceRecord;
use crate::lang::parser;

/// A [`ProjectServer`] (plus client-visible snapshot configurations)
/// driven entirely through [`Request`] / [`Response`] — the one
/// interpreter every front-end shares.
#[derive(Debug)]
pub struct ProjectService<E: ScriptExecutor = NullExecutor> {
    server: Option<ProjectServer<E>>,
    snapshots: BTreeMap<String, Configuration>,
    /// Group-commit mode, inherited by servers created via `Init`.
    group_commit: bool,
    /// Wave worker count, inherited by servers created via `Init` (see
    /// [`ProjectServer::set_wave_workers`]).
    wave_workers: usize,
    /// Retry policies set so far, in application order (`None` = the
    /// default policy), re-applied to servers created via `Init` — like
    /// wave workers, a policy outlives the server it was set on.
    retry_policies: Vec<(Option<String>, RetryPolicy)>,
    /// The replication tail hub, shared across `Init` server swaps so a
    /// tailer's subscription survives by address (it observes a
    /// disable/enable cycle instead of dangling).
    tail: Arc<TailHub>,
}

impl Default for ProjectService<NullExecutor> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: ScriptExecutor + Default> ProjectService<E> {
    /// A service with no blueprint loaded yet (`Init` must come first).
    pub fn new() -> Self {
        ProjectService {
            server: None,
            snapshots: BTreeMap::new(),
            group_commit: false,
            wave_workers: crate::engine::server::default_wave_workers(),
            retry_policies: Vec::new(),
            tail: Arc::new(TailHub::new()),
        }
    }

    /// A service wrapping an existing server. The server's tail hub is
    /// adopted by the service, so subscriptions opened before wrapping
    /// stay live.
    pub fn with_server(server: ProjectServer<E>) -> Self {
        let tail = server.tail_hub();
        let wave_workers = server.wave_workers();
        let (default_policy, overrides) = server.retry_policies();
        let mut retry_policies = vec![(None, default_policy)];
        retry_policies.extend(overrides.into_iter().map(|(s, p)| (Some(s), p)));
        ProjectService {
            server: Some(server),
            snapshots: BTreeMap::new(),
            group_commit: false,
            wave_workers,
            retry_policies,
            tail,
        }
    }

    /// Sets the wave worker count on the current server and on any server
    /// a later `Init` creates (see [`ProjectServer::set_wave_workers`]).
    pub fn set_wave_workers(&mut self, workers: usize) {
        self.wave_workers = workers.max(1);
        if let Some(server) = self.server.as_mut() {
            server.set_wave_workers(workers);
        }
    }

    /// Sets a retry policy on the current server and on any server a
    /// later `Init` creates; `script: None` sets the default policy.
    pub fn set_retry_policy(&mut self, script: Option<&str>, policy: RetryPolicy) {
        self.retry_policies
            .push((script.map(str::to_string), policy));
        if let Some(server) = self.server.as_mut() {
            server.set_retry_policy(script, policy);
        }
    }

    /// How many detached tool invocations are in flight right now (zero
    /// without a server). The command loop polls this to decide whether
    /// to pump between client requests.
    pub fn invocations_in_flight(&self) -> usize {
        self.server
            .as_ref()
            .map_or(0, ProjectServer::invocations_in_flight)
    }

    /// The replication tail hub clients subscribe to (see
    /// [`crate::engine::tail`]). Stable across `Init` server swaps.
    pub fn tail_hub(&self) -> Arc<TailHub> {
        Arc::clone(&self.tail)
    }

    /// The server, if a blueprint has been loaded.
    pub fn server(&self) -> Option<&ProjectServer<E>> {
        self.server.as_ref()
    }

    /// Mutable server access (tests; prefer requests).
    pub fn server_mut(&mut self) -> Option<&mut ProjectServer<E>> {
        self.server.as_mut()
    }

    /// Enters or leaves group-commit mode (see
    /// [`ProjectServer::set_group_commit`]); the command loop turns this
    /// on and calls [`ProjectService::flush`] once per batch. Leaving the
    /// mode flushes.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] from the flush when leaving the mode.
    pub fn set_group_commit(&mut self, on: bool) -> Result<(), EngineError> {
        self.group_commit = on;
        match self.server.as_mut() {
            Some(s) => s.set_group_commit(on),
            None => Ok(()),
        }
    }

    /// Whether a server exists and has durability enabled.
    pub fn journaling(&self) -> bool {
        self.server.as_ref().is_some_and(|s| s.journal_enabled())
    }

    /// Takes (and clears) the server's journal-poison marker: `true` when
    /// a journal failure disabled durability since the last call (see
    /// [`ProjectServer::take_journal_poisoned`]). The command loop
    /// consumes this per group-commit window.
    pub fn take_journal_poisoned(&mut self) -> bool {
        self.server
            .as_mut()
            .is_some_and(ProjectServer::take_journal_poisoned)
    }

    /// Appends and fsyncs every journal op buffered since the last flush —
    /// the group-commit point. No-op without journaling.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] on append/sync failures (durability is
    /// poisoned, exactly as for per-op syncs).
    pub fn flush(&mut self) -> Result<(), EngineError> {
        match self.server.as_mut() {
            Some(s) => s.flush_journal(),
            None => Ok(()),
        }
    }

    /// Executes one request. Never panics and never returns `Err` — every
    /// failure is a structured [`Response::Error`].
    ///
    /// Barrier requests ([`Request::is_barrier`]) flush the group-commit
    /// window first: they swap or re-base durable state and must see a
    /// journal that matches the database.
    pub fn call(&mut self, request: Request) -> Response {
        if request.is_barrier() {
            if let Err(e) = self.flush() {
                return Response::Error(e.into());
            }
        }
        match self.dispatch(request) {
            Ok(resp) => resp,
            Err(e) => Response::Error(e),
        }
    }

    fn need(&mut self) -> Result<&mut ProjectServer<E>, ApiError> {
        self.server.as_mut().ok_or(ApiError::NoProject)
    }

    // By value so a large `Checkin` payload moves straight into the
    // workspace instead of being copied per request on the command
    // loop's hot path.
    fn dispatch(&mut self, request: Request) -> Result<Response, ApiError> {
        // The fencing choke point: a deposed server refuses every
        // mutation as stale-term so it can never dual-commit against the
        // reign that replaced it. Reads still answer (the node is a
        // perfectly good stale replica), and `Promote`/`Fence` pass
        // through — promotion under a higher term is how a fence lifts,
        // and a re-fence must report its own term comparison.
        if request.is_mutation()
            && !matches!(request, Request::Promote { .. } | Request::Fence { .. })
        {
            if let Some(server) = self.server.as_ref() {
                if let Some(fence) = server.fenced_by() {
                    return Err(ApiError::StaleTerm {
                        term: server.current_term(),
                        current: fence,
                    });
                }
            }
        }
        match request {
            Request::Init { source } => {
                let bp = parser::parse(&source).map_err(EngineError::Parse)?;
                let mut server = ProjectServer::with_executor(bp, E::default())?;
                let _ = server.set_group_commit(self.group_commit);
                server.set_wave_workers(self.wave_workers);
                for (script, policy) in &self.retry_policies {
                    server.set_retry_policy(script.as_deref(), *policy);
                }
                // The fresh server starts un-journaled: live tail
                // subscriptions observe the disable (and a later
                // re-enable bootstraps them against the new project).
                self.tail.publish_disable();
                let _ = server.set_tail_hub(Arc::clone(&self.tail));
                let name = server.blueprint().name.clone();
                self.server = Some(server);
                Ok(Response::Blueprint { name })
            }
            Request::Reinit { source } => {
                let server = self.need()?;
                server.reinit_from_source(&source)?;
                Ok(Response::Blueprint {
                    name: server.blueprint().name.clone(),
                })
            }
            Request::Checkin {
                block,
                view,
                user,
                payload,
            } => {
                let oid = self.need()?.checkin(&block, &view, &user, payload)?;
                Ok(Response::Created { oid })
            }
            Request::Checkout { block, view, user } => {
                self.need()?.checkout(&block, &view, &user)?;
                Ok(Response::Ok)
            }
            Request::CreateObject { oid } => {
                self.need()?.create_object(oid.clone())?;
                Ok(Response::Created { oid })
            }
            Request::Connect { from, to } => {
                self.need()?.connect_oids(&from, &to)?;
                Ok(Response::Ok)
            }
            Request::Post { message, user } => {
                self.need()?.post(&message, &user)?;
                Ok(Response::Ok)
            }
            Request::ProcessAll => {
                // The non-blocking drain: every queued event executes,
                // already-finished detached invocations are absorbed, but
                // the service never parks waiting on the worker pool —
                // that would wedge the command loop behind a slow tool.
                // Still-running invocations post back through later
                // pumps (the command loop issues them while idle).
                let report = self.need()?.process_round()?;
                Ok(report.into())
            }
            Request::RefreshLets => {
                let written = self.need()?.refresh_lets()?;
                Ok(Response::Refreshed { written })
            }
            Request::Query { terms } => {
                let query: Query = terms.parse().map_err(EngineError::Meta)?;
                let server = self.need()?;
                let mut oids = Vec::new();
                for id in query.run(server.db()) {
                    oids.push(server.db().oid(id).map_err(EngineError::Meta)?.clone());
                }
                Ok(Response::Hits { oids })
            }
            Request::Show { oid } => {
                let server = self.need()?;
                let id = server.resolve(&oid)?;
                let props: Vec<(String, Value)> = server
                    .db()
                    .props(id)
                    .map_err(EngineError::Meta)?
                    .iter()
                    .map(|(name, value)| (name.to_string(), value.clone()))
                    .collect();
                Ok(Response::Props { oid, props })
            }
            Request::WorkLeft { oid, prop } => {
                let server = self.need()?;
                let id = server.resolve(&oid)?;
                let items = server
                    .query()
                    .work_remaining(id, &prop)
                    .map_err(EngineError::Meta)?
                    .into_iter()
                    .map(|item| WorkLeftItem {
                        oid: item.oid,
                        prop: item.blocking.0,
                        current: item.blocking.1,
                    })
                    .collect();
                Ok(Response::Work { target: oid, items })
            }
            Request::Summary { prop } => {
                let rows = self
                    .need()?
                    .query()
                    .summary(&prop)
                    .into_iter()
                    .map(|s| SummaryRow {
                        view: s.view,
                        total: s.total as u64,
                        satisfied: s.satisfied as u64,
                        untracked: s.untracked as u64,
                    })
                    .collect();
                Ok(Response::ViewSummary { rows })
            }
            Request::Snapshot { name, root } => {
                let server = self.need()?;
                let id = server.resolve(&root)?;
                let snap = ConfigurationBuilder::new(server.db())
                    .traverse(id, SnapshotRule::Closure)
                    .build(name.clone());
                let oids = snap.oid_count() as u64;
                self.snapshots.insert(name.clone(), snap);
                Ok(Response::Snapped { name, oids })
            }
            Request::ListSnapshots => {
                let server = self.server.as_ref().ok_or(ApiError::NoProject)?;
                let entries = self
                    .snapshots
                    .iter()
                    .map(|(name, snap)| SnapshotInfo {
                        name: name.clone(),
                        oids: snap.oid_count() as u64,
                        links: snap.link_count() as u64,
                        dangling: snap.dangling(server.db()) as u64,
                    })
                    .collect();
                Ok(Response::SnapshotList { entries })
            }
            Request::Freeze { view } => {
                self.need()?.policy_mut().frozen_views.insert(view);
                Ok(Response::Ok)
            }
            Request::Thaw { view } => {
                self.need()?.policy_mut().frozen_views.remove(&view);
                Ok(Response::Ok)
            }
            Request::EnableJournal { dir, every } => {
                let epoch = self.need()?.enable_journal(&dir, every)?;
                Ok(Response::Epoch { epoch })
            }
            Request::Promote { dir, every, term } => {
                // On a service-level node (a leader, or a test harness)
                // there is no replica cursor to floor the epoch with; the
                // on-disk epoch sequence already advances monotonically.
                // A follower loop calls `promote_journal` itself with the
                // cursor-derived floor before delegating here.
                let epoch = self.need()?.promote_journal(&dir, every, 0, term)?;
                Ok(Response::Promoted { epoch, term })
            }
            Request::Fence { term } => {
                self.need()?.fence_term(term)?;
                Ok(Response::Ok)
            }
            Request::Checkpoint => {
                let epoch = self.need()?.checkpoint()?;
                Ok(Response::Epoch { epoch })
            }
            Request::Recover { dir, every } => {
                let report = self.need()?.recover_journal(&dir, every)?;
                Ok(Response::Recovered {
                    epoch: report.epoch,
                    snapshot_oids: report.snapshot_oids as u64,
                    replayed_ops: report.replayed_ops as u64,
                    torn_tail: report.torn_tail,
                    stale_journal: report.stale_journal,
                })
            }
            Request::SaveProject { path } => {
                let server = self.server.as_ref().ok_or(ApiError::NoProject)?;
                let image = persist::save_project(server.db(), server.workspace());
                std::fs::write(&path, image).map_err(|e| ApiError::Io {
                    reason: format!("cannot write {path}: {e}"),
                })?;
                Ok(Response::Ok)
            }
            Request::LoadProject { path } => {
                let image = std::fs::read_to_string(&path).map_err(|e| ApiError::Io {
                    reason: format!("cannot read {path}: {e}"),
                })?;
                let (db, workspace) = persist::load_project(&image).map_err(EngineError::Meta)?;
                let oids = db.oid_count() as u64;
                let server = self.need()?;
                server.adopt_project(db, workspace);
                if server.journal_enabled() {
                    // The on-disk journal described the replaced project;
                    // fold immediately so the crash window closes here.
                    server.checkpoint()?;
                }
                Ok(Response::Loaded { oids })
            }
            Request::Dump => {
                let server = self.server.as_ref().ok_or(ApiError::NoProject)?;
                Ok(Response::Text {
                    text: dump::dump(server.db()),
                })
            }
            Request::Dot => {
                let server = self.server.as_ref().ok_or(ApiError::NoProject)?;
                Ok(Response::Text {
                    text: dump::to_dot(server.db(), "uptodate"),
                })
            }
            Request::Audit => {
                let server = self.server.as_ref().ok_or(ApiError::NoProject)?;
                let s = server.audit().summary();
                Ok(Response::Audit {
                    counters: AuditCounters {
                        deliveries: s.deliveries,
                        assignments: s.assignments,
                        reevaluations: s.reevaluations,
                        scripts: s.scripts,
                        posts: s.posts,
                        propagations: s.propagations,
                        cycle_skips: s.cycle_skips,
                        depth_truncations: s.depth_truncations,
                        templates: s.templates,
                        invoke_retries: s.invoke_retries,
                        invoke_timeouts: s.invoke_timeouts,
                        invoke_exhaustions: s.invoke_exhaustions,
                    },
                })
            }
            Request::Stat => {
                let server = self.server.as_ref().ok_or(ApiError::NoProject)?;
                let inv = server.invoke_stats();
                Ok(Response::Stat {
                    stat: ServerStat {
                        oids: server.db().oid_count() as u64,
                        links: server.db().link_count() as u64,
                        pending_events: server.pending_events() as u64,
                        journal_epoch: server.journal_epoch(),
                        journal_records: server.journal_records(),
                        wave_workers: server.wave_workers() as u64,
                        pending_invocations: inv.pending,
                        running_invocations: inv.running,
                        retrying_invocations: inv.retrying,
                        failed_invocations: inv.failed,
                        cursor_epoch: server.journal_epoch().unwrap_or(0),
                        cursor_seq: server.journal_records().unwrap_or(0),
                        // Fleet gauges: a single-project service is not a
                        // fleet member; the fleet worker patches these four
                        // onto every `stat` reply it forwards.
                        active_projects: 0,
                        resident_projects: 0,
                        activations: 0,
                        evictions: 0,
                        term: server.current_term(),
                        // A service-level node serves mutations; the
                        // follower loop patches `Follower` onto replies
                        // it serves from a replica.
                        role: NodeRole::Leader,
                    },
                })
            }
            Request::SetWaveWorkers { workers } => {
                self.set_wave_workers(workers.max(1) as usize);
                Ok(Response::Ok)
            }
            Request::SetRetryPolicy {
                script,
                max_retries,
                base_delay_ms,
                multiplier,
                timeout_ms,
            } => {
                let policy = RetryPolicy {
                    max_retries: max_retries.try_into().unwrap_or(u32::MAX),
                    base_delay: std::time::Duration::from_millis(base_delay_ms),
                    multiplier: multiplier.clamp(1, u64::from(u32::MAX)) as u32,
                    timeout: std::time::Duration::from_millis(timeout_ms),
                };
                self.set_retry_policy(script.as_deref(), policy);
                Ok(Response::Ok)
            }
            Request::PumpInvocations => {
                let report = self.need()?.process_round()?;
                Ok(report.into())
            }
            Request::Replay { epoch, seq } => {
                // Served from a scratch database read off the on-disk
                // journal files: the live image, queue and engine are
                // untouched (replay is a barrier only because it must see
                // a flushed journal).
                let (oids, image) = self.need()?.replay_at(epoch, seq)?;
                Ok(Response::Replayed {
                    epoch,
                    seq,
                    oids,
                    image,
                })
            }
            Request::Trace { mode } => {
                let server = self.need()?;
                match mode {
                    TraceMode::On => {
                        server.set_trace_retention(true);
                        Ok(Response::Ok)
                    }
                    TraceMode::Off => {
                        server.set_trace_retention(false);
                        Ok(Response::Ok)
                    }
                    TraceMode::Get => Ok(Response::Trace {
                        records: server
                            .take_trace()
                            .iter()
                            .map(TraceRecord::encode)
                            .collect(),
                    }),
                }
            }
            Request::TailFrom { .. } => {
                // The handshake half: report the committed stream
                // position. The record stream itself is transport-level —
                // the TCP front door switches the connection into tail
                // mode on a successful handshake (`serve_listener`).
                let server = self.server.as_ref().ok_or(ApiError::NoProject)?;
                match (server.journal_epoch(), server.journal_records()) {
                    (Some(epoch), Some(seq)) => Ok(Response::Tailing { epoch, seq }),
                    _ => Err(ApiError::Journal {
                        reason: "tail streaming requires journaling (enable a journal first)"
                            .to_string(),
                    }),
                }
            }
            // Fleet routing is the front door's job ([`fleet`]): by the
            // time an envelope reaches a project service it is already
            // pinned to one project, so these only arrive on
            // single-project nodes — where there is no fleet to attach to.
            Request::Attach { .. } | Request::ListProjects => Err(ApiError::NoFleet),
        }
    }
}

// ---------------------------------------------------------------------
// The command loop
// ---------------------------------------------------------------------

/// One queued command: the session it came from, the request, and where
/// the reply goes.
#[derive(Debug)]
pub struct Envelope {
    /// The submitting session.
    pub session: SessionId,
    /// The command.
    pub request: Request,
    reply: Sender<Response>,
}

impl Envelope {
    /// Builds an envelope for a hand-rolled command queue (tests,
    /// custom harnesses); [`ClientSession::submit`] is the normal path.
    pub fn new(session: SessionId, request: Request, reply: Sender<Response>) -> Self {
        Envelope {
            session,
            request,
            reply,
        }
    }

    /// Consumes the envelope, sending its reply — for loop
    /// implementations outside this module (the follower's read-only
    /// loop). A gone client is not an error.
    pub fn respond(self, response: Response) {
        let _ = self.reply.send(response);
    }

    /// Consumes the envelope, computing the reply from the **moved**
    /// request — so outside loops never clone a payload-heavy request
    /// just to answer it.
    pub fn respond_with(self, f: impl FnOnce(Request) -> Response) {
        let Envelope { request, reply, .. } = self;
        let _ = reply.send(f(request));
    }

    /// Splits the envelope into its parts — for routers (the fleet) that
    /// re-wrap the request before forwarding it to the serving loop.
    pub fn into_parts(self) -> (SessionId, Request, Sender<Response>) {
        (self.session, self.request, self.reply)
    }
}

/// A cloneable handle to a running command loop; every client surface
/// (shell adapter, TCP connection, test) opens sessions through it.
#[derive(Debug, Clone)]
pub struct ProjectHandle {
    tx: Sender<Envelope>,
    next_session: Arc<AtomicU64>,
    tail: Arc<TailHub>,
}

impl ProjectHandle {
    /// Opens a new tagged session.
    pub fn session(&self) -> ClientSession {
        ClientSession {
            id: SessionId(self.next_session.fetch_add(1, Ordering::Relaxed)),
            tx: self.tx.clone(),
        }
    }

    /// The loop's replication tail hub — what a `tailfrom` connection
    /// streams from.
    pub fn tail_hub(&self) -> Arc<TailHub> {
        Arc::clone(&self.tail)
    }
}

/// One client session at the command loop. Requests from all sessions are
/// serialized in arrival order; each session's own requests stay ordered.
#[derive(Debug, Clone)]
pub struct ClientSession {
    id: SessionId,
    tx: Sender<Envelope>,
}

impl ClientSession {
    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Submits a request without waiting; the returned receiver yields
    /// the response once the loop has executed **and journaled** it.
    /// Pipelining submissions is how one client fills a group-commit
    /// batch.
    pub fn submit(&self, request: Request) -> Receiver<Response> {
        let (reply, rx) = unbounded();
        let gone = self
            .tx
            .send(Envelope {
                session: self.id,
                request,
                reply: reply.clone(),
            })
            .is_err();
        if gone {
            let _ = reply.send(Response::Error(loop_gone()));
        }
        rx
    }

    /// Submits a request and waits for its response.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request)
            .recv()
            .unwrap_or_else(|| Response::Error(loop_gone()))
    }
}

pub(crate) fn loop_gone() -> ApiError {
    ApiError::Io {
        reason: "project command loop has shut down".to_string(),
    }
}

/// Ceiling of the *adaptive* group-commit window: under a sustained
/// burst, one journal append+fsync never covers more than this many
/// requests, bounding both reply latency and the batch a crash can
/// lose. An explicit window passed to the `*_with_window` measurement
/// seam is honored as given and not subject to this ceiling.
pub const MAX_GROUP_COMMIT_WINDOW: usize = 1024;

/// How often an otherwise-idle command loop wakes to absorb finished
/// detached tool invocations. Small enough that results flow back well
/// inside interactive latency; large enough not to busy-spin.
const INVOKE_PUMP: std::time::Duration = std::time::Duration::from_millis(25);

/// Spawns a service onto its own command-loop thread and returns the
/// handle clients connect through. The loop exits (flushing any pending
/// batch) when every handle and session is dropped.
///
/// The group-commit window is **adaptive**: each batch takes exactly
/// what is queued at formation time (bounded by
/// [`MAX_GROUP_COMMIT_WINDOW`]), so an idle connection pays one fsync of
/// latency per request while a burst amortizes one fsync across the
/// whole backlog — no tuning knob to set wrong. Harnesses that must
/// measure a *fixed* window use [`spawn_project_loop_with_window`].
pub fn spawn_project_loop<E>(
    service: ProjectService<E>,
) -> (ProjectHandle, std::thread::JoinHandle<()>)
where
    E: ScriptExecutor + Default + Send + 'static,
{
    spawn_project_loop_with_window(service, None)
}

/// [`spawn_project_loop`] with a fixed group-commit window cap: up to
/// `max_batch` queued requests execute back-to-back before one journal
/// append+fsync covers them all (`Some(1)` restores per-request
/// durability cost). The measurement seam behind the adaptive default.
pub fn spawn_project_loop_with_window<E>(
    service: ProjectService<E>,
    max_batch: Option<usize>,
) -> (ProjectHandle, std::thread::JoinHandle<()>)
where
    E: ScriptExecutor + Default + Send + 'static,
{
    let (tx, rx) = unbounded();
    let tail = service.tail_hub();
    let join = std::thread::spawn(move || run_command_loop_with_window(service, &rx, max_batch));
    (
        ProjectHandle {
            tx,
            next_session: Arc::new(AtomicU64::new(1)),
            tail,
        },
        join,
    )
}

/// The command loop body with the adaptive group-commit window (see
/// [`spawn_project_loop`]). Exposed for callers that want to run the
/// loop on a thread they own (the TCP binary, benches).
pub fn run_command_loop<E>(service: ProjectService<E>, rx: &Receiver<Envelope>)
where
    E: ScriptExecutor + Default,
{
    run_command_loop_with_window(service, rx, None);
}

/// [`run_command_loop`] with an optional fixed window cap; `None` derives
/// each window from the queue depth at batch formation (small when idle
/// for latency, up to [`MAX_GROUP_COMMIT_WINDOW`] under burst).
///
/// Set `DAMOCLES_LOOP_STATS=1` to print batch-formation statistics on
/// exit (used by the throughput bench to verify batches actually fill).
pub fn run_command_loop_with_window<E>(
    mut service: ProjectService<E>,
    rx: &Receiver<Envelope>,
    max_batch: Option<usize>,
) where
    E: ScriptExecutor + Default,
{
    let _ = service.set_group_commit(true);
    let mut n_batches = 0u64;
    let mut n_reqs = 0u64;
    // Executed-but-unacked requests of the current group-commit window.
    let mut pending: Vec<(Sender<Response>, bool, Response)> = Vec::new();
    // A stale poison marker from the service's pre-loop life was already
    // reported to whoever called it directly; don't charge it to the
    // first window.
    let _ = service.take_journal_poisoned();
    // Flushes the window and sends the pending replies. A flush failure
    // — or a poisoning the executed requests themselves triggered
    // (explicit marker, NOT inferred from journaling-state deltas, which
    // a legitimate `Init` swap would trip) — turns every mutating reply
    // into the journal error: none of those mutations reached stable
    // storage, and acking them would lie. Read-only requests still
    // answer.
    let settle = |service: &mut ProjectService<E>,
                  pending: &mut Vec<(Sender<Response>, bool, Response)>| {
        let flushed = service.flush();
        let poisoned = service.take_journal_poisoned();
        let error = match flushed {
            Err(e) => Some(ApiError::from(e)),
            Ok(()) if poisoned => Some(ApiError::Journal {
                reason: "durability was disabled mid-batch; the batch is not on stable storage"
                    .to_string(),
            }),
            Ok(()) => None,
        };
        for (reply, mutating, resp) in pending.drain(..) {
            let resp = match &error {
                // Only successful mutations are downgraded: a request
                // that already failed (frozen view, unknown OID) wrote
                // nothing the flush could lose, and its own diagnostic
                // is the useful one.
                Some(err) if mutating && !resp.is_error() => Response::Error(err.clone()),
                _ => resp,
            };
            let _ = reply.send(resp);
        }
    };
    loop {
        // Block for the next request — but while detached invocations
        // are in flight, wake periodically to absorb finished results so
        // they post back (and journal) between client commands instead
        // of waiting for the next request to arrive.
        let first = if service.invocations_in_flight() > 0 {
            match rx.recv_timeout(INVOKE_PUMP) {
                Ok(env) => env,
                Err(RecvTimeoutError::Timeout) => {
                    let _ = service.call(Request::PumpInvocations);
                    settle(&mut service, &mut pending);
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match rx.recv() {
                Some(env) => env,
                None => break,
            }
        };
        // Adaptive window: what is queued right now is the batch (plus
        // the request just taken), so latency under light load is one
        // request and throughput under burst is one fsync per backlog —
        // bounded by the ceiling. An explicit fixed window (the
        // measurement seam) is honored as requested, ceiling included:
        // harnesses exist to measure exactly the window they asked for.
        let window = match max_batch {
            Some(fixed) => fixed.max(1),
            None => rx.len().saturating_add(1).clamp(1, MAX_GROUP_COMMIT_WINDOW),
        };
        let mut batch = Vec::with_capacity(window);
        batch.push(first);
        while batch.len() < window {
            match rx.try_recv() {
                Ok(env) => batch.push(env),
                Err(_) => break,
            }
        }
        n_batches += 1;
        n_reqs += batch.len() as u64;
        for env in batch {
            let Envelope { request, reply, .. } = env;
            // A barrier re-bases durable state (checkpoint, recover,
            // load, …): settle the window before it runs so every reply
            // reflects exactly what its own fsync covered — a mid-batch
            // poisoning can then never be masked by a later trivial
            // flush.
            let barrier = request.is_barrier();
            if barrier && !pending.is_empty() {
                settle(&mut service, &mut pending);
            }
            let mutating = request.is_mutation();
            let resp = service.call(request);
            pending.push((reply, mutating, resp));
            // And settle straight after it: a barrier's effect is durable
            // by its own doing (snapshot written, file saved, server
            // swapped), so its reply must never share a flush window
            // with — and be downgraded by — later requests' failures.
            if barrier {
                settle(&mut service, &mut pending);
            }
        }
        settle(&mut service, &mut pending);
    }
    // Senders are gone; flush whatever the last batch left behind, and
    // end every tail subscription.
    let _ = service.set_group_commit(false);
    service.tail_hub().close();
    if std::env::var_os("DAMOCLES_LOOP_STATS").is_some() {
        eprintln!(
            "loop stats: {n_reqs} requests in {n_batches} batches (avg {:.1})",
            n_reqs as f64 / n_batches.max(1) as f64
        );
    }
}

// ---------------------------------------------------------------------
// The line-framed TCP front door
// ---------------------------------------------------------------------

/// Anything a network connection can submit decoded requests to: the
/// leader's [`ClientSession`] and the follower's
/// [`FollowerSession`](crate::engine::follower::FollowerSession) both
/// implement it, so [`serve_with`] front-doors either node kind.
pub trait RequestSink: Send + 'static {
    /// The session tag requests are submitted under.
    fn id(&self) -> SessionId;
    /// Submits a request; the receiver yields its response.
    fn submit(&self, request: Request) -> Receiver<Response>;
}

impl RequestSink for ClientSession {
    fn id(&self) -> SessionId {
        ClientSession::id(self)
    }

    fn submit(&self, request: Request) -> Receiver<Response> {
        ClientSession::submit(self, request)
    }
}

/// Serves the command protocol over a TCP listener, blocking forever:
/// each connection is one session; each text line is one [`Request`]
/// (raw §3.1 `postEvent …` lines are accepted as [`Request::Post`] from
/// user `net-<session>`), answered by exactly one [`Response`] line. A
/// successful `tailfrom` handshake switches the connection into tail
/// mode: frames from the loop's [`TailHub`] stream until the client
/// disconnects (see `PROTOCOL.md` §5).
///
/// Spawn it on its own thread; connections get a thread each (the engine
/// itself stays single-threaded behind the command queue, which is the
/// serialization point).
pub fn serve_listener(listener: TcpListener, handle: &ProjectHandle) -> std::io::Result<()> {
    let tail = handle.tail_hub();
    let handle = handle.clone();
    serve_with(listener, move || handle.session(), Some(tail))
}

/// The transport-generic accept loop behind [`serve_listener`]: `open`
/// mints one [`RequestSink`] per connection, and `tail` (when given)
/// enables tail-mode streaming for `tailfrom` handshakes. `accept`
/// failures — aborted handshakes, fd exhaustion under connection
/// bursts — are transient for a server that must outlive its clients:
/// they are reported to stderr and retried after a short back-off
/// instead of killing every live session.
pub fn serve_with<S: RequestSink>(
    listener: TcpListener,
    open: impl Fn() -> S,
    tail: Option<Arc<TailHub>>,
) -> std::io::Result<()> {
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let session = open();
                let tail = tail.clone();
                std::thread::spawn(move || serve_connection(stream, &session, tail));
            }
            Err(e) => {
                eprintln!("damocles_server: accept failed (retrying): {e}");
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}

/// One connection's read-decode-execute-reply loop, switching into tail
/// streaming after a successful `tailfrom` handshake.
fn serve_connection<S: RequestSink>(stream: TcpStream, session: &S, tail: Option<Arc<TailHub>>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // A second write handle for the tail-streaming phase, taken up front
    // while cloning is cheap and certain.
    let tail_half = stream.try_clone().ok();
    // Reader and writer run concurrently so a connection that pipelines
    // request lines fills group-commit batches instead of paying one
    // fsync per line; responses still come back strictly in line order
    // (the in-order queue of reply receivers is the sequencing).
    let (order_tx, order_rx) = unbounded::<Receiver<Response>>();
    let mut writer = stream;
    let write_thread = std::thread::spawn(move || {
        while let Some(reply) = order_rx.recv() {
            let response = reply.recv().unwrap_or_else(|| Response::Error(loop_gone()));
            if writer
                .write_all(format!("{}\n", response.encode()).as_bytes())
                .is_err()
            {
                break;
            }
        }
    });
    let mut tail_cursor: Option<TailCursor> = None;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else {
            break;
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let request = decode_net_line(trimmed, session.id());
        // The tail handshake runs through the loop like any request (so
        // its reply is ordered after earlier pipelined lines), but on
        // success this connection stops being a request/response channel.
        if let (Ok(Request::TailFrom { epoch, seq }), Some(_)) = (&request, &tail) {
            let (epoch, seq) = (*epoch, *seq);
            let response = session
                .submit(request.expect("matched Ok above"))
                .recv()
                .unwrap_or_else(|| Response::Error(loop_gone()));
            let accepted = matches!(response, Response::Tailing { .. });
            let (tx, rx) = unbounded();
            let _ = tx.send(response);
            if order_tx.send(rx).is_err() {
                break;
            }
            if accepted {
                tail_cursor = Some(TailCursor { epoch, seq });
                break;
            }
            continue;
        }
        let reply = match request {
            Ok(request) => session.submit(request),
            Err(e) => {
                let (tx, rx) = unbounded();
                let _ = tx.send(Response::Error(e));
                rx
            }
        };
        if order_tx.send(reply).is_err() {
            break;
        }
    }
    drop(order_tx);
    let _ = write_thread.join();
    if let (Some(mut cursor), Some(hub), Some(mut out)) = (tail_cursor, tail, tail_half) {
        stream_tail(&hub, &mut cursor, &mut out);
    }
}

/// Streams tail frames to one subscriber until its connection breaks or
/// the hub ends the stream. Runs on the connection's own thread — the
/// command loop is never blocked by a slow follower.
fn stream_tail(hub: &TailHub, cursor: &mut TailCursor, out: &mut TcpStream) {
    loop {
        match hub.next_frames(cursor, std::time::Duration::from_millis(500)) {
            Ok(frames) => {
                let mut buf = String::new();
                for frame in frames {
                    buf.push_str(&frame.encode());
                    buf.push('\n');
                }
                if out.write_all(buf.as_bytes()).is_err() {
                    return; // subscriber gone
                }
            }
            Err(ended) => {
                let reason = match ended {
                    TailEnded::Disabled => "journaling disabled on the leader; tail stream ends",
                    TailEnded::Closed => "leader shutting down; tail stream ends",
                };
                let line = Response::Error(ApiError::Journal {
                    reason: reason.to_string(),
                })
                .encode();
                let _ = out.write_all(format!("{line}\n").as_bytes());
                return;
            }
        }
    }
}

/// Decodes one network line: the request codec, with the paper's bare
/// `postEvent` wire line accepted as sugar for [`Request::Post`].
fn decode_net_line(line: &str, session: SessionId) -> Result<Request, ApiError> {
    if line.starts_with("postEvent") {
        let message = EventMessage::parse_wire(line)?;
        return Ok(Request::Post {
            message,
            user: format!("net-{}", session.0),
        });
    }
    Request::decode(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use damocles_meta::Oid;

    const SIMPLE: &str = r#"
        blueprint demo
        view default
            property uptodate default true
            when ckin do uptodate = true; post outofdate down done
            when outofdate do uptodate = false done
        endview
        view HDL_model endview
        view schematic
            link_from HDL_model move propagates outofdate type derived
        endview
        endblueprint
    "#;

    fn init_req() -> Request {
        Request::Init {
            source: SIMPLE.to_string(),
        }
    }

    fn checkin(block: &str, view: &str) -> Request {
        Request::Checkin {
            block: block.into(),
            view: view.into(),
            user: "yves".into(),
            payload: b"data".to_vec(),
        }
    }

    #[test]
    fn service_runs_the_quickstart_through_requests() {
        let mut svc: ProjectService = ProjectService::new();
        assert_eq!(
            svc.call(Request::ProcessAll),
            Response::Error(ApiError::NoProject)
        );
        assert!(matches!(
            svc.call(init_req()),
            Response::Blueprint { name } if name == "demo"
        ));
        let hdl = match svc.call(checkin("cpu", "HDL_model")) {
            Response::Created { oid } => oid,
            other => panic!("{other:?}"),
        };
        let sch = match svc.call(checkin("cpu", "schematic")) {
            Response::Created { oid } => oid,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            svc.call(Request::Connect {
                from: hdl.clone(),
                to: sch.clone()
            }),
            Response::Ok
        );
        assert!(matches!(
            svc.call(Request::ProcessAll),
            Response::Processed { events: 2, .. }
        ));
        // A second HDL version invalidates the derived schematic.
        svc.call(checkin("cpu", "HDL_model"));
        svc.call(Request::ProcessAll);
        match svc.call(Request::Show { oid: sch }) {
            Response::Props { props, .. } => {
                let up = props.iter().find(|(n, _)| n == "uptodate").unwrap();
                assert_eq!(up.1, Value::Bool(false));
            }
            other => panic!("{other:?}"),
        }
        match svc.call(Request::Stat) {
            Response::Stat { stat } => {
                assert_eq!(stat.oids, 3);
                assert_eq!(stat.pending_events, 0);
                assert_eq!(stat.journal_epoch, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_structured_not_strings() {
        let mut svc: ProjectService = ProjectService::new();
        svc.call(init_req());
        let resp = svc.call(Request::Show {
            oid: Oid::new("ghost", "v", 1),
        });
        assert_eq!(
            resp,
            Response::Error(ApiError::UnknownOid {
                oid: Oid::new("ghost", "v", 1)
            })
        );
        let resp = svc.call(Request::Init {
            source: "blueprint b view a endview view a endview endblueprint".into(),
        });
        assert!(
            matches!(resp, Response::Error(ApiError::InvalidBlueprint { .. })),
            "{resp:?}"
        );
    }

    #[test]
    fn command_loop_serializes_sessions_and_replies() {
        let mut svc: ProjectService = ProjectService::new();
        assert!(!svc.call(init_req()).is_error());
        let (handle, join) = spawn_project_loop(svc);
        let s1 = handle.session();
        let s2 = handle.session();
        assert_ne!(s1.id(), s2.id());
        // Two sessions race check-ins of different blocks; both succeed
        // and the engine sees them serialized.
        let t1 = {
            let s = s1.clone();
            std::thread::spawn(move || s.call(checkin("alpha", "HDL_model")))
        };
        let t2 = {
            let s = s2.clone();
            std::thread::spawn(move || s.call(checkin("beta", "HDL_model")))
        };
        assert!(matches!(t1.join().unwrap(), Response::Created { .. }));
        assert!(matches!(t2.join().unwrap(), Response::Created { .. }));
        assert!(matches!(
            s1.call(Request::ProcessAll),
            Response::Processed { events: 2, .. }
        ));
        drop((s1, s2, handle));
        join.join().unwrap();
    }

    #[test]
    fn group_commit_batches_journal_syncs() {
        let dir = std::env::temp_dir().join("damocles-svc-group-commit");
        let _ = std::fs::remove_dir_all(&dir);
        let mut svc: ProjectService = ProjectService::new();
        svc.call(init_req());
        assert!(matches!(
            svc.call(Request::EnableJournal {
                dir: dir.display().to_string(),
                every: 1_000_000,
            }),
            Response::Epoch { .. }
        ));
        let (handle, join) = spawn_project_loop(svc);
        let session = handle.session();
        // Pipeline a burst so the loop can batch it.
        let pending: Vec<_> = (0..32)
            .map(|i| session.submit(checkin(&format!("blk{i}"), "HDL_model")))
            .collect();
        for rx in pending {
            assert!(matches!(rx.recv().unwrap(), Response::Created { .. }));
        }
        // Every op of the burst is on disk once the replies are in hand.
        let stat = session.call(Request::Stat);
        let records = match stat {
            Response::Stat { stat } => stat.journal_records.unwrap(),
            other => panic!("{other:?}"),
        };
        assert!(records >= 32, "journaled {records} ops");
        drop((session, handle));
        join.join().unwrap();
        // The journal on disk replays cleanly into the same project.
        let mut svc2: ProjectService = ProjectService::new();
        svc2.call(init_req());
        let resp = svc2.call(Request::Recover {
            dir: dir.display().to_string(),
            every: 1_000_000,
        });
        assert!(matches!(resp, Response::Recovered { .. }), "{resp:?}");
        match svc2.call(Request::Stat) {
            Response::Stat { stat } => assert_eq!(stat.oids, 32),
            other => panic!("{other:?}"),
        }
    }

    /// A successful `Init` through a journaled loop legitimately swaps
    /// in a fresh (un-journaled) server; that state change must NOT be
    /// misread as durability poisoning (the marker is explicit, not a
    /// journaling-state delta).
    #[test]
    fn init_on_a_journaled_loop_is_not_poisoning() {
        let dir = std::env::temp_dir().join("damocles-svc-init-not-poison");
        let _ = std::fs::remove_dir_all(&dir);
        let mut svc: ProjectService = ProjectService::new();
        svc.call(init_req());
        assert!(matches!(
            svc.call(Request::EnableJournal {
                dir: dir.display().to_string(),
                every: 1_000_000,
            }),
            Response::Epoch { .. }
        ));
        let (handle, join) = spawn_project_loop(svc);
        let session = handle.session();
        assert!(matches!(
            session.call(checkin("pre", "HDL_model")),
            Response::Created { .. }
        ));
        // The re-init succeeds and is acked as such.
        match session.call(init_req()) {
            Response::Blueprint { name } => assert_eq!(name, "demo"),
            other => panic!("init misreported: {other:?}"),
        }
        // The fresh server runs un-journaled but healthy.
        assert!(matches!(
            session.call(checkin("post", "HDL_model")),
            Response::Created { .. }
        ));
        drop((session, handle));
        join.join().unwrap();
    }

    /// Durability poisoned mid-batch must not be masked by a trivially-Ok
    /// flush: the poisoning is reported on its own window, and mutations
    /// whose flush actually failed are errored, not acked. A request that
    /// executes in a LATER window (after the poisoning was already
    /// reported) acks normally — the server then runs un-journaled, loud
    /// once, exactly like the per-op path.
    #[test]
    fn poisoned_batch_does_not_ack_unflushed_mutations() {
        let dir = std::env::temp_dir().join("damocles-svc-poisoned-batch");
        let _ = std::fs::remove_dir_all(&dir);
        let mut svc: ProjectService = ProjectService::new();
        svc.call(init_req());
        assert!(matches!(
            svc.call(Request::EnableJournal {
                dir: dir.display().to_string(),
                every: 1_000_000,
            }),
            Response::Epoch { .. }
        ));
        // Doom the next checkpoint: the snapshot tmp file cannot be
        // created once the durability directory is gone (appends to the
        // already-open journal fd still succeed, which is exactly the
        // asymmetry that used to mask the poisoning).
        std::fs::remove_dir_all(&dir).unwrap();

        // Hand-rolled queue so all three land in ONE loop batch:
        // checkin A | checkpoint (doomed barrier) | checkin B.
        let (tx, rx) = unbounded();
        let replies: Vec<Receiver<Response>> = [
            checkin("alpha", "HDL_model"),
            Request::Checkpoint,
            checkin("beta", "HDL_model"),
        ]
        .into_iter()
        .map(|request| {
            let (reply, reply_rx) = unbounded();
            tx.send(Envelope::new(SessionId(1), request, reply))
                .unwrap();
            reply_rx
        })
        .collect();
        drop(tx);
        run_command_loop(svc, &rx);

        // A settled (flushed to the open journal fd) before the barrier.
        assert!(matches!(
            replies[0].recv().unwrap(),
            Response::Created { .. }
        ));
        // The checkpoint itself failed loudly — that reply IS the
        // poisoning report, settled on its own window.
        assert!(replies[1].recv().unwrap().is_error());
        // B ran in the next window, knowingly un-journaled: normal ack.
        assert!(matches!(
            replies[2].recv().unwrap(),
            Response::Created { .. }
        ));
    }

    /// When the window's own flush fails (here: the auto-checkpoint the
    /// flush triggers cannot write its snapshot), every mutation of that
    /// window is errored — none of them may be acked as durable.
    #[test]
    fn failed_window_flush_errors_every_mutation_of_the_window() {
        let dir = std::env::temp_dir().join("damocles-svc-failed-flush");
        let _ = std::fs::remove_dir_all(&dir);
        let mut svc: ProjectService = ProjectService::new();
        svc.call(init_req());
        assert!(matches!(
            svc.call(Request::EnableJournal {
                dir: dir.display().to_string(),
                every: 1, // every flush folds into a checkpoint
            }),
            Response::Epoch { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();

        let (tx, rx) = unbounded();
        let replies: Vec<Receiver<Response>> =
            [checkin("alpha", "HDL_model"), checkin("beta", "HDL_model")]
                .into_iter()
                .map(|request| {
                    let (reply, reply_rx) = unbounded();
                    tx.send(Envelope::new(SessionId(1), request, reply))
                        .unwrap();
                    reply_rx
                })
                .collect();
        drop(tx);
        run_command_loop(svc, &rx);

        for reply in replies {
            match reply.recv().unwrap() {
                Response::Error(ApiError::Journal { .. }) => {}
                other => panic!("unflushed mutation was acked: {other:?}"),
            }
        }
    }
}

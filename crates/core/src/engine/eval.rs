//! Expression evaluation and `$` template rendering.
//!
//! Run-time rules and continuous assignments see a shell-like environment:
//! `$<name>` resolves first against the engine's built-in variables, then
//! against the properties of the current OID, and finally to the empty
//! string (as a shell would). The built-ins are the ones the paper uses:
//!
//! | variable | value |
//! |---|---|
//! | `$oid` / `$OID` | the current OID as `block,view,version` |
//! | `$block`, `$view`, `$version` | the OID components |
//! | `$event` | the event being processed |
//! | `$arg` | the first event argument |
//! | `$args` | all event arguments, space-joined |
//! | `$user` | the posting designer/tool |
//! | `$owner` | the OID's `owner` property, falling back to `$user` |
//! | `$date` | the engine's logical timestamp |

use damocles_meta::{Oid, PropertyMap, Value};

use crate::lang::ast::{Expr, Segment, Template};

/// The variable environment for one rule execution.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Properties of the current OID.
    pub props: &'a PropertyMap,
    /// A sparse write overlay shadowing `props`, when rules run against a
    /// worker's copy-on-write store (parallel wave shards): a property
    /// present here wins over `props`. `None` on the direct path.
    pub overlay: Option<&'a PropertyMap>,
    /// The current OID triplet.
    pub oid: &'a Oid,
    /// Event being processed.
    pub event: &'a str,
    /// Event arguments.
    pub args: &'a [String],
    /// Posting user.
    pub user: &'a str,
    /// Logical timestamp.
    pub date: u64,
}

impl<'a> EvalCtx<'a> {
    /// A property read through the overlay, then the base map.
    fn prop(&self, name: &str) -> Option<&Value> {
        self.overlay
            .and_then(|o| o.get(name))
            .or_else(|| self.props.get(name))
    }

    /// Resolves a `$name` reference.
    pub fn lookup(&self, name: &str) -> Value {
        match name {
            "oid" | "OID" => Value::Str(self.oid.to_string()),
            "block" => Value::Str(self.oid.block.to_string()),
            "view" => Value::Str(self.oid.view.to_string()),
            "version" => Value::Int(i64::from(self.oid.version)),
            "event" => Value::Str(self.event.to_string()),
            "arg" => Value::Str(
                self.args
                    .first()
                    .map(String::as_str)
                    .unwrap_or_default()
                    .to_string(),
            ),
            "args" => Value::Str(self.args.join(" ")),
            "user" => Value::Str(self.user.to_string()),
            "owner" => self
                .prop("owner")
                .cloned()
                .unwrap_or_else(|| Value::Str(self.user.to_string())),
            "date" => Value::Int(self.date as i64),
            prop => self
                .prop(prop)
                .cloned()
                .unwrap_or_else(|| Value::Str(String::new())),
        }
    }

    /// Renders a template to a string, then classifies it into a typed atom
    /// — so `uptodate = false` stores a boolean and `version = 4` an
    /// integer, while interpolated messages stay strings.
    pub fn render_value(&self, template: &Template) -> Value {
        if let Some(var) = template.as_single_var() {
            return self.lookup(var);
        }
        let text = self.render(template);
        match template.segments.as_slice() {
            [Segment::Lit(_)] => Value::from_atom(&text),
            _ => Value::Str(text),
        }
    }

    /// Renders a template to plain text (for script arguments and messages).
    pub fn render(&self, template: &Template) -> String {
        let mut out = String::new();
        for segment in &template.segments {
            match segment {
                Segment::Lit(text) => out.push_str(text),
                Segment::Var(name) => out.push_str(&self.lookup(name).as_atom()),
            }
        }
        out
    }

    /// Evaluates a continuous-assignment expression to a value.
    ///
    /// Comparisons use [`Value::loose_eq`]; `and`/`or`/`not` coerce operands
    /// through [`Value::is_truthy`]. The result of a boolean operator is a
    /// [`Value::Bool`].
    pub fn eval(&self, expr: &Expr) -> Value {
        match expr {
            Expr::Var(name) => self.lookup(name),
            Expr::Atom(atom) => Value::from_atom(atom),
            Expr::Str(s) => Value::Str(s.clone()),
            Expr::Eq(a, b) => Value::Bool(self.eval(a).loose_eq(&self.eval(b))),
            Expr::Ne(a, b) => Value::Bool(!self.eval(a).loose_eq(&self.eval(b))),
            Expr::And(a, b) => Value::Bool(self.eval(a).is_truthy() && self.eval(b).is_truthy()),
            Expr::Or(a, b) => Value::Bool(self.eval(a).is_truthy() || self.eval(b).is_truthy()),
            Expr::Not(a) => Value::Bool(!self.eval(a).is_truthy()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;

    fn ctx<'a>(props: &'a PropertyMap, oid: &'a Oid, args: &'a [String]) -> EvalCtx<'a> {
        EvalCtx {
            props,
            overlay: None,
            oid,
            event: "ckin",
            args,
            user: "yves",
            date: 42,
        }
    }

    fn props(pairs: &[(&str, &str)]) -> PropertyMap {
        let mut m = PropertyMap::new();
        for (k, v) in pairs {
            m.set(*k, Value::from_atom(v));
        }
        m
    }

    /// Extracts the single let-expression from a tiny blueprint.
    fn expr_of(src: &str) -> Expr {
        let full = format!("blueprint t view v let x = {src} endview endblueprint");
        parse(&full).unwrap().views[0].lets[0].expr.clone()
    }

    #[test]
    fn builtins_resolve() {
        let p = props(&[]);
        let oid = Oid::new("cpu", "schematic", 3);
        let args = vec!["good".to_string(), "extra".to_string()];
        let c = ctx(&p, &oid, &args);
        assert_eq!(c.lookup("oid").as_atom(), "cpu,schematic,3");
        assert_eq!(c.lookup("OID").as_atom(), "cpu,schematic,3");
        assert_eq!(c.lookup("block").as_atom(), "cpu");
        assert_eq!(c.lookup("view").as_atom(), "schematic");
        assert_eq!(c.lookup("version"), Value::Int(3));
        assert_eq!(c.lookup("event").as_atom(), "ckin");
        assert_eq!(c.lookup("arg").as_atom(), "good");
        assert_eq!(c.lookup("args").as_atom(), "good extra");
        assert_eq!(c.lookup("user").as_atom(), "yves");
        assert_eq!(c.lookup("date"), Value::Int(42));
    }

    #[test]
    fn owner_falls_back_to_user() {
        let p = props(&[]);
        let oid = Oid::new("a", "v", 1);
        let c = ctx(&p, &oid, &[]);
        assert_eq!(c.lookup("owner").as_atom(), "yves");
        let p = props(&[("owner", "marc")]);
        let c = ctx(&p, &oid, &[]);
        assert_eq!(c.lookup("owner").as_atom(), "marc");
    }

    #[test]
    fn unknown_variable_is_empty_string() {
        let p = props(&[]);
        let oid = Oid::new("a", "v", 1);
        let c = ctx(&p, &oid, &[]);
        assert_eq!(c.lookup("nonexistent"), Value::Str(String::new()));
    }

    #[test]
    fn renders_the_papers_notify_message() {
        let p = props(&[("owner", "salma")]);
        let oid = Oid::new("reg", "verilog", 4);
        let c = ctx(&p, &oid, &[]);
        let t = Template::parse_interpolated("$owner: Your oid $OID has been modified");
        assert_eq!(
            c.render(&t),
            "salma: Your oid reg,verilog,4 has been modified"
        );
    }

    #[test]
    fn render_value_types_bare_atoms() {
        let p = props(&[]);
        let oid = Oid::new("a", "v", 1);
        let c = ctx(&p, &oid, &[]);
        assert_eq!(c.render_value(&Template::lit("false")), Value::Bool(false));
        assert_eq!(c.render_value(&Template::lit("7")), Value::Int(7));
        assert_eq!(
            c.render_value(&Template::lit("not_equiv")),
            Value::Str("not_equiv".into())
        );
        // Interpolated strings stay strings even if they spell a number.
        let t = Template::parse_interpolated("$version");
        // single var: typed lookup
        assert_eq!(c.render_value(&t), Value::Int(1));
        let t = Template::parse_interpolated("v$version");
        assert_eq!(c.render_value(&t), Value::Str("v1".into()));
    }

    #[test]
    fn evaluates_the_papers_state_assignment() {
        let oid = Oid::new("cpu", "schematic", 1);
        let expr =
            expr_of("($nl_sim_res == good) and ($lvs_res == is_equiv) and ($uptodate == true)");

        let p = props(&[
            ("nl_sim_res", "good"),
            ("lvs_res", "is_equiv"),
            ("uptodate", "true"),
        ]);
        assert_eq!(ctx(&p, &oid, &[]).eval(&expr), Value::Bool(true));

        let p = props(&[
            ("nl_sim_res", "bad"),
            ("lvs_res", "is_equiv"),
            ("uptodate", "true"),
        ]);
        assert_eq!(ctx(&p, &oid, &[]).eval(&expr), Value::Bool(false));
    }

    #[test]
    fn not_and_ne_and_or() {
        let oid = Oid::new("a", "v", 1);
        let p = props(&[("drc", "bad")]);
        let c = ctx(&p, &oid, &[]);
        assert_eq!(c.eval(&expr_of("not ($drc == good)")), Value::Bool(true));
        assert_eq!(c.eval(&expr_of("$drc != good")), Value::Bool(true));
        assert_eq!(
            c.eval(&expr_of("($drc == good) or ($drc == bad)")),
            Value::Bool(true)
        );
    }

    #[test]
    fn loose_comparison_across_types() {
        let oid = Oid::new("a", "v", 1);
        let p = props(&[("n", "4")]);
        let c = ctx(&p, &oid, &[]);
        // prop is Int(4); atom `4` is Int; string "4" compares loosely equal.
        assert_eq!(c.eval(&expr_of("$n == 4")), Value::Bool(true));
        assert_eq!(c.eval(&expr_of(r#"$n == "4""#)), Value::Bool(true));
    }

    #[test]
    fn missing_property_compares_as_empty() {
        let oid = Oid::new("a", "v", 1);
        let p = props(&[]);
        let c = ctx(&p, &oid, &[]);
        assert_eq!(c.eval(&expr_of(r#"$ghost == """#)), Value::Bool(true));
        assert_eq!(c.eval(&expr_of("$ghost == good")), Value::Bool(false));
    }
}

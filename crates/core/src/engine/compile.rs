//! The blueprint compiler: the one-time translation from the parsed rule
//! language to the run-time engine's dispatch tables.
//!
//! The paper's run-time loop (Section 3.2) consults the blueprint on every
//! delivered event: find the OID's view, collect the `default` view's rules
//! plus the view's own rules for the event, split their actions into phases,
//! and walk the links. Interpreting the AST for each of those steps costs a
//! linear scan over `Vec<ViewDef>`, a string comparison per rule, and a
//! phase-partitioning pass per delivery — all of it identical every time.
//!
//! [`CompiledBlueprint`] does that work once per blueprint load, the way a
//! query planner separates planning from execution:
//!
//! * every event, view and property name is interned into a [`SymbolTable`]
//!   (shared `damocles-meta` intern module), so the wave loop keys its
//!   visited set and rule lookups by `Copy` symbols;
//! * each view gets a [`DispatchTable`] mapping event symbol → pre-merged,
//!   pre-phase-split action lists (`default` view's rules first, "applies to
//!   all the views"), so delivery is a single hash lookup;
//! * the PROPAGATE sets of link templates are precomputed as [`SymSet`]
//!   bitsets over the interned event universe — the blueprint-level mirror
//!   of the per-link bitsets the meta-database keeps for the engine's
//!   per-hop filter (see `MetaDb::neighbors_iter`). Their union
//!   ([`CompiledBlueprint::may_propagate`]) answers "could any template
//!   forward this event" for tooling and validation; the engine itself
//!   keeps the exact per-link check, since links created through the raw
//!   database API may forward events no template mentions;
//! * continuous assignments are pre-merged per view in evaluation order;
//! * the views are partitioned into **link-connected components**: two views
//!   land in the same component exactly when a chain of `link_from` /
//!   `use_link` templates connects them. Each component is a [`ShardId`]
//!   stamped onto the view's [`DispatchTable`], so the parallel wave
//!   scheduler resolves an OID's shard at dispatch-table-lookup cost — at
//!   compile time, not per event. Links created outside the templates (raw
//!   database links, adopted images) can bridge compile-time components;
//!   the [`ShardMap`] overlays those runtime merges on the compiled
//!   partition and is invalidated by the database's
//!   [`topology stamp`](damocles_meta::MetaDb::topology_stamp).
//!
//! The compiled form owns its data (templates and expressions are cloned out
//! of the AST), so the engine can hold it alongside the blueprint without
//! self-referential lifetimes.

use std::collections::HashMap;
use std::sync::Arc;

use damocles_meta::{Direction, MetaDb, OidId, Sym, SymSet, SymbolTable, TopoDelta};

use crate::lang::ast::{Action, Blueprint, Expr, LinkSource, Template};

/// A per-event action list inlining up to four entries.
///
/// Almost every `(view, event)` pair merges only a handful of actions (the
/// `default` view's plus the view's own), so the common case lives inside
/// the [`Dispatch`] itself and the wave loop follows no `Vec` indirection
/// to reach it; longer lists spill to the heap transparently.
#[derive(Debug, Clone)]
pub struct ActionVec<T> {
    inline: [Option<T>; 4],
    spill: Vec<T>,
}

impl<T> Default for ActionVec<T> {
    fn default() -> Self {
        ActionVec {
            inline: [None, None, None, None],
            spill: Vec::new(),
        }
    }
}

impl<T> ActionVec<T> {
    /// Appends an action, spilling past the fourth.
    pub fn push(&mut self, item: T) {
        for slot in &mut self.inline {
            if slot.is_none() {
                *slot = Some(item);
                return;
            }
        }
        self.spill.push(item);
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.inline.iter().filter(|s| s.is_some()).count() + self.spill.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.inline[0].is_none() && self.spill.is_empty()
    }

    /// The action at `index`, in push order.
    pub fn get(&self, index: usize) -> Option<&T> {
        self.iter().nth(index)
    }

    /// Iterates in push order: inline entries first, then the spill.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline.iter().flatten().chain(self.spill.iter())
    }
}

impl<T> std::ops::Index<usize> for ActionVec<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        self.get(index).expect("ActionVec index out of bounds")
    }
}

impl<'a, T> IntoIterator for &'a ActionVec<T> {
    type Item = &'a T;
    type IntoIter = std::iter::Chain<
        std::iter::Flatten<std::slice::Iter<'a, Option<T>>>,
        std::slice::Iter<'a, T>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.inline.iter().flatten().chain(self.spill.iter())
    }
}

/// A compiled `prop = value` action.
#[derive(Debug, Clone)]
pub struct CompiledAssign {
    /// Target property name.
    pub prop: String,
    /// Value template.
    pub value: Template,
}

/// A compiled `exec`/`notify` action.
#[derive(Debug, Clone)]
pub struct CompiledExec {
    /// Script-name template (for `notify`, the message template).
    pub script: Template,
    /// Argument templates.
    pub args: Vec<Template>,
    /// True for `notify` actions.
    pub notify: bool,
}

/// A compiled `post` action.
#[derive(Debug, Clone)]
pub struct CompiledPost {
    /// The posted event, interned.
    pub event: Sym,
    /// Propagation direction.
    pub direction: Direction,
    /// Target view of the `post … to <view>` form.
    pub to_view: Option<String>,
    /// Argument templates.
    pub args: Vec<Template>,
}

/// A compiled continuous assignment.
#[derive(Debug, Clone)]
pub struct CompiledLet {
    /// The derived property name.
    pub name: String,
    /// The defining expression.
    pub expr: Expr,
}

/// The pre-merged, pre-phase-split actions one `(view, event)` pair executes:
/// Section 3.2's assign / exec / post ordering, with the `default` view's
/// rules already merged in front.
#[derive(Debug, Clone, Default)]
pub struct Dispatch {
    /// Phase 1: property assignments.
    pub assigns: ActionVec<CompiledAssign>,
    /// Phase 3: script invocations (collected, dispatched post-wave).
    pub execs: ActionVec<CompiledExec>,
    /// Phase 4: event posts.
    pub posts: ActionVec<CompiledPost>,
}

impl Dispatch {
    fn absorb(&mut self, actions: &[Action], symbols: &mut SymbolTable) {
        for action in actions {
            match action {
                Action::Assign { prop, value } => {
                    symbols.intern(prop);
                    self.assigns.push(CompiledAssign {
                        prop: prop.clone(),
                        value: value.clone(),
                    });
                }
                Action::Exec { script, args } => self.execs.push(CompiledExec {
                    script: script.clone(),
                    args: args.clone(),
                    notify: false,
                }),
                Action::Notify { message } => self.execs.push(CompiledExec {
                    script: message.clone(),
                    args: Vec::new(),
                    notify: true,
                }),
                Action::Post {
                    event,
                    direction,
                    to_view,
                    args,
                } => self.posts.push(CompiledPost {
                    event: symbols.intern(event),
                    direction: *direction,
                    to_view: to_view.clone(),
                    args: args.clone(),
                }),
            }
        }
    }
}

/// A link-connected component of the compiled blueprint's view graph — the
/// compile-time unit of wave parallelism. Two OIDs whose views carry
/// different (and runtime-unmerged, see [`ShardMap`]) shard ids can never
/// reach each other inside one propagation wave through
/// template-instantiated links, so their waves may execute on different
/// worker threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub u32);

/// One view's compiled run-time information.
#[derive(Debug, Clone, Default)]
pub struct DispatchTable {
    /// Event symbol → merged phase-split actions. Only events with at least
    /// one matching rule (in `default` or the view itself) appear.
    dispatch: HashMap<Sym, Dispatch>,
    /// Continuous assignments in evaluation order (`default`'s, then the
    /// view's own).
    lets: Vec<CompiledLet>,
    /// The link-connected component this view belongs to (see
    /// [`CompiledBlueprint::shard_of_table`]).
    shard: ShardId,
}

impl DispatchTable {
    /// The link-connected component this view's OIDs dispatch in.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The actions for an event, if any rule anywhere matches it.
    pub fn dispatch(&self, event: Sym) -> Option<&Dispatch> {
        self.dispatch.get(&event)
    }

    /// The pre-merged continuous assignments, in evaluation order.
    pub fn lets(&self) -> &[CompiledLet] {
        &self.lets
    }

    /// Number of events with at least one rule.
    pub fn rule_event_count(&self) -> usize {
        self.dispatch.len()
    }
}

/// A compiled link template's PROPAGATE set (diagnostic / tooling view; the
/// per-instance sets live on the database links themselves).
#[derive(Debug, Clone)]
pub struct CompiledLinkTemplate {
    /// The declaring view's name.
    pub view: String,
    /// PROPAGATE set as a bitset over the blueprint's event universe.
    pub propagates: SymSet,
}

/// A blueprint compiled for the run-time engine. Built once per blueprint
/// load by [`CompiledBlueprint::compile`]; immutable afterwards.
#[derive(Debug, Clone)]
pub struct CompiledBlueprint {
    symbols: SymbolTable,
    /// Shared name behind each symbol, aligned with `symbols`: wave items
    /// carry a clone of these so per-hop scheduling never copies a string.
    arc_names: Vec<Arc<str>>,
    /// Declared view name → index into `tables`. Presence here is what
    /// distinguishes "declared view without rules" from "unknown view".
    view_index: HashMap<String, usize>,
    tables: Vec<DispatchTable>,
    /// Dispatch for OIDs whose view the blueprint does not declare: the
    /// `default` view's rules only.
    fallback: DispatchTable,
    /// Index of the `default` view in `tables`, if declared.
    default_index: Option<usize>,
    /// Compiled link templates, in declaration order.
    link_templates: Vec<CompiledLinkTemplate>,
    /// Union of every link template's PROPAGATE set: an event outside this
    /// set can never cross a template-instantiated link.
    propagate_union: SymSet,
    /// The shard of OIDs whose view the blueprint does not declare. All
    /// undeclared views share one component: the compiler cannot bound
    /// which links their OIDs acquire, so they must not be split.
    fallback_shard: ShardId,
    /// Size of the shard id space (`views + 1`, the `+1` being the
    /// undeclared-view component). Shard ids are union-find roots inside
    /// this space, so they are stable but not dense.
    shard_space: u32,
    /// Process-unique id of this compilation, used by the engine's per-view
    /// dispatch cache to detect blueprint swaps (`reinit`) without holding a
    /// reference.
    generation: u64,
}

impl CompiledBlueprint {
    /// Compiles a parsed blueprint.
    pub fn compile(bp: &Blueprint) -> Self {
        let mut symbols = SymbolTable::new();

        // Intern the full event/view/property universe first so symbol
        // handles are dense and stable regardless of rule order.
        for view in &bp.views {
            symbols.intern(&view.name);
            for rule in &view.rules {
                symbols.intern(&rule.event);
            }
            for link in &view.links {
                for event in &link.propagates {
                    symbols.intern(event);
                }
            }
            for prop in &view.properties {
                symbols.intern(&prop.name);
            }
            for let_def in &view.lets {
                symbols.intern(&let_def.name);
            }
        }

        let default = bp.default_view();

        // The fallback table: `default` rules and lets only, for OIDs of
        // undeclared views ("applies to all the views").
        let mut fallback = DispatchTable::default();
        if let Some(default) = default {
            for rule in &default.rules {
                let sym = symbols.intern(&rule.event);
                fallback
                    .dispatch
                    .entry(sym)
                    .or_default()
                    .absorb(&rule.actions, &mut symbols);
            }
            fallback
                .lets
                .extend(default.lets.iter().map(|l| CompiledLet {
                    name: l.name.clone(),
                    expr: l.expr.clone(),
                }));
        }

        let mut view_index = HashMap::with_capacity(bp.views.len());
        let mut tables = Vec::with_capacity(bp.views.len());
        let mut default_index = None;
        let mut link_templates = Vec::new();
        let mut propagate_union = SymSet::new();

        for view in &bp.views {
            let is_default = view.name == "default";
            // Merged table: default's rules first (unless this *is* the
            // default view), then the view's own — the order `deliver`
            // executes them in.
            let mut table = if is_default {
                DispatchTable::default()
            } else {
                fallback.clone()
            };
            for rule in &view.rules {
                let sym = symbols.intern(&rule.event);
                table
                    .dispatch
                    .entry(sym)
                    .or_default()
                    .absorb(&rule.actions, &mut symbols);
            }
            table.lets.extend(view.lets.iter().map(|l| CompiledLet {
                name: l.name.clone(),
                expr: l.expr.clone(),
            }));

            for link in &view.links {
                let propagates: SymSet = link
                    .propagates
                    .iter()
                    .map(|event| symbols.intern(event))
                    .collect();
                for event in &link.propagates {
                    propagate_union.insert(symbols.intern(event));
                }
                link_templates.push(CompiledLinkTemplate {
                    view: view.name.clone(),
                    propagates,
                });
            }

            let index = tables.len();
            if is_default {
                default_index = Some(index);
            }
            // First declaration wins on duplicate names, matching
            // `Blueprint::view`'s linear-scan semantics (the validator
            // rejects duplicates anyway).
            view_index.entry(view.name.clone()).or_insert(index);
            tables.push(table);
        }

        // Link-connected components over the view graph: every `link_from`
        // template is an edge between the declaring view and its source
        // view (`use_link` relates a view to itself — no edge). A source
        // view the blueprint does not declare joins the undeclared-view
        // component, since its OIDs are indistinguishable from any other
        // undeclared view's. This runs after the table pass so forward
        // references (`link_from` naming a later view) resolve.
        let fallback_slot = tables.len() as u32;
        let mut parent: Vec<u32> = (0..=fallback_slot).collect();
        for (index, view) in bp.views.iter().enumerate() {
            for link in &view.links {
                if let LinkSource::View(source) = &link.source {
                    let source_slot = view_index
                        .get(source.as_str())
                        .map_or(fallback_slot, |&i| i as u32);
                    uf_union(&mut parent, index as u32, source_slot);
                }
            }
        }
        for (index, table) in tables.iter_mut().enumerate() {
            table.shard = ShardId(uf_find(&mut parent, index as u32));
        }
        let fallback_shard = ShardId(uf_find(&mut parent, fallback_slot));
        fallback.shard = fallback_shard;

        let arc_names = symbols.iter().map(|(_, name)| Arc::from(name)).collect();
        static GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        CompiledBlueprint {
            symbols,
            arc_names,
            view_index,
            tables,
            fallback,
            default_index,
            link_templates,
            propagate_union,
            fallback_shard,
            shard_space: fallback_slot + 1,
            generation: GENERATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Process-unique id of this compilation — changes on every
    /// [`CompiledBlueprint::compile`] call, letting caches keyed on it
    /// detect a blueprint swap.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The `tables` index of a declared view's dispatch table, or `None`
    /// for undeclared views (which dispatch through the fallback table).
    /// The cacheable form of [`CompiledBlueprint::table_for_view`].
    pub fn table_index_for_view(&self, view: &str) -> Option<usize> {
        self.view_index.get(view).copied()
    }

    /// The dispatch table at a [`CompiledBlueprint::table_index_for_view`]
    /// index; `None` selects the fallback table.
    pub fn table_at(&self, index: Option<usize>) -> &DispatchTable {
        match index {
            Some(i) => &self.tables[i],
            None => &self.fallback,
        }
    }

    /// The interned name universe (events, views, properties).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The symbol of an already-interned name. Never allocates.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.symbols.lookup(name)
    }

    /// The shared name behind a symbol; cloning the `Arc` is how wave items
    /// carry event names without string copies.
    pub fn name_arc(&self, sym: Sym) -> Option<&Arc<str>> {
        self.arc_names.get(sym.index())
    }

    /// Whether the blueprint declares a view of this name.
    pub fn declares_view(&self, view: &str) -> bool {
        self.view_index.contains_key(view)
    }

    /// The dispatch table for OIDs of `view`: the view's merged table if
    /// declared, the `default`-only fallback otherwise.
    pub fn table_for_view(&self, view: &str) -> &DispatchTable {
        self.table_at(self.table_index_for_view(view))
    }

    /// Whether a `default` view is declared.
    pub fn has_default_view(&self) -> bool {
        self.default_index.is_some()
    }

    /// Whether any link template's PROPAGATE set forwards `event` — the
    /// cheap pre-check before walking a node's links. Events outside the
    /// union can still cross links added through the raw
    /// [`MetaDb`] API, so this is advisory for
    /// template-instantiated graphs; the engine keeps the exact per-link
    /// check.
    pub fn may_propagate(&self, event: Sym) -> bool {
        self.propagate_union.contains(event)
    }

    /// Compiled link templates, in declaration order.
    pub fn link_templates(&self) -> &[CompiledLinkTemplate] {
        &self.link_templates
    }

    /// The link-connected component of the table at a
    /// [`CompiledBlueprint::table_index_for_view`] index; `None` selects
    /// the undeclared-view component.
    pub fn shard_of_table(&self, index: Option<usize>) -> ShardId {
        match index {
            Some(i) => self.tables[i].shard,
            None => self.fallback_shard,
        }
    }

    /// The link-connected component of `view`'s OIDs.
    pub fn shard_of_view(&self, view: &str) -> ShardId {
        self.shard_of_table(self.table_index_for_view(view))
    }

    /// The shard of OIDs whose view the blueprint does not declare.
    pub fn fallback_shard(&self) -> ShardId {
        self.fallback_shard
    }

    /// Size of the shard id space (every [`ShardId`] is `< shard_space`).
    pub fn shard_space(&self) -> u32 {
        self.shard_space
    }
}

/// Union-find `find` with path compression over a flat parent vector.
fn uf_find(parent: &mut [u32], mut a: u32) -> u32 {
    while parent[a as usize] != a {
        let grand = parent[parent[a as usize] as usize];
        parent[a as usize] = grand;
        a = grand;
    }
    a
}

/// Union-find `union`; returns whether two distinct roots were merged.
fn uf_union(parent: &mut [u32], a: u32, b: u32) -> bool {
    let (ra, rb) = (uf_find(parent, a), uf_find(parent, b));
    if ra == rb {
        return false;
    }
    // Lower root wins so ids stay stable under re-runs.
    let (keep, fold) = if ra < rb { (ra, rb) } else { (rb, ra) };
    parent[fold as usize] = keep;
    true
}

// ---------------------------------------------------------------------
// The runtime shard map
// ---------------------------------------------------------------------

/// The runtime **instance-level** shard partition.
///
/// The compiler proves that template-instantiated links never cross
/// [`ShardId`] boundaries, but that partition is per *view component*: two
/// disjoint instance chains of the same views land in one compile-time
/// shard and serialize behind each other. A `ShardMap` instead runs a
/// union-find over the **live OIDs themselves**, keyed by arena slot,
/// folding in every live link that can carry at least one event (an empty
/// PROPAGATE set carries nothing). The result is the finest partition with
/// the invariant the parallel wave scheduler needs:
///
/// > a propagation wave anchored at an OID of group *g* can only ever
/// > read or write OIDs of group *g*,
///
/// because every wave read and write reaches its OIDs by walking
/// propagating links out from the anchor.
///
/// Any link-topology change bumps the database's
/// [`topology stamp`](MetaDb::topology_stamp), which makes the map
/// [stale](ShardMap::is_current). The owner first tries
/// [`ShardMap::try_update`], which replays the database's bounded
/// [topology delta log](MetaDb::topology_deltas_since) — new bridges are
/// pure union-find merges, so mid-session `Connect`/`PROPAGATE` growth
/// costs O(deltas), not a rescan of every link. Only severing changes
/// (link removal or repointing away) force a full rebuild, because a
/// union-find cannot un-merge.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Union-find parents over OID arena slots, seeded identity and
    /// folded by propagating links. Slots at or beyond the vector's end
    /// are implicit singletons (OIDs created after the map was built).
    parent: Vec<u32>,
    /// The [`MetaDb::topology_stamp`] this map describes.
    topo_stamp: u64,
    /// The [`CompiledBlueprint::generation`] this map was built against.
    compiled_generation: u64,
    /// Distinct components merged by propagating links (build + updates).
    merges: u64,
    /// Incremental delta-log updates absorbed since the last full build.
    incremental_updates: u64,
    /// Distinct groups among live OIDs at build time, maintained
    /// approximately across incremental updates (exact again on rebuild).
    groups: u32,
}

impl ShardMap {
    /// Builds the map for the current database topology: seeds every live
    /// OID as its own group, then folds in every live link whose
    /// PROPAGATE set is non-empty.
    pub fn build(compiled: &CompiledBlueprint, db: &MetaDb) -> ShardMap {
        let slots = db
            .iter_oids()
            .map(|(id, _)| id.slot() + 1)
            .max()
            .unwrap_or(0);
        let mut parent: Vec<u32> = (0..slots).collect();
        let mut merges = 0u64;
        for (_, link) in db.iter_links() {
            if link.propagates().is_empty() {
                continue;
            }
            if uf_union(&mut parent, link.from.slot(), link.to.slot()) {
                merges += 1;
            }
        }
        let mut roots: Vec<u32> = db
            .iter_oids()
            .map(|(id, _)| uf_find(&mut parent, id.slot()))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        ShardMap {
            parent,
            topo_stamp: db.topology_stamp(),
            compiled_generation: compiled.generation(),
            merges,
            incremental_updates: 0,
            groups: roots.len() as u32,
        }
    }

    /// Whether the map still describes `(compiled, db)` — `false` after a
    /// blueprint swap or any link-topology change (including a `Connect`
    /// that bridges two previously-disjoint components).
    pub fn is_current(&self, compiled: &CompiledBlueprint, db: &MetaDb) -> bool {
        self.compiled_generation == compiled.generation() && self.topo_stamp == db.topology_stamp()
    }

    /// Brings a stale map up to date by replaying the database's bounded
    /// topology delta log, without rescanning any link. Returns `true` on
    /// success (the map is then [current](ShardMap::is_current)) and
    /// `false` when only a full [`ShardMap::build`] can help: the
    /// blueprint generation moved, the log has been truncated past this
    /// map's stamp, or a delta severed topology (union-find cannot
    /// un-merge).
    pub fn try_update(&mut self, compiled: &CompiledBlueprint, db: &MetaDb) -> bool {
        if self.compiled_generation != compiled.generation() {
            return false;
        }
        if self.topo_stamp == db.topology_stamp() {
            return true;
        }
        let Some(deltas) = db.topology_deltas_since(self.topo_stamp) else {
            return false;
        };
        let deltas: Vec<TopoDelta> = deltas.copied().collect();
        if deltas.iter().any(|d| matches!(d, TopoDelta::Sever)) {
            return false;
        }
        for delta in deltas {
            let TopoDelta::Bridge { a, b } = delta else {
                continue; // Quiet: a link that still carries nothing
            };
            let grow = a.slot().max(b.slot()) + 1;
            if grow as usize > self.parent.len() {
                // OIDs created since the build: late singletons.
                self.groups += grow - self.parent.len() as u32;
                self.parent.extend(self.parent.len() as u32..grow);
            }
            if uf_union(&mut self.parent, a.slot(), b.slot()) {
                self.merges += 1;
                self.groups = self.groups.saturating_sub(1);
            }
        }
        self.topo_stamp = db.topology_stamp();
        self.incremental_updates += 1;
        true
    }

    /// The shard-map generation: the `(blueprint generation, topology
    /// stamp)` pair the partition describes. Any bridge-creating
    /// `Connect` moves it.
    pub fn generation(&self) -> (u64, u64) {
        (self.compiled_generation, self.topo_stamp)
    }

    /// The execution group of an OID: the union-find root of its arena
    /// slot. OIDs created after the map was built are singleton groups
    /// (correct: had they gained a propagating link, the map would be
    /// stale). A stale handle lands in group 0 — the wave executing there
    /// reports the same stale-OID error the sequential path would.
    pub fn group_of(&self, _compiled: &CompiledBlueprint, db: &MetaDb, id: OidId) -> ShardId {
        if !db.is_live(id) {
            return ShardId(0);
        }
        let mut a = id.slot();
        while (a as usize) < self.parent.len() && self.parent[a as usize] != a {
            a = self.parent[a as usize];
        }
        ShardId(a)
    }

    /// Distinct components merged by propagating links (at build time plus
    /// across incremental updates).
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Incremental delta-log updates absorbed since the last full build —
    /// `0` on a freshly built map, so a nonzero value proves mid-session
    /// topology growth was patched in rather than rebuilt over.
    pub fn incremental_updates(&self) -> u64 {
        self.incremental_updates
    }

    /// Distinct execution groups among live OIDs at build time — the
    /// parallelism ceiling of one batch. Maintained approximately across
    /// incremental updates (merges decrement it, late OIDs join as
    /// singletons); a rebuild makes it exact again.
    pub fn group_count(&self) -> u32 {
        self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;

    fn edtc_like() -> Blueprint {
        parse(
            r#"blueprint t
            view default
                property uptodate default true
                when ckin do uptodate = true; post outofdate down done
                when outofdate do uptodate = false done
            endview
            view HDL_model
                when hdl_sim do sim_result = $arg done
            endview
            view schematic
                link_from HDL_model move propagates outofdate type derived
                use_link move propagates outofdate
                let state = ($uptodate == true)
            endview
            endblueprint"#,
        )
        .unwrap()
    }

    #[test]
    fn merged_dispatch_prepends_default_rules() {
        let bp = edtc_like();
        let compiled = CompiledBlueprint::compile(&bp);
        let ckin = compiled.lookup("ckin").unwrap();
        let hdl_sim = compiled.lookup("hdl_sim").unwrap();

        // HDL_model answers both its own event and the default's.
        let table = compiled.table_for_view("HDL_model");
        assert!(table.dispatch(ckin).is_some());
        let d = table.dispatch(hdl_sim).unwrap();
        assert_eq!(d.assigns.len(), 1);
        assert_eq!(d.assigns[0].prop, "sim_result");

        // The default view's own table holds its rules exactly once.
        let d = compiled.table_for_view("default").dispatch(ckin).unwrap();
        assert_eq!(d.assigns.len(), 1);
        assert_eq!(d.posts.len(), 1);
    }

    #[test]
    fn unknown_views_fall_back_to_default_rules() {
        let bp = edtc_like();
        let compiled = CompiledBlueprint::compile(&bp);
        assert!(!compiled.declares_view("mystery"));
        let ckin = compiled.lookup("ckin").unwrap();
        let table = compiled.table_for_view("mystery");
        assert!(table.dispatch(ckin).is_some());
        assert_eq!(table.rule_event_count(), 2);
    }

    #[test]
    fn lets_merge_in_evaluation_order() {
        let bp = parse(
            r#"blueprint t
            view default
                let base = (1 == 1)
            endview
            view layout
                let refined = ($base == true)
            endview
            endblueprint"#,
        )
        .unwrap();
        let compiled = CompiledBlueprint::compile(&bp);
        let names: Vec<&str> = compiled
            .table_for_view("layout")
            .lets()
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(names, vec!["base", "refined"]);
        // The default view itself evaluates its own lets once.
        assert_eq!(compiled.table_for_view("default").lets().len(), 1);
    }

    #[test]
    fn propagate_union_covers_template_sets_only() {
        let bp = edtc_like();
        let compiled = CompiledBlueprint::compile(&bp);
        let outofdate = compiled.lookup("outofdate").unwrap();
        let ckin = compiled.lookup("ckin").unwrap();
        assert!(compiled.may_propagate(outofdate));
        assert!(!compiled.may_propagate(ckin));
        assert_eq!(compiled.link_templates().len(), 2);
        assert!(compiled.link_templates()[0].propagates.contains(outofdate));
    }

    #[test]
    fn action_vec_inlines_four_and_spills_beyond() {
        let mut v: ActionVec<u32> = ActionVec::default();
        assert!(v.is_empty());
        for i in 0..6 {
            v.push(i);
        }
        assert_eq!(v.len(), 6);
        assert!(!v.is_empty());
        let collected: Vec<u32> = v.iter().copied().collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(v[4], 4);
        assert_eq!(v.get(6), None);
    }

    #[test]
    fn link_templates_define_shard_components() {
        // a <- b (template edge), c alone, plus an undeclared source.
        let bp = parse(
            r#"blueprint shards
            view a endview
            view b
                link_from a propagates ev type derived
            endview
            view c endview
            view d
                link_from mystery propagates ev type derived
            endview
            endblueprint"#,
        )
        .unwrap();
        let compiled = CompiledBlueprint::compile(&bp);
        assert_eq!(compiled.shard_of_view("a"), compiled.shard_of_view("b"));
        assert_ne!(compiled.shard_of_view("a"), compiled.shard_of_view("c"));
        // `link_from mystery` joins d with the undeclared-view component,
        // and unknown views resolve to that same component.
        assert_eq!(compiled.shard_of_view("d"), compiled.fallback_shard());
        assert_eq!(compiled.shard_of_view("ghost"), compiled.fallback_shard());
        assert_eq!(compiled.shard_space(), 5);
        // The tables carry their shard.
        assert_eq!(
            compiled.table_for_view("b").shard(),
            compiled.shard_of_view("a")
        );
    }

    #[test]
    fn shard_map_merges_on_raw_bridge_links_only() {
        use damocles_meta::{LinkClass, LinkKind, MetaDb, Oid};
        let bp = parse(
            r#"blueprint shards
            view a endview
            view b endview
            endblueprint"#,
        )
        .unwrap();
        let compiled = CompiledBlueprint::compile(&bp);
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("x", "a", 1)).unwrap();
        let b = db.create_oid(Oid::new("x", "b", 1)).unwrap();

        // A link with an EMPTY PROPAGATE set carries nothing: no merge.
        let bare = db
            .add_link(a, b, LinkClass::Derive, LinkKind::DeriveFrom)
            .unwrap();
        let map = ShardMap::build(&compiled, &db);
        assert_eq!(map.merges(), 0);
        assert_ne!(
            map.group_of(&compiled, &db, a),
            map.group_of(&compiled, &db, b)
        );
        assert_eq!(map.group_count(), 2);
        assert!(map.is_current(&compiled, &db));

        // Growing its PROPAGATE set moves the topology stamp (the map
        // goes stale) and the rebuilt map merges the two components.
        db.allow_event(bare, "zap").unwrap();
        assert!(!map.is_current(&compiled, &db));
        let merged = ShardMap::build(&compiled, &db);
        assert_ne!(merged.generation(), map.generation());
        assert_eq!(merged.merges(), 1);
        assert_eq!(
            merged.group_of(&compiled, &db, a),
            merged.group_of(&compiled, &db, b)
        );
        assert_eq!(merged.group_count(), 1);
    }

    #[test]
    fn shard_map_absorbs_bridges_incrementally_and_rebuilds_on_sever() {
        use damocles_meta::{LinkClass, LinkKind, MetaDb, Oid};
        let bp = parse(
            r#"blueprint shards
            view a endview
            view b endview
            endblueprint"#,
        )
        .unwrap();
        let compiled = CompiledBlueprint::compile(&bp);
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("x", "a", 1)).unwrap();
        let b = db.create_oid(Oid::new("x", "b", 1)).unwrap();
        let mut map = ShardMap::build(&compiled, &db);
        assert_eq!(map.incremental_updates(), 0);
        assert!(map.try_update(&compiled, &db), "current map: no-op update");
        assert_eq!(map.incremental_updates(), 0, "no-op absorbs nothing");

        // A late OID plus a bridge to it: both patched in from the delta
        // log, no rebuild.
        let c = db.create_oid(Oid::new("x", "b", 2)).unwrap();
        let bridge = db
            .add_link_with(a, c, LinkClass::Derive, LinkKind::DeriveFrom, ["zap"])
            .unwrap();
        assert!(!map.is_current(&compiled, &db));
        assert!(map.try_update(&compiled, &db));
        assert!(map.is_current(&compiled, &db));
        assert_eq!(map.incremental_updates(), 1);
        assert_eq!(map.merges(), 1);
        assert_eq!(
            map.group_of(&compiled, &db, a),
            map.group_of(&compiled, &db, c)
        );
        assert_ne!(
            map.group_of(&compiled, &db, a),
            map.group_of(&compiled, &db, b)
        );
        assert_eq!(map.group_count(), 2, "{{a,c}} and {{b}}");

        // Severing topology cannot be patched into a union-find.
        db.remove_link(bridge).unwrap();
        assert!(!map.try_update(&compiled, &db));
        let rebuilt = ShardMap::build(&compiled, &db);
        assert_eq!(rebuilt.incremental_updates(), 0);
        assert_ne!(
            rebuilt.group_of(&compiled, &db, a),
            rebuilt.group_of(&compiled, &db, c)
        );
        assert_eq!(rebuilt.group_count(), 3);
    }

    #[test]
    fn shard_map_separates_disjoint_chains_of_one_view_family() {
        use damocles_meta::{LinkClass, LinkKind, MetaDb, Oid};
        let bp = parse(
            r#"blueprint shards
            view a endview
            view b endview
            endblueprint"#,
        )
        .unwrap();
        let compiled = CompiledBlueprint::compile(&bp);
        let mut db = MetaDb::new();
        // Two instance chains over the SAME views: compile-time sharding
        // would serialize them; instance-level sharding must not.
        let a1 = db.create_oid(Oid::new("x", "a", 1)).unwrap();
        let b1 = db.create_oid(Oid::new("x", "b", 1)).unwrap();
        let a2 = db.create_oid(Oid::new("y", "a", 1)).unwrap();
        let b2 = db.create_oid(Oid::new("y", "b", 1)).unwrap();
        db.add_link_with(a1, b1, LinkClass::Derive, LinkKind::DeriveFrom, ["ev"])
            .unwrap();
        db.add_link_with(a2, b2, LinkClass::Derive, LinkKind::DeriveFrom, ["ev"])
            .unwrap();
        let map = ShardMap::build(&compiled, &db);
        assert_eq!(
            map.group_of(&compiled, &db, a1),
            map.group_of(&compiled, &db, b1)
        );
        assert_ne!(
            map.group_of(&compiled, &db, a1),
            map.group_of(&compiled, &db, a2),
            "disjoint chains of one view family get their own groups"
        );
        assert_eq!(map.group_count(), 2);
    }

    #[test]
    fn posts_are_interned() {
        let bp = edtc_like();
        let compiled = CompiledBlueprint::compile(&bp);
        let ckin = compiled.lookup("ckin").unwrap();
        let outofdate = compiled.lookup("outofdate").unwrap();
        let d = compiled.table_for_view("schematic").dispatch(ckin).unwrap();
        assert_eq!(d.posts[0].event, outofdate);
        assert_eq!(d.posts[0].direction, Direction::Down);
    }
}

//! The blueprint compiler: the one-time translation from the parsed rule
//! language to the run-time engine's dispatch tables.
//!
//! The paper's run-time loop (Section 3.2) consults the blueprint on every
//! delivered event: find the OID's view, collect the `default` view's rules
//! plus the view's own rules for the event, split their actions into phases,
//! and walk the links. Interpreting the AST for each of those steps costs a
//! linear scan over `Vec<ViewDef>`, a string comparison per rule, and a
//! phase-partitioning pass per delivery — all of it identical every time.
//!
//! [`CompiledBlueprint`] does that work once per blueprint load, the way a
//! query planner separates planning from execution:
//!
//! * every event, view and property name is interned into a [`SymbolTable`]
//!   (shared `damocles-meta` intern module), so the wave loop keys its
//!   visited set and rule lookups by `Copy` symbols;
//! * each view gets a [`DispatchTable`] mapping event symbol → pre-merged,
//!   pre-phase-split action lists (`default` view's rules first, "applies to
//!   all the views"), so delivery is a single hash lookup;
//! * the PROPAGATE sets of link templates are precomputed as [`SymSet`]
//!   bitsets over the interned event universe — the blueprint-level mirror
//!   of the per-link bitsets the meta-database keeps for the engine's
//!   per-hop filter (see `MetaDb::neighbors_iter`). Their union
//!   ([`CompiledBlueprint::may_propagate`]) answers "could any template
//!   forward this event" for tooling and validation; the engine itself
//!   keeps the exact per-link check, since links created through the raw
//!   database API may forward events no template mentions;
//! * continuous assignments are pre-merged per view in evaluation order.
//!
//! The compiled form owns its data (templates and expressions are cloned out
//! of the AST), so the engine can hold it alongside the blueprint without
//! self-referential lifetimes.

use std::collections::HashMap;
use std::sync::Arc;

use damocles_meta::{Direction, Sym, SymSet, SymbolTable};

use crate::lang::ast::{Action, Blueprint, Expr, Template};

/// A compiled `prop = value` action.
#[derive(Debug, Clone)]
pub struct CompiledAssign {
    /// Target property name.
    pub prop: String,
    /// Value template.
    pub value: Template,
}

/// A compiled `exec`/`notify` action.
#[derive(Debug, Clone)]
pub struct CompiledExec {
    /// Script-name template (for `notify`, the message template).
    pub script: Template,
    /// Argument templates.
    pub args: Vec<Template>,
    /// True for `notify` actions.
    pub notify: bool,
}

/// A compiled `post` action.
#[derive(Debug, Clone)]
pub struct CompiledPost {
    /// The posted event, interned.
    pub event: Sym,
    /// Propagation direction.
    pub direction: Direction,
    /// Target view of the `post … to <view>` form.
    pub to_view: Option<String>,
    /// Argument templates.
    pub args: Vec<Template>,
}

/// A compiled continuous assignment.
#[derive(Debug, Clone)]
pub struct CompiledLet {
    /// The derived property name.
    pub name: String,
    /// The defining expression.
    pub expr: Expr,
}

/// The pre-merged, pre-phase-split actions one `(view, event)` pair executes:
/// Section 3.2's assign / exec / post ordering, with the `default` view's
/// rules already merged in front.
#[derive(Debug, Clone, Default)]
pub struct Dispatch {
    /// Phase 1: property assignments.
    pub assigns: Vec<CompiledAssign>,
    /// Phase 3: script invocations (collected, dispatched post-wave).
    pub execs: Vec<CompiledExec>,
    /// Phase 4: event posts.
    pub posts: Vec<CompiledPost>,
}

impl Dispatch {
    fn absorb(&mut self, actions: &[Action], symbols: &mut SymbolTable) {
        for action in actions {
            match action {
                Action::Assign { prop, value } => {
                    symbols.intern(prop);
                    self.assigns.push(CompiledAssign {
                        prop: prop.clone(),
                        value: value.clone(),
                    });
                }
                Action::Exec { script, args } => self.execs.push(CompiledExec {
                    script: script.clone(),
                    args: args.clone(),
                    notify: false,
                }),
                Action::Notify { message } => self.execs.push(CompiledExec {
                    script: message.clone(),
                    args: Vec::new(),
                    notify: true,
                }),
                Action::Post {
                    event,
                    direction,
                    to_view,
                    args,
                } => self.posts.push(CompiledPost {
                    event: symbols.intern(event),
                    direction: *direction,
                    to_view: to_view.clone(),
                    args: args.clone(),
                }),
            }
        }
    }
}

/// One view's compiled run-time information.
#[derive(Debug, Clone, Default)]
pub struct DispatchTable {
    /// Event symbol → merged phase-split actions. Only events with at least
    /// one matching rule (in `default` or the view itself) appear.
    dispatch: HashMap<Sym, Dispatch>,
    /// Continuous assignments in evaluation order (`default`'s, then the
    /// view's own).
    lets: Vec<CompiledLet>,
}

impl DispatchTable {
    /// The actions for an event, if any rule anywhere matches it.
    pub fn dispatch(&self, event: Sym) -> Option<&Dispatch> {
        self.dispatch.get(&event)
    }

    /// The pre-merged continuous assignments, in evaluation order.
    pub fn lets(&self) -> &[CompiledLet] {
        &self.lets
    }

    /// Number of events with at least one rule.
    pub fn rule_event_count(&self) -> usize {
        self.dispatch.len()
    }
}

/// A compiled link template's PROPAGATE set (diagnostic / tooling view; the
/// per-instance sets live on the database links themselves).
#[derive(Debug, Clone)]
pub struct CompiledLinkTemplate {
    /// The declaring view's name.
    pub view: String,
    /// PROPAGATE set as a bitset over the blueprint's event universe.
    pub propagates: SymSet,
}

/// A blueprint compiled for the run-time engine. Built once per blueprint
/// load by [`CompiledBlueprint::compile`]; immutable afterwards.
#[derive(Debug, Clone)]
pub struct CompiledBlueprint {
    symbols: SymbolTable,
    /// Shared name behind each symbol, aligned with `symbols`: wave items
    /// carry a clone of these so per-hop scheduling never copies a string.
    arc_names: Vec<Arc<str>>,
    /// Declared view name → index into `tables`. Presence here is what
    /// distinguishes "declared view without rules" from "unknown view".
    view_index: HashMap<String, usize>,
    tables: Vec<DispatchTable>,
    /// Dispatch for OIDs whose view the blueprint does not declare: the
    /// `default` view's rules only.
    fallback: DispatchTable,
    /// Index of the `default` view in `tables`, if declared.
    default_index: Option<usize>,
    /// Compiled link templates, in declaration order.
    link_templates: Vec<CompiledLinkTemplate>,
    /// Union of every link template's PROPAGATE set: an event outside this
    /// set can never cross a template-instantiated link.
    propagate_union: SymSet,
    /// Process-unique id of this compilation, used by the engine's per-view
    /// dispatch cache to detect blueprint swaps (`reinit`) without holding a
    /// reference.
    generation: u64,
}

impl CompiledBlueprint {
    /// Compiles a parsed blueprint.
    pub fn compile(bp: &Blueprint) -> Self {
        let mut symbols = SymbolTable::new();

        // Intern the full event/view/property universe first so symbol
        // handles are dense and stable regardless of rule order.
        for view in &bp.views {
            symbols.intern(&view.name);
            for rule in &view.rules {
                symbols.intern(&rule.event);
            }
            for link in &view.links {
                for event in &link.propagates {
                    symbols.intern(event);
                }
            }
            for prop in &view.properties {
                symbols.intern(&prop.name);
            }
            for let_def in &view.lets {
                symbols.intern(&let_def.name);
            }
        }

        let default = bp.default_view();

        // The fallback table: `default` rules and lets only, for OIDs of
        // undeclared views ("applies to all the views").
        let mut fallback = DispatchTable::default();
        if let Some(default) = default {
            for rule in &default.rules {
                let sym = symbols.intern(&rule.event);
                fallback
                    .dispatch
                    .entry(sym)
                    .or_default()
                    .absorb(&rule.actions, &mut symbols);
            }
            fallback
                .lets
                .extend(default.lets.iter().map(|l| CompiledLet {
                    name: l.name.clone(),
                    expr: l.expr.clone(),
                }));
        }

        let mut view_index = HashMap::with_capacity(bp.views.len());
        let mut tables = Vec::with_capacity(bp.views.len());
        let mut default_index = None;
        let mut link_templates = Vec::new();
        let mut propagate_union = SymSet::new();

        for view in &bp.views {
            let is_default = view.name == "default";
            // Merged table: default's rules first (unless this *is* the
            // default view), then the view's own — the order `deliver`
            // executes them in.
            let mut table = if is_default {
                DispatchTable::default()
            } else {
                fallback.clone()
            };
            for rule in &view.rules {
                let sym = symbols.intern(&rule.event);
                table
                    .dispatch
                    .entry(sym)
                    .or_default()
                    .absorb(&rule.actions, &mut symbols);
            }
            table.lets.extend(view.lets.iter().map(|l| CompiledLet {
                name: l.name.clone(),
                expr: l.expr.clone(),
            }));

            for link in &view.links {
                let propagates: SymSet = link
                    .propagates
                    .iter()
                    .map(|event| symbols.intern(event))
                    .collect();
                for event in &link.propagates {
                    propagate_union.insert(symbols.intern(event));
                }
                link_templates.push(CompiledLinkTemplate {
                    view: view.name.clone(),
                    propagates,
                });
            }

            let index = tables.len();
            if is_default {
                default_index = Some(index);
            }
            // First declaration wins on duplicate names, matching
            // `Blueprint::view`'s linear-scan semantics (the validator
            // rejects duplicates anyway).
            view_index.entry(view.name.clone()).or_insert(index);
            tables.push(table);
        }

        let arc_names = symbols.iter().map(|(_, name)| Arc::from(name)).collect();
        static GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        CompiledBlueprint {
            symbols,
            arc_names,
            view_index,
            tables,
            fallback,
            default_index,
            link_templates,
            propagate_union,
            generation: GENERATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Process-unique id of this compilation — changes on every
    /// [`CompiledBlueprint::compile`] call, letting caches keyed on it
    /// detect a blueprint swap.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The `tables` index of a declared view's dispatch table, or `None`
    /// for undeclared views (which dispatch through the fallback table).
    /// The cacheable form of [`CompiledBlueprint::table_for_view`].
    pub fn table_index_for_view(&self, view: &str) -> Option<usize> {
        self.view_index.get(view).copied()
    }

    /// The dispatch table at a [`CompiledBlueprint::table_index_for_view`]
    /// index; `None` selects the fallback table.
    pub fn table_at(&self, index: Option<usize>) -> &DispatchTable {
        match index {
            Some(i) => &self.tables[i],
            None => &self.fallback,
        }
    }

    /// The interned name universe (events, views, properties).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The symbol of an already-interned name. Never allocates.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.symbols.lookup(name)
    }

    /// The shared name behind a symbol; cloning the `Arc` is how wave items
    /// carry event names without string copies.
    pub fn name_arc(&self, sym: Sym) -> Option<&Arc<str>> {
        self.arc_names.get(sym.index())
    }

    /// Whether the blueprint declares a view of this name.
    pub fn declares_view(&self, view: &str) -> bool {
        self.view_index.contains_key(view)
    }

    /// The dispatch table for OIDs of `view`: the view's merged table if
    /// declared, the `default`-only fallback otherwise.
    pub fn table_for_view(&self, view: &str) -> &DispatchTable {
        self.table_at(self.table_index_for_view(view))
    }

    /// Whether a `default` view is declared.
    pub fn has_default_view(&self) -> bool {
        self.default_index.is_some()
    }

    /// Whether any link template's PROPAGATE set forwards `event` — the
    /// cheap pre-check before walking a node's links. Events outside the
    /// union can still cross links added through the raw
    /// [`MetaDb`](damocles_meta::MetaDb) API, so this is advisory for
    /// template-instantiated graphs; the engine keeps the exact per-link
    /// check.
    pub fn may_propagate(&self, event: Sym) -> bool {
        self.propagate_union.contains(event)
    }

    /// Compiled link templates, in declaration order.
    pub fn link_templates(&self) -> &[CompiledLinkTemplate] {
        &self.link_templates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;

    fn edtc_like() -> Blueprint {
        parse(
            r#"blueprint t
            view default
                property uptodate default true
                when ckin do uptodate = true; post outofdate down done
                when outofdate do uptodate = false done
            endview
            view HDL_model
                when hdl_sim do sim_result = $arg done
            endview
            view schematic
                link_from HDL_model move propagates outofdate type derived
                use_link move propagates outofdate
                let state = ($uptodate == true)
            endview
            endblueprint"#,
        )
        .unwrap()
    }

    #[test]
    fn merged_dispatch_prepends_default_rules() {
        let bp = edtc_like();
        let compiled = CompiledBlueprint::compile(&bp);
        let ckin = compiled.lookup("ckin").unwrap();
        let hdl_sim = compiled.lookup("hdl_sim").unwrap();

        // HDL_model answers both its own event and the default's.
        let table = compiled.table_for_view("HDL_model");
        assert!(table.dispatch(ckin).is_some());
        let d = table.dispatch(hdl_sim).unwrap();
        assert_eq!(d.assigns.len(), 1);
        assert_eq!(d.assigns[0].prop, "sim_result");

        // The default view's own table holds its rules exactly once.
        let d = compiled.table_for_view("default").dispatch(ckin).unwrap();
        assert_eq!(d.assigns.len(), 1);
        assert_eq!(d.posts.len(), 1);
    }

    #[test]
    fn unknown_views_fall_back_to_default_rules() {
        let bp = edtc_like();
        let compiled = CompiledBlueprint::compile(&bp);
        assert!(!compiled.declares_view("mystery"));
        let ckin = compiled.lookup("ckin").unwrap();
        let table = compiled.table_for_view("mystery");
        assert!(table.dispatch(ckin).is_some());
        assert_eq!(table.rule_event_count(), 2);
    }

    #[test]
    fn lets_merge_in_evaluation_order() {
        let bp = parse(
            r#"blueprint t
            view default
                let base = (1 == 1)
            endview
            view layout
                let refined = ($base == true)
            endview
            endblueprint"#,
        )
        .unwrap();
        let compiled = CompiledBlueprint::compile(&bp);
        let names: Vec<&str> = compiled
            .table_for_view("layout")
            .lets()
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(names, vec!["base", "refined"]);
        // The default view itself evaluates its own lets once.
        assert_eq!(compiled.table_for_view("default").lets().len(), 1);
    }

    #[test]
    fn propagate_union_covers_template_sets_only() {
        let bp = edtc_like();
        let compiled = CompiledBlueprint::compile(&bp);
        let outofdate = compiled.lookup("outofdate").unwrap();
        let ckin = compiled.lookup("ckin").unwrap();
        assert!(compiled.may_propagate(outofdate));
        assert!(!compiled.may_propagate(ckin));
        assert_eq!(compiled.link_templates().len(), 2);
        assert!(compiled.link_templates()[0].propagates.contains(outofdate));
    }

    #[test]
    fn posts_are_interned() {
        let bp = edtc_like();
        let compiled = CompiledBlueprint::compile(&bp);
        let ckin = compiled.lookup("ckin").unwrap();
        let outofdate = compiled.lookup("outofdate").unwrap();
        let d = compiled.table_for_view("schematic").dispatch(ckin).unwrap();
        assert_eq!(d.posts[0].event, outofdate);
        assert_eq!(d.posts[0].direction, Direction::Down);
    }
}

//! Per-wave execution tracing: the step-by-step record of *how* the
//! engine transformed the design state, alongside the audit log's *what*.
//!
//! An [`AuditLog`](crate::engine::audit::AuditLog) answers "how many
//! deliveries/writes happened"; a [`TraceLog`] answers "in what order, on
//! which object, fired by which link, on which worker lane" — the record a
//! time-travel debugger replays next to a journal cursor. Each processed
//! event contributes a bracketed run of [`TraceRecord`]s:
//!
//! ```text
//! begin ckin cpu,HDL_model,2 yves 7 - -
//! deliver cpu,HDL_model,2 ckin HDL_model
//! write cpu,HDL_model,2 uptodate b:true
//! fire cpu,HDL_model,2 cpu,schematic,1 outofdate
//! deliver cpu,schematic,1 outofdate schematic
//! write cpu,schematic,1 uptodate b:false
//! invoke netlister cpu,schematic,1 outofdate
//! end 2
//! ```
//!
//! The discipline mirrors the audit log exactly:
//!
//! * **Zero cost when off.** Retention is off by default; every hot-path
//!   hook is guarded by [`TraceLog::enabled`], so a disabled trace costs
//!   one branch per potential record and allocates nothing.
//! * **Deterministic sharded merge.** Worker lanes trace into per-event
//!   buffers ([`TraceLog::buffer`]) that the sequential epilogue absorbs
//!   in batch order ([`TraceLog::absorb`]) — a sharded drain yields the
//!   same record *content* as a sequential one, with the lane and shard
//!   ids filled in on each event's `begin` record.
//!
//! Records use the protocol's word codec (`PROTOCOL.md` §1), so a trace
//! streams through [`Response::Trace`](crate::engine::api::Response) and
//! lands in fixture files byte-identically.

use damocles_meta::persist::{decode_value, encode_value};
use damocles_meta::{Oid, Value, WordCursor};

use crate::engine::api::{dec_str, enc_str};

/// One step of a traced wave, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A queued event began executing.
    Begin {
        /// The event name.
        event: String,
        /// The anchor OID the event was addressed to.
        target: Oid,
        /// The posting user or wrapper.
        user: String,
        /// The engine clock stamped on this wave.
        clock: u64,
        /// Worker lane that ran the wave (`None` on the sequential path).
        lane: Option<u64>,
        /// Shard group of the anchor (`None` on the sequential path).
        shard: Option<u64>,
    },
    /// A dispatch table fired: `oid` (of view `view`) executed its rules
    /// for `event`.
    Deliver {
        /// The delivered-to object.
        oid: Oid,
        /// The event delivered.
        event: String,
        /// The object's view type.
        view: String,
    },
    /// A property was written (rule assignment or continuous `let`).
    Write {
        /// The written object.
        oid: Oid,
        /// The property name.
        prop: String,
        /// The value written.
        value: Value,
    },
    /// A link propagated the event across `from -> to`.
    Fire {
        /// The link's source end.
        from: Oid,
        /// The link's destination end.
        to: Oid,
        /// The event carried across.
        event: String,
    },
    /// A tool invocation was rendered for dispatch.
    Invoke {
        /// The script (tool) name.
        script: String,
        /// The OID whose rule rendered it.
        origin: Oid,
        /// The triggering event.
        event: String,
    },
    /// The wave for one queued event finished.
    End {
        /// OIDs that executed rules during this wave.
        delivered: u64,
    },
    /// A detached tool invocation reached a terminal state at harvest
    /// (recorded by the server, not the wave engine — retry attempts are
    /// invisible inside a wave).
    Settle {
        /// The script (tool) name.
        script: String,
        /// Attempts consumed (≥ 1).
        attempts: u64,
        /// Whether the invocation completed (`false` = retry budget
        /// exhausted).
        ok: bool,
    },
}

fn enc_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |n| format!("+{n}"))
}

impl TraceRecord {
    /// Renders the record's canonical single-line form (no newline).
    pub fn encode(&self) -> String {
        match self {
            TraceRecord::Begin {
                event,
                target,
                user,
                clock,
                lane,
                shard,
            } => format!(
                "begin {} {} {} {clock} {} {}",
                enc_str(event),
                enc_str(&target.to_string()),
                enc_str(user),
                enc_opt_u64(*lane),
                enc_opt_u64(*shard)
            ),
            TraceRecord::Deliver { oid, event, view } => format!(
                "deliver {} {} {}",
                enc_str(&oid.to_string()),
                enc_str(event),
                enc_str(view)
            ),
            TraceRecord::Write { oid, prop, value } => format!(
                "write {} {} {}",
                enc_str(&oid.to_string()),
                enc_str(prop),
                encode_value(value)
            ),
            TraceRecord::Fire { from, to, event } => format!(
                "fire {} {} {}",
                enc_str(&from.to_string()),
                enc_str(&to.to_string()),
                enc_str(event)
            ),
            TraceRecord::Invoke {
                script,
                origin,
                event,
            } => format!(
                "invoke {} {} {}",
                enc_str(script),
                enc_str(&origin.to_string()),
                enc_str(event)
            ),
            TraceRecord::End { delivered } => format!("end {delivered}"),
            TraceRecord::Settle {
                script,
                attempts,
                ok,
            } => format!("settle {} {attempts} {}", enc_str(script), u8::from(*ok)),
        }
    }

    /// Parses the canonical single-line form ([`TraceRecord::encode`] is
    /// its inverse, byte-identically).
    ///
    /// # Errors
    ///
    /// A human-readable reason when the line is not a trace record.
    pub fn decode(line: &str) -> Result<TraceRecord, String> {
        let mut words = WordCursor::new(line);
        let mut next = |what: &str| -> Result<String, String> {
            words
                .next_word()
                .map(|(_, w)| w.to_string())
                .ok_or_else(|| format!("missing {what}"))
        };
        let string = |w: &str| dec_str(w);
        let oid = |w: &str| -> Result<Oid, String> {
            dec_str(w)?.parse::<Oid>().map_err(|e| e.short_reason())
        };
        let num = |w: &str| -> Result<u64, String> {
            w.parse::<u64>()
                .map_err(|_| format!("`{w}` is not a number"))
        };
        let opt_num = |w: &str| -> Result<Option<u64>, String> {
            match w.strip_prefix('+') {
                Some(n) => num(n).map(Some),
                None if w == "-" => Ok(None),
                None => Err(format!("expected `-` or `+<n>`, found `{w}`")),
            }
        };
        let kind = next("a trace record kind")?;
        let rec = match kind.as_str() {
            "begin" => TraceRecord::Begin {
                event: string(&next("an event")?)?,
                target: oid(&next("a target OID")?)?,
                user: string(&next("a user")?)?,
                clock: num(&next("a clock")?)?,
                lane: opt_num(&next("a lane")?)?,
                shard: opt_num(&next("a shard")?)?,
            },
            "deliver" => TraceRecord::Deliver {
                oid: oid(&next("an OID")?)?,
                event: string(&next("an event")?)?,
                view: string(&next("a view")?)?,
            },
            "write" => TraceRecord::Write {
                oid: oid(&next("an OID")?)?,
                prop: string(&next("a property")?)?,
                value: decode_value(&next("a value")?)?,
            },
            "fire" => TraceRecord::Fire {
                from: oid(&next("a source OID")?)?,
                to: oid(&next("a destination OID")?)?,
                event: string(&next("an event")?)?,
            },
            "invoke" => TraceRecord::Invoke {
                script: string(&next("a script")?)?,
                origin: oid(&next("an origin OID")?)?,
                event: string(&next("an event")?)?,
            },
            "end" => TraceRecord::End {
                delivered: num(&next("a delivery count")?)?,
            },
            "settle" => TraceRecord::Settle {
                script: string(&next("a script")?)?,
                attempts: num(&next("an attempt count")?)?,
                ok: match next("an ok flag (0/1)")?.as_str() {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("`{other}` is not 0/1")),
                },
            },
            other => return Err(format!("unknown trace record kind `{other}`")),
        };
        if let Some((_, extra)) = words.next_word() {
            return Err(format!("trailing `{extra}` after a complete record"));
        }
        Ok(rec)
    }
}

/// The execution trace log: an ordered capture of [`TraceRecord`]s with
/// the audit log's retention discipline — off by default, one branch per
/// potential record when off, per-worker buffering with a deterministic
/// merge when sharded.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    retain: bool,
}

impl TraceLog {
    /// A disabled trace log (the default): every hook is a cheap branch,
    /// nothing is captured.
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// A retaining trace log: every step is captured in order.
    pub fn retaining() -> Self {
        TraceLog {
            records: Vec::new(),
            retain: true,
        }
    }

    /// Whether records are being captured. Hot-path hooks must check this
    /// before constructing a record — the zero-cost-when-off contract.
    pub fn enabled(&self) -> bool {
        self.retain
    }

    /// Turns retention on or off. Turning it off drops captured records.
    pub fn set_retaining(&mut self, on: bool) {
        self.retain = on;
        if !on {
            self.records = Vec::new();
        }
    }

    /// Captures one record (no-op when disabled).
    pub fn push(&mut self, record: TraceRecord) {
        if self.retain {
            self.records.push(record);
        }
    }

    /// The captured records, in execution order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Drains the captured records, leaving retention mode unchanged —
    /// the `trace get` semantics (each get returns the steps since the
    /// last, bounding the server's memory).
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }

    /// Captured record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// An empty log with this log's retention mode — what each worker
    /// lane traces one event into ([`TraceLog::absorb`] merges them back
    /// deterministically).
    pub fn buffer(&self) -> TraceLog {
        TraceLog {
            records: Vec::new(),
            retain: self.retain,
        }
    }

    /// Appends a per-event buffer's records. The sharded epilogue calls
    /// this in batch order, so the merged trace is ordered by event, not
    /// by worker completion time.
    pub fn absorb(&mut self, buffer: TraceLog) {
        if self.retain {
            self.records.extend(buffer.records);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Begin {
                event: "ckin".into(),
                target: Oid::new("cpu", "HDL_model", 2),
                user: "yves lin".into(),
                clock: 7,
                lane: None,
                shard: None,
            },
            TraceRecord::Begin {
                event: "outofdate".into(),
                target: Oid::new("cpu", "schematic", 1),
                user: String::new(),
                clock: 8,
                lane: Some(2),
                shard: Some(5),
            },
            TraceRecord::Deliver {
                oid: Oid::new("cpu", "schematic", 1),
                event: "outofdate".into(),
                view: "schematic".into(),
            },
            TraceRecord::Write {
                oid: Oid::new("cpu", "schematic", 1),
                prop: "uptodate".into(),
                value: Value::Bool(false),
            },
            TraceRecord::Write {
                oid: Oid::new("cpu", "schematic", 1),
                prop: "note".into(),
                value: Value::Str("4 errors\nbad".into()),
            },
            TraceRecord::Fire {
                from: Oid::new("cpu", "HDL_model", 2),
                to: Oid::new("cpu", "schematic", 1),
                event: "outofdate".into(),
            },
            TraceRecord::Invoke {
                script: "netlister".into(),
                origin: Oid::new("cpu", "schematic", 1),
                event: "outofdate".into(),
            },
            TraceRecord::End { delivered: 2 },
            TraceRecord::Settle {
                script: "netlister".into(),
                attempts: 3,
                ok: true,
            },
            TraceRecord::Settle {
                script: "lvs".into(),
                attempts: 6,
                ok: false,
            },
        ]
    }

    #[test]
    fn records_roundtrip_byte_identically() {
        for rec in samples() {
            let line = rec.encode();
            let back = TraceRecord::decode(&line).unwrap_or_else(|e| panic!("`{line}`: {e}"));
            assert_eq!(back, rec, "`{line}`");
            assert_eq!(back.encode(), line, "canonical re-encode of `{line}`");
        }
    }

    #[test]
    fn decode_rejects_damage() {
        assert!(TraceRecord::decode("frobnicate 1").is_err());
        assert!(TraceRecord::decode("end").is_err());
        assert!(TraceRecord::decode("end 3 extra").is_err());
        assert!(TraceRecord::decode("settle tool 2 yes").is_err());
        assert!(TraceRecord::decode("begin ev cpu,v,1 u 4 * -").is_err());
    }

    #[test]
    fn disabled_log_captures_nothing() {
        let mut log = TraceLog::disabled();
        assert!(!log.enabled());
        log.push(TraceRecord::End { delivered: 1 });
        assert!(log.is_empty());
    }

    #[test]
    fn retaining_log_orders_and_drains() {
        let mut log = TraceLog::retaining();
        for rec in samples() {
            log.push(rec);
        }
        assert_eq!(log.len(), samples().len());
        assert_eq!(log.records()[0], samples()[0]);
        let drained = log.take_records();
        assert_eq!(drained.len(), samples().len());
        assert!(log.is_empty());
        assert!(log.enabled(), "draining keeps retention on");
    }

    #[test]
    fn buffers_absorb_in_call_order() {
        let mut log = TraceLog::retaining();
        let mut a = log.buffer();
        let mut b = log.buffer();
        assert!(a.enabled() && b.enabled());
        b.push(TraceRecord::End { delivered: 2 });
        a.push(TraceRecord::End { delivered: 1 });
        log.absorb(a);
        log.absorb(b);
        assert_eq!(
            log.records(),
            &[
                TraceRecord::End { delivered: 1 },
                TraceRecord::End { delivered: 2 }
            ]
        );
    }

    #[test]
    fn disabling_drops_records() {
        let mut log = TraceLog::retaining();
        log.push(TraceRecord::End { delivered: 1 });
        log.set_retaining(false);
        assert!(log.is_empty() && !log.enabled());
        let buf = log.buffer();
        assert!(!buf.enabled(), "buffers inherit the disabled mode");
    }
}

//! The async invocation pool: bounded workers, retry/backoff/timeout, and
//! ordered result harvest.
//!
//! The paper's §3.3 tool loop runs wrapper programs *outside* the tracking
//! system; this module is the engine-side owner of those runs. The command
//! loop prepares a [`DetachedJob`] per invocation (capturing everything the
//! tool needs by value), submits it here, and keeps serving requests; a
//! bounded pool of worker threads runs the jobs, retries retryable
//! failures under a per-script [`RetryPolicy`] with exponential backoff,
//! and parks terminal outcomes for the server to harvest.
//!
//! # The ordering contract
//!
//! Results are harvested in **submission order**, not completion order:
//! [`Invoker::harvest`] releases only the contiguous prefix of finished
//! jobs. Tool runs overlap freely across worker threads, but their result
//! messages re-enter the event queue exactly as if each tool had run
//! synchronously at its dispatch point — so the final image is independent
//! of scheduling and fault timing. This closes the PR 5 caveat where
//! sharded drains dispatched invocations post-batch: dispatch order is now
//! the *only* order the engine ever observes.
//!
//! # Lifecycle
//!
//! ```text
//! submit → pending ── worker picks up ──→ running ──Ok──→ finished(Completed)
//!             ▲                             │
//!             └── backoff elapsed ──────────┤Err / attempt timeout
//!                                           ▼
//!                        retrying (delay = base·multiplierⁿ)
//!                                           │ attempts exhausted
//!                                           ▼
//!                                  finished(Failed)
//! ```
//!
//! Timeouts are cooperative: a worker cannot kill a running closure, so an
//! attempt whose wall-clock run time exceeds [`RetryPolicy::timeout`] has
//! its result discarded and counted as a failed attempt.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use damocles_meta::EventMessage;

use crate::engine::exec::DetachedJob;

/// Retry discipline for one script's detached runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = fail on first error).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff growth factor: delay before retry *n* is
    /// `base_delay · multiplier^(n-1)`.
    pub multiplier: u32,
    /// Per-attempt wall-clock budget (cooperative; see module docs).
    pub timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            multiplier: 2,
            timeout: Duration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep before retry `n` (1-based).
    pub fn delay_before_retry(&self, n: u32) -> Duration {
        let factor = self.multiplier.max(1).saturating_pow(n.saturating_sub(1));
        self.base_delay.saturating_mul(factor)
    }
}

/// How a detached invocation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeOutcome {
    /// The tool ran (possibly after retries); these are its messages.
    Completed {
        /// Result event messages to feed back into the queue.
        messages: Vec<EventMessage>,
        /// Attempts consumed (≥ 1).
        attempts: u32,
    },
    /// Every attempt failed; the retry budget is exhausted.
    Failed {
        /// Attempts consumed (≥ 1).
        attempts: u32,
        /// The last failure reason.
        reason: String,
    },
}

/// A terminal invocation released by [`Invoker::harvest`].
#[derive(Debug)]
pub struct FinishedInvocation {
    /// The invocation id it was submitted under.
    pub id: u64,
    /// Script (tool) name.
    pub script: String,
    /// The OID string of the rule site that requested the run.
    pub origin: String,
    /// The triggering event name.
    pub event: String,
    /// How it ended.
    pub outcome: InvokeOutcome,
}

/// Live pool counters, for `ServerStat`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvokeStats {
    /// Submitted, first attempt not yet started.
    pub pending: u64,
    /// Currently executing on a worker.
    pub running: u64,
    /// Failed at least once and waiting (or queued) to retry.
    pub retrying: u64,
    /// Terminal failures since the pool was created.
    pub failed: u64,
    /// Terminal completions since the pool was created.
    pub completed: u64,
    /// Failed attempts pushed back for a retry since the pool was
    /// created (cumulative, unlike `retrying`).
    pub retried: u64,
    /// Attempts that exceeded their wall-clock budget since the pool was
    /// created.
    pub timed_out: u64,
}

/// Callback armed via [`Invoker::set_wake`], fired (coalesced) whenever a
/// harvestable result appears while the command loop might be parked.
pub type WakeFn = Box<dyn Fn() + Send + Sync>;

struct JobEntry {
    job: DetachedJob,
    script: String,
    origin: String,
    event: String,
    policy: RetryPolicy,
    /// Zero-based attempt about to run (== failures so far).
    attempt: u32,
}

#[derive(Default)]
struct PoolState {
    /// Ids ready to run now, FIFO.
    ready: VecDeque<u64>,
    /// Ids in backoff: runnable once their instant passes.
    delayed: Vec<(Instant, u64)>,
    /// Job bodies for every non-terminal, non-running id.
    jobs: HashMap<u64, JobEntry>,
    /// Terminal outcomes not yet released (keyed by id for prefix harvest).
    finished: BTreeMap<u64, FinishedInvocation>,
    /// Submission order; the harvest releases its prefix.
    order: VecDeque<u64>,
    running: u64,
    failed_total: u64,
    completed_total: u64,
    retried_total: u64,
    timed_out_total: u64,
    /// A wake has been fired and not yet consumed by a harvest.
    wake_pending: bool,
    shutdown: bool,
}

impl PoolState {
    fn harvestable(&self) -> bool {
        self.order
            .front()
            .is_some_and(|id| self.finished.contains_key(id))
    }

    /// Pops a runnable id, if any (FIFO ready queue first, then any
    /// expired backoff entry).
    fn pop_runnable(&mut self, now: Instant) -> Option<u64> {
        if let Some(id) = self.ready.pop_front() {
            return Some(id);
        }
        let pos = self.delayed.iter().position(|(at, _)| *at <= now)?;
        Some(self.delayed.remove(pos).1)
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.delayed.iter().map(|(at, _)| *at).min()
    }
}

struct Shared {
    state: Mutex<PoolState>,
    cv: Condvar,
    wake: Mutex<Option<WakeFn>>,
}

impl Shared {
    /// Fires the wake callback (once per harvest window) if a result is
    /// ready for release. Called with `state` already updated.
    fn maybe_wake(&self, state: &mut PoolState) {
        if state.harvestable() && !state.wake_pending {
            state.wake_pending = true;
            if let Some(wake) = self.wake.lock().expect("invoker wake poisoned").as_ref() {
                wake();
            }
        }
    }
}

/// The bounded worker pool running detached tool invocations.
///
/// Owned by the project server; dropped pools wake and join their workers
/// (abandoning any un-run jobs — on a durable server those are journaled
/// as in-flight and re-dispatched on recovery).
pub struct Invoker {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    cap: usize,
    default_policy: RetryPolicy,
    policies: HashMap<String, RetryPolicy>,
}

impl std::fmt::Debug for Invoker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Invoker")
            .field("workers", &self.workers.len())
            .field("cap", &self.cap)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for Invoker {
    fn default() -> Self {
        Invoker::new(DEFAULT_WORKERS)
    }
}

/// Default worker-pool bound.
pub const DEFAULT_WORKERS: usize = 4;

impl Invoker {
    /// Creates a pool bounded at `cap` workers (≥ 1). Threads spawn
    /// lazily, one per submitted job up to the bound.
    pub fn new(cap: usize) -> Self {
        Invoker {
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState::default()),
                cv: Condvar::new(),
                wake: Mutex::new(None),
            }),
            workers: Vec::new(),
            cap: cap.max(1),
            default_policy: RetryPolicy::default(),
            policies: HashMap::new(),
        }
    }

    /// Sets the retry policy for `script`, or the pool default when
    /// `script` is `None`. Applies to subsequent submissions.
    pub fn set_policy(&mut self, script: Option<&str>, policy: RetryPolicy) {
        match script {
            Some(s) => {
                self.policies.insert(s.to_string(), policy);
            }
            None => self.default_policy = policy,
        }
    }

    /// The policy a submission of `script` would run under.
    pub fn policy_for(&self, script: &str) -> RetryPolicy {
        self.policies
            .get(script)
            .copied()
            .unwrap_or(self.default_policy)
    }

    /// Every configured per-script policy plus the default, for servers
    /// that re-install policies across re-initialization.
    pub fn policies(&self) -> (RetryPolicy, Vec<(String, RetryPolicy)>) {
        (
            self.default_policy,
            self.policies.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        )
    }

    /// Arms (or clears) the wake callback fired when a harvestable result
    /// appears. Coalesced: at most one wake per harvest.
    pub fn set_wake(&self, wake: Option<WakeFn>) {
        *self.shared.wake.lock().expect("invoker wake poisoned") = wake;
    }

    /// Removes and returns the wake callback — for owners that replace
    /// the pool wholesale and carry the callback over to its successor.
    pub fn take_wake(&self) -> Option<WakeFn> {
        self.shared
            .wake
            .lock()
            .expect("invoker wake poisoned")
            .take()
    }

    /// Submits a detached job under invocation id `id`. Ids must be
    /// unique and submitted in dispatch order — the harvest releases
    /// results in exactly this order.
    pub fn submit(&mut self, id: u64, script: &str, origin: &str, event: &str, job: DetachedJob) {
        let entry = JobEntry {
            job,
            script: script.to_string(),
            origin: origin.to_string(),
            event: event.to_string(),
            policy: self.policy_for(script),
            attempt: 0,
        };
        {
            let mut state = self.shared.state.lock().expect("invoker pool poisoned");
            state.jobs.insert(id, entry);
            state.order.push_back(id);
            state.ready.push_back(id);
            self.shared.cv.notify_one();
        }
        if self.workers.len() < self.cap {
            let shared = Arc::clone(&self.shared);
            self.workers
                .push(std::thread::spawn(move || worker_loop(&shared)));
        }
    }

    /// Terminal results ready for release: the contiguous submission-order
    /// prefix that has finished. Later-finished jobs wait for earlier ones
    /// so feedback order equals dispatch order.
    pub fn harvest(&self) -> Vec<FinishedInvocation> {
        let mut state = self.shared.state.lock().expect("invoker pool poisoned");
        let mut out = Vec::new();
        while let Some(&front) = state.order.front() {
            match state.finished.remove(&front) {
                Some(fin) => {
                    state.order.pop_front();
                    out.push(fin);
                }
                None => break,
            }
        }
        state.wake_pending = false;
        out
    }

    /// Submitted invocations not yet harvested (running, waiting, or
    /// finished-but-held for ordering).
    pub fn in_flight(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("invoker pool poisoned")
            .order
            .len()
    }

    /// Blocks until a harvestable result exists (true) or `timeout`
    /// passes (false). Used by the blocking drain; the command loop uses
    /// the wake callback instead.
    pub fn wait_harvest(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("invoker pool poisoned");
        loop {
            if state.harvestable() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .shared
                .cv
                .wait_timeout(state, deadline - now)
                .expect("invoker pool poisoned");
            state = next;
        }
    }

    /// Live pool counters.
    pub fn stats(&self) -> InvokeStats {
        let state = self.shared.state.lock().expect("invoker pool poisoned");
        let mut pending = 0;
        let mut retrying = 0;
        for id in state
            .ready
            .iter()
            .chain(state.delayed.iter().map(|(_, id)| id))
        {
            match state.jobs.get(id).map(|j| j.attempt) {
                Some(0) => pending += 1,
                Some(_) => retrying += 1,
                None => {}
            }
        }
        InvokeStats {
            pending,
            running: state.running,
            retrying,
            failed: state.failed_total,
            completed: state.completed_total,
            retried: state.retried_total,
            timed_out: state.timed_out_total,
        }
    }
}

impl Drop for Invoker {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("invoker pool poisoned");
            state.shutdown = true;
            self.shared.cv.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("invoker pool poisoned");
    loop {
        if state.shutdown {
            return;
        }
        let Some(id) = state.pop_runnable(Instant::now()) else {
            let wait = state
                .next_deadline()
                .map(|at| at.saturating_duration_since(Instant::now()));
            state = match wait {
                Some(d) => {
                    shared
                        .cv
                        .wait_timeout(state, d)
                        .expect("invoker pool poisoned")
                        .0
                }
                None => shared.cv.wait(state).expect("invoker pool poisoned"),
            };
            continue;
        };
        let mut entry = state.jobs.remove(&id).expect("runnable id has a job entry");
        state.running += 1;
        drop(state);

        let attempt = entry.attempt;
        let started = Instant::now();
        let mut result = (entry.job)(attempt);
        let mut timed_out = false;
        if result.is_ok() && started.elapsed() > entry.policy.timeout {
            // Cooperative timeout: the run outlived its budget, so its
            // result is discarded and the attempt counts as failed.
            timed_out = true;
            result = Err(format!(
                "attempt {} timed out (budget {:?})",
                attempt + 1,
                entry.policy.timeout
            ));
        }

        state = shared.state.lock().expect("invoker pool poisoned");
        state.running -= 1;
        if timed_out {
            state.timed_out_total += 1;
        }
        match result {
            Ok(messages) => {
                state.completed_total += 1;
                state.finished.insert(
                    id,
                    FinishedInvocation {
                        id,
                        script: std::mem::take(&mut entry.script),
                        origin: std::mem::take(&mut entry.origin),
                        event: std::mem::take(&mut entry.event),
                        outcome: InvokeOutcome::Completed {
                            messages,
                            attempts: attempt + 1,
                        },
                    },
                );
                shared.maybe_wake(&mut state);
                shared.cv.notify_all();
            }
            Err(reason) if attempt >= entry.policy.max_retries => {
                state.failed_total += 1;
                state.finished.insert(
                    id,
                    FinishedInvocation {
                        id,
                        script: std::mem::take(&mut entry.script),
                        origin: std::mem::take(&mut entry.origin),
                        event: std::mem::take(&mut entry.event),
                        outcome: InvokeOutcome::Failed {
                            attempts: attempt + 1,
                            reason,
                        },
                    },
                );
                shared.maybe_wake(&mut state);
                shared.cv.notify_all();
            }
            Err(_) => {
                entry.attempt += 1;
                state.retried_total += 1;
                let delay = entry.policy.delay_before_retry(entry.attempt);
                state.delayed.push((Instant::now() + delay, id));
                state.jobs.insert(id, entry);
                shared.cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_delay: Duration::from_millis(1),
            multiplier: 2,
            timeout: Duration::from_secs(5),
        }
    }

    fn drain(invoker: &Invoker, expect: usize) -> Vec<FinishedInvocation> {
        let mut out = Vec::new();
        while out.len() < expect {
            assert!(
                invoker.wait_harvest(Duration::from_secs(10)),
                "pool went quiet with {} of {expect} results",
                out.len()
            );
            out.extend(invoker.harvest());
        }
        out
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let mut invoker = Invoker::new(4);
        invoker.set_policy(None, fast_policy(0));
        for id in 0..8u64 {
            // Earlier jobs sleep longer: completion order is reversed.
            invoker.submit(
                id,
                "tool",
                "o",
                "ev",
                Box::new(move |_| {
                    std::thread::sleep(Duration::from_millis(8u64.saturating_sub(id)));
                    Ok(Vec::new())
                }),
            );
        }
        let finished = drain(&invoker, 8);
        let ids: Vec<u64> = finished.iter().map(|f| f.id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
        assert_eq!(invoker.in_flight(), 0);
    }

    #[test]
    fn retries_until_success_with_attempt_counts() {
        let mut invoker = Invoker::new(2);
        invoker.set_policy(Some("flaky"), fast_policy(5));
        invoker.submit(
            0,
            "flaky",
            "o",
            "ev",
            Box::new(|attempt| {
                if attempt < 3 {
                    Err(format!("boom {attempt}"))
                } else {
                    Ok(Vec::new())
                }
            }),
        );
        let finished = drain(&invoker, 1);
        assert!(matches!(
            finished[0].outcome,
            InvokeOutcome::Completed { attempts: 4, .. }
        ));
        // The cumulative fault counters survive the success.
        assert_eq!(invoker.stats().retried, 3);
        assert_eq!(invoker.stats().timed_out, 0);
    }

    #[test]
    fn exhausted_retries_fail_with_last_reason() {
        let mut invoker = Invoker::new(2);
        invoker.set_policy(None, fast_policy(2));
        invoker.submit(
            7,
            "doomed",
            "site",
            "ckin",
            Box::new(|a| Err(format!("err {a}"))),
        );
        let finished = drain(&invoker, 1);
        assert_eq!(finished[0].script, "doomed");
        assert_eq!(
            finished[0].outcome,
            InvokeOutcome::Failed {
                attempts: 3,
                reason: "err 2".into()
            }
        );
        assert_eq!(invoker.stats().failed, 1);
    }

    #[test]
    fn backoff_grows_geometrically() {
        let p = RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(10),
            multiplier: 3,
            timeout: Duration::from_secs(1),
        };
        assert_eq!(p.delay_before_retry(1), Duration::from_millis(10));
        assert_eq!(p.delay_before_retry(2), Duration::from_millis(30));
        assert_eq!(p.delay_before_retry(3), Duration::from_millis(90));
    }

    #[test]
    fn wake_fires_once_per_harvest_window() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut invoker = Invoker::new(2);
        invoker.set_policy(None, fast_policy(0));
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        invoker.set_wake(Some(Box::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        })));
        invoker.submit(0, "t", "o", "e", Box::new(|_| Ok(Vec::new())));
        invoker.submit(1, "t", "o", "e", Box::new(|_| Ok(Vec::new())));
        assert_eq!(drain(&invoker, 2).len(), 2);
        assert!(fired.load(Ordering::SeqCst) >= 1);
        // After the harvest the window re-arms.
        let before = fired.load(Ordering::SeqCst);
        invoker.submit(2, "t", "o", "e", Box::new(|_| Ok(Vec::new())));
        assert_eq!(drain(&invoker, 1).len(), 1);
        assert!(fired.load(Ordering::SeqCst) > before);
    }
}

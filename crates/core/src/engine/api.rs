//! The typed command protocol: every way of talking to a project server.
//!
//! The paper's wrapper programs drive DAMOCLES by emitting `postEvent`
//! lines "over the network" (§3.1). This module generalizes that single
//! wire line into a full command protocol: a serializable [`Request`] enum
//! covering every server operation, a typed [`Response`] enum carrying
//! structured results, and a structured [`ApiError`] mirroring the
//! [`EngineError`] taxonomy — no pre-formatted strings on the wire.
//!
//! Every client surface speaks this protocol:
//!
//! * the `Shell` parses a command line into a [`Request`] and renders the
//!   [`Response`] as text;
//! * the `damocles` binary drives the shell, so scripts and the REPL ride
//!   the same types;
//! * the `damocles_server` binary frames the text codec over TCP, one
//!   request line per response line, so external wrapper processes post
//!   events exactly as the paper describes;
//! * tests and future replicas replay request streams directly.
//!
//! # Text codec
//!
//! [`Request::encode`]/[`Request::decode`] (and the same pair on
//! [`Response`]) define a line-oriented canonical form reusing the
//! `persist` encodings (percent-escaped words, `b:`/`i:`/`s:` value tags,
//! hex payloads) — so a request round-trips over a socket or a file
//! byte-identically:
//!
//! ```text
//! checkin CPU HDL_model yves 6d6f64756c65
//! post simwrap hdl_sim up reg,verilog,4 logic%20sim%20passed
//! process
//! ```
//!
//! ```text
//! created CPU,HDL_model,1
//! ok
//! processed 2 3 1 0
//! ```
//!
//! Decoding failures are themselves structured: [`ApiError::Parse`] names
//! the byte offset, the offending token and the expected grammar element.

use std::fmt;

use damocles_meta::persist::{decode_hex, decode_value, encode_hex, encode_value};
use damocles_meta::{EventMessage, MetaError, Oid, Value};
use serde::{Deserialize, Serialize};

use crate::engine::error::EngineError;
use crate::engine::policy::PolicyViolation;
use crate::engine::server::ProcessReport;

// ---------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------

/// Identifies one client session at the command loop. Tagged onto every
/// queued request so the loop can serialize many concurrent clients onto
/// the single engine while keeping replies routable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Default checkpoint fold interval (ops) for `EnableJournal`/`Recover`
/// when a front-end lets the user omit it — shared by the shell and the
/// `damocles_server` binary so the two front doors fold identically.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1024;

/// One typed command to a project server — the union of every operation a
/// client (shell, wrapper program, replica, test harness) can ask for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Request {
    /// Load a blueprint from source text, creating the project server.
    Init {
        /// Blueprint source (the client reads the file; the server never
        /// touches client-side paths).
        source: String,
    },
    /// Replace the blueprint, keeping database/workspace/queue (§3.2).
    Reinit {
        /// New blueprint source.
        source: String,
    },
    /// Check design data in: next version OID, templates, `ckin` event.
    Checkin {
        /// Block name.
        block: String,
        /// View type.
        view: String,
        /// The designer checking in.
        user: String,
        /// Opaque design data.
        payload: Vec<u8>,
    },
    /// Reserve a `(block, view)` chain for a user.
    Checkout {
        /// Block name.
        block: String,
        /// View type.
        view: String,
        /// The designer checking out.
        user: String,
    },
    /// Create a bare OID (no payload, no `ckin` event).
    CreateObject {
        /// The triplet to create.
        oid: Oid,
    },
    /// Relate two OIDs, template-filling the link annotation.
    Connect {
        /// Source end.
        from: Oid,
        /// Destination end.
        to: Oid,
    },
    /// Queue a design-event message (§3.1). Under journaling the ack
    /// means *durably accepted*: the event is journaled as accepted work
    /// before the reply, and recovery re-enqueues accepted events whose
    /// processing never committed (at-least-once replay).
    Post {
        /// The event message.
        message: EventMessage,
        /// The posting user or wrapper.
        user: String,
    },
    /// Drain the event queue: every queued event executes and every
    /// already-finished detached tool invocation is absorbed. Detached
    /// invocations still running when the drain returns post their
    /// results back through later pumps ([`Request::PumpInvocations`],
    /// issued automatically by the command loop while idle) — the loop
    /// is never parked behind a slow tool.
    ProcessAll,
    /// Re-evaluate every continuous assignment (deferred `let`s).
    RefreshLets,
    /// Run a `qlang` query.
    Query {
        /// Query terms, e.g. `view=schematic stale.uptodate latest`.
        terms: String,
    },
    /// Properties of one OID.
    Show {
        /// The triplet to show.
        oid: Oid,
    },
    /// What still blocks `oid` from reaching a planned state.
    WorkLeft {
        /// The target OID.
        oid: Oid,
        /// The state property.
        prop: String,
    },
    /// Per-view aggregate of a state property.
    Summary {
        /// The state property.
        prop: String,
    },
    /// Pin the dependency closure of `root` as a named Configuration.
    Snapshot {
        /// Configuration name.
        name: String,
        /// Root OID of the closure.
        root: Oid,
    },
    /// List stored configurations.
    ListSnapshots,
    /// Forbid check-ins to a view.
    Freeze {
        /// The view to freeze.
        view: String,
    },
    /// Re-allow check-ins to a view.
    Thaw {
        /// The view to thaw.
        view: String,
    },
    /// Enable op-journal durability under a directory.
    EnableJournal {
        /// Durability directory (server-side path).
        dir: String,
        /// Checkpoint fold interval in ops.
        every: u64,
    },
    /// Fold the journal into a fresh snapshot now.
    Checkpoint,
    /// Restore the project from `snapshot + journal tail`.
    Recover {
        /// Durability directory (server-side path).
        dir: String,
        /// Checkpoint fold interval after recovery.
        every: u64,
    },
    /// Persist database + payloads to a file (server-side path).
    SaveProject {
        /// Destination file.
        path: String,
    },
    /// Restore database + payloads from a file (server-side path).
    LoadProject {
        /// Source file.
        path: String,
    },
    /// Full textual database dump.
    Dump,
    /// Graphviz dump of the live design state.
    Dot,
    /// Engine audit counters.
    Audit,
    /// Server statistics (database size, queue depth, journal state).
    Stat,
    /// Set the wave worker count: `ProcessAll` executes each drained
    /// batch as link-connected shards across this many worker threads
    /// (`1` = sequential). Results are identical at any count; the knob
    /// trades threads for wall-clock. Survives `Init` server swaps, like
    /// group-commit mode.
    SetWaveWorkers {
        /// Worker threads (clamped to at least 1).
        workers: u64,
    },
    /// Set the retry policy for detached tool invocations: how many times
    /// a failed attempt is retried, the exponential backoff between
    /// attempts, and the per-attempt wall-clock budget. With `script:
    /// None` this sets the default policy; with `Some(name)` it overrides
    /// the policy for that script only. Survives `Init` server swaps,
    /// like wave workers.
    SetRetryPolicy {
        /// The script (tool) the policy applies to; `None` = the default
        /// policy for scripts without an override.
        script: Option<String>,
        /// Retries after the first failed attempt (`0` = one attempt
        /// only).
        max_retries: u64,
        /// Delay before the first retry, in milliseconds.
        base_delay_ms: u64,
        /// Backoff multiplier: retry *n* waits `base_delay ·
        /// multiplier^(n-1)`.
        multiplier: u64,
        /// Per-attempt wall-clock budget in milliseconds; an attempt
        /// finishing later counts as failed.
        timeout_ms: u64,
    },
    /// Absorb finished detached invocations and run one non-blocking
    /// queue drain. The command loop issues this to itself when the
    /// worker pool signals finished work, so results flow back between
    /// client commands; clients may also send it to poll.
    PumpInvocations,
    /// Replication handshake: stream committed journal records from
    /// `(epoch, seq)` on. Requires journaling on the receiving server.
    ///
    /// Over a streaming transport (the TCP front door) the
    /// [`Response::Tailing`] reply is followed by tail frames
    /// ([`TailFrame`](crate::engine::tail::TailFrame) lines) until the
    /// client disconnects; a brand-new follower sends `(0, 0)` and is
    /// bootstrapped with a snapshot. See `PROTOCOL.md` §5.
    TailFrom {
        /// The checkpoint epoch the follower is at.
        epoch: u64,
        /// The next record sequence number the follower expects.
        seq: u64,
    },
    /// Promote a caught-up follower into a leader under a new fencing
    /// term: enable a local journal at the replica's cursor (its epoch
    /// strictly exceeds the consumed one), open the node's own tail hub
    /// under `term`, and start accepting mutations. Refused with
    /// [`ApiError::StaleTerm`] when `term` does not exceed the highest
    /// term the node has seen, and with [`ApiError::Lagging`] before the
    /// first bootstrap. On a node that is already a leader the request is
    /// [`ApiError::StaleTerm`] unless `term` beats its current term —
    /// re-promoting a live leader to a higher term is a legal no-op-ish
    /// re-journal. See `PROTOCOL.md` §7 and `DESIGN.md` §13.
    Promote {
        /// Durability directory for the promoted node's own journal
        /// (server-side path).
        dir: String,
        /// Checkpoint fold interval in ops.
        every: u64,
        /// The new leadership term; must strictly exceed every term this
        /// node has observed.
        term: u64,
    },
    /// Fence this node out of leadership term `term`: a barrier that
    /// flushes the group-commit window, then terminally disables the
    /// node's durability and refuses every later mutation with
    /// [`ApiError::StaleTerm`]. Sent to a deposed (revived) leader so it
    /// can never dual-commit against the reign that replaced it. Refused
    /// with [`ApiError::StaleTerm`] when `term` does not exceed the
    /// node's current term (a stale fencer cannot depose a newer reign).
    Fence {
        /// The newer term doing the fencing.
        term: u64,
    },
    /// Deterministic time-travel replay: rebuild the image the server had
    /// at journal cursor `(epoch, seq)` — the snapshot of `epoch` plus the
    /// first `seq` journal records — in a scratch database, leaving the
    /// live server untouched. Requires journaling; only the current epoch
    /// is addressable (earlier snapshots are folded away by checkpoints).
    /// The reply carries the reconstructed image so "journal dir +
    /// cursor" is a complete bug report. See `PROTOCOL.md` §6.
    Replay {
        /// The checkpoint epoch to replay within.
        epoch: u64,
        /// Journal records to replay on top of the snapshot (`0` = the
        /// snapshot alone).
        seq: u64,
    },
    /// Control execution tracing ([`TraceLog`](crate::engine::trace::TraceLog)):
    /// turn per-wave step retention on or off, or drain the records
    /// captured since the last get. Retention is off by default and costs
    /// nothing when off.
    Trace {
        /// What to do with the trace log.
        mode: TraceMode,
    },
    /// Attach this session to a fleet project: subsequent requests on the
    /// session route to that tenant's engine (see
    /// [`fleet`](crate::engine::fleet)). Wire form `project <name>`, with
    /// a trailing `new` to register the project on first attach. A
    /// single-project node answers [`ApiError::NoFleet`].
    Attach {
        /// The project (tenant) name — one path component under the fleet
        /// root, no separators.
        project: String,
        /// Register the project if it does not exist yet; without it an
        /// unknown name answers [`ApiError::NoSuchProject`].
        create: bool,
    },
    /// List the fleet's registered projects and whether each is currently
    /// activated in memory. Wire form `projects`; a single-project node
    /// answers [`ApiError::NoFleet`].
    ListProjects,
}

/// The operation of a [`Request::Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// Start retaining per-wave step records.
    On,
    /// Stop retaining and drop anything captured.
    Off,
    /// Drain the records captured since the last `Get`.
    Get,
}

impl fmt::Display for TraceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceMode::On => "on",
            TraceMode::Off => "off",
            TraceMode::Get => "get",
        })
    }
}

impl Request {
    /// Whether this request must run against a flushed journal, outside
    /// any group-commit window (it swaps or re-bases durable state — or,
    /// for `Replay`, reads the on-disk journal files directly).
    pub fn is_barrier(&self) -> bool {
        matches!(
            self,
            Request::Init { .. }
                | Request::Reinit { .. }
                | Request::EnableJournal { .. }
                | Request::Checkpoint
                | Request::Recover { .. }
                | Request::SaveProject { .. }
                | Request::LoadProject { .. }
                | Request::Replay { .. }
                | Request::Promote { .. }
                | Request::Fence { .. }
        )
    }

    /// Whether this request can mutate durable state (used by the command
    /// loop to decide what a group-commit flush failure poisons).
    /// `SetRetryPolicy` and `PumpInvocations` count as mutations (a pump
    /// journals invocation completions) but not barriers — they ride
    /// inside group-commit windows.
    pub fn is_mutation(&self) -> bool {
        !matches!(
            self,
            Request::Query { .. }
                | Request::Show { .. }
                | Request::WorkLeft { .. }
                | Request::Summary { .. }
                | Request::ListSnapshots
                | Request::Dump
                | Request::Dot
                | Request::Audit
                | Request::Stat
                | Request::TailFrom { .. }
                | Request::Replay { .. }
                | Request::Trace { .. }
                | Request::Attach { .. }
                | Request::ListProjects
        )
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// One blocking item of a [`Response::Work`] result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkLeftItem {
    /// The blocking object.
    pub oid: Oid,
    /// The unsatisfied state property.
    pub prop: String,
    /// Its current value (`None` when unset).
    pub current: Option<Value>,
}

/// One per-view row of a [`Response::ViewSummary`] result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// The view type.
    pub view: String,
    /// Live objects of this view.
    pub total: u64,
    /// Objects whose state property is truthy.
    pub satisfied: u64,
    /// Objects lacking the property entirely.
    pub untracked: u64,
}

/// One registered project of a [`Response::Projects`] result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectEntry {
    /// The project (tenant) name.
    pub name: String,
    /// Whether the project is currently activated in memory (a cold
    /// project is just snapshot + journal tail on disk).
    pub active: bool,
}

/// One stored configuration of a [`Response::SnapshotList`] result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotInfo {
    /// Configuration name.
    pub name: String,
    /// Pinned OIDs.
    pub oids: u64,
    /// Pinned links.
    pub links: u64,
    /// Addresses that no longer resolve.
    pub dangling: u64,
}

/// Engine audit counters, as carried by [`Response::Audit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditCounters {
    /// Rule-executing deliveries.
    pub deliveries: u64,
    /// Property writes.
    pub assignments: u64,
    /// Continuous-assignment evaluations.
    pub reevaluations: u64,
    /// Script invocations.
    pub scripts: u64,
    /// Events posted by rules.
    pub posts: u64,
    /// Link crossings.
    pub propagations: u64,
    /// Cycle-guard skips.
    pub cycle_skips: u64,
    /// Depth truncations.
    pub depth_truncations: u64,
    /// Template applications.
    pub templates: u64,
    /// Detached invocation attempts that were retried after a failure.
    pub invoke_retries: u64,
    /// Detached invocation attempts that exceeded their wall-clock
    /// budget.
    pub invoke_timeouts: u64,
    /// Detached invocations that exhausted their whole retry budget.
    pub invoke_exhaustions: u64,
}

/// Which replication role a node answers `stat` as.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeRole {
    /// Accepts mutations and journals them — the default for a
    /// single-node server, and what a promoted follower becomes.
    #[default]
    Leader,
    /// Applies a leader's tail stream and serves reads only.
    Follower,
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeRole::Leader => "leader",
            NodeRole::Follower => "follower",
        })
    }
}

impl std::str::FromStr for NodeRole {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "leader" => Ok(NodeRole::Leader),
            "follower" => Ok(NodeRole::Follower),
            other => Err(format!("not a role (leader/follower): `{other}`")),
        }
    }
}

/// Server statistics, as carried by [`Response::Stat`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStat {
    /// Live objects in the meta-database.
    pub oids: u64,
    /// Live links.
    pub links: u64,
    /// Events queued and not yet processed.
    pub pending_events: u64,
    /// Current checkpoint epoch, when journaling.
    pub journal_epoch: Option<u64>,
    /// Ops appended since the last checkpoint, when journaling.
    pub journal_records: Option<u64>,
    /// Wave worker threads `ProcessAll` shards batches across (1 =
    /// sequential).
    pub wave_workers: u64,
    /// Detached invocations waiting for a worker.
    pub pending_invocations: u64,
    /// Detached invocations executing on a worker right now.
    pub running_invocations: u64,
    /// Detached invocations sitting out a backoff delay before their
    /// next attempt.
    pub retrying_invocations: u64,
    /// Detached invocations that exhausted their retry budget (lifetime
    /// count for this pool).
    pub failed_invocations: u64,
    /// The replay cursor's epoch: the checkpoint epoch whose journal the
    /// server is appending to (`0` when journaling is off — epochs count
    /// from 1).
    pub cursor_epoch: u64,
    /// The replay cursor's sequence: committed journal records in that
    /// epoch. `Replay { epoch: cursor_epoch, seq: cursor_seq }`
    /// reconstructs exactly the image this `stat` describes.
    pub cursor_seq: u64,
    /// Fleet only: projects currently activated in memory (bounded by
    /// `--max-active`). `0` on a single-project node.
    pub active_projects: u64,
    /// Fleet only: projects registered under the fleet root — the tenant
    /// roster, resident on disk whether activated or not. `0` on a
    /// single-project node.
    pub resident_projects: u64,
    /// Fleet only: lifetime cold→active transitions (first activations
    /// plus journal reactivations after eviction).
    pub activations: u64,
    /// Fleet only: lifetime active→cold transitions (LRU checkpoints plus
    /// panic poisonings, which also leave residency).
    pub evictions: u64,
    /// The leadership term this node operates under: the term its journal
    /// commits carry on a leader, the highest term observed in the tail
    /// stream on a follower. Terms count from 1; a node that has never
    /// seen a term-bearing stream reports 1.
    pub term: u64,
    /// Whether this node is a mutation-accepting leader or a read-only
    /// follower (a promoted follower flips to `Leader`).
    pub role: NodeRole,
}

/// The typed result of one [`Request`]. Structured data, not rendered
/// text — clients (the shell, wrapper libraries) decide presentation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Response {
    /// The request succeeded and has no further payload.
    Ok,
    /// A blueprint was (re-)initialized.
    Blueprint {
        /// The blueprint's declared name.
        name: String,
    },
    /// An object was created (check-in or bare create).
    Created {
        /// The new triplet.
        oid: Oid,
    },
    /// An event-queue drain completed.
    Processed {
        /// Events processed.
        events: u64,
        /// Rule-executing deliveries.
        deliveries: u64,
        /// Wrapper invocations dispatched.
        scripts: u64,
        /// Messages wrappers posted back.
        emitted: u64,
    },
    /// Continuous assignments were re-evaluated.
    Refreshed {
        /// `let` properties written.
        written: u64,
    },
    /// Properties of one OID.
    Props {
        /// The shown triplet.
        oid: Oid,
        /// `(name, value)` pairs in name order.
        props: Vec<(String, Value)>,
    },
    /// Query hits.
    Hits {
        /// Matching triplets in address order.
        oids: Vec<Oid>,
    },
    /// Work-remaining analysis.
    Work {
        /// The queried target.
        target: Oid,
        /// The blocking items.
        items: Vec<WorkLeftItem>,
    },
    /// Per-view state summary.
    ViewSummary {
        /// One row per view, in view order.
        rows: Vec<SummaryRow>,
    },
    /// A configuration was pinned.
    Snapped {
        /// Its name.
        name: String,
        /// OIDs pinned.
        oids: u64,
    },
    /// The stored configurations.
    SnapshotList {
        /// One entry per configuration, in name order.
        entries: Vec<SnapshotInfo>,
    },
    /// A checkpoint epoch (journal enable / checkpoint).
    Epoch {
        /// The epoch.
        epoch: u64,
    },
    /// A recovery completed.
    Recovered {
        /// The snapshot's epoch.
        epoch: u64,
        /// Objects restored from the snapshot alone.
        snapshot_oids: u64,
        /// Journal ops replayed on top.
        replayed_ops: u64,
        /// Why the tail was cut short, if it was.
        torn_tail: Option<String>,
        /// Whether a stale journal was ignored.
        stale_journal: bool,
    },
    /// A project image was adopted.
    Loaded {
        /// Objects in the restored database.
        oids: u64,
    },
    /// A text artifact (DOT graph, database dump).
    Text {
        /// The artifact.
        text: String,
    },
    /// Audit counters.
    Audit {
        /// The counters.
        counters: AuditCounters,
    },
    /// Server statistics.
    Stat {
        /// The statistics.
        stat: ServerStat,
    },
    /// A [`Request::Promote`] succeeded: this node is now a leader,
    /// journaling `epoch` under fencing `term`.
    Promoted {
        /// The promoted node's first journal epoch (strictly above the
        /// cursor epoch it consumed as a follower).
        epoch: u64,
        /// The leadership term it journals under.
        term: u64,
    },
    /// A [`Request::TailFrom`] was accepted: the leader's committed
    /// stream position is `(epoch, seq)`. On a streaming transport, tail
    /// frames follow this line on the same connection.
    Tailing {
        /// The leader's current checkpoint epoch.
        epoch: u64,
        /// Committed records in that epoch (== the next sequence number).
        seq: u64,
    },
    /// A [`Request::Replay`] reconstructed a historical image.
    Replayed {
        /// The cursor's epoch.
        epoch: u64,
        /// Journal records replayed on top of the snapshot.
        seq: u64,
        /// Objects in the reconstructed database.
        oids: u64,
        /// The full reconstructed project image (the `save` format) —
        /// byte-identical to what `save` would have produced at that
        /// cursor, so clients can diff, load, or inspect it offline.
        image: String,
    },
    /// Execution-trace records drained by a [`Request::Trace`] get, each
    /// in the [`TraceRecord`](crate::engine::trace::TraceRecord) line
    /// form, in execution order.
    Trace {
        /// The encoded records.
        records: Vec<String>,
    },
    /// A [`Request::Attach`] succeeded: the session now routes to
    /// `project`.
    Attached {
        /// The attached project.
        project: String,
        /// Whether the attach registered the project (`create` on a name
        /// the fleet had not seen).
        created: bool,
    },
    /// The fleet's project roster, from [`Request::ListProjects`].
    Projects {
        /// One entry per registered project, in name order.
        entries: Vec<ProjectEntry>,
    },
    /// The request failed.
    Error(ApiError),
}

impl Response {
    /// Whether this is an error response.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error(_))
    }
}

impl From<ProcessReport> for Response {
    fn from(r: ProcessReport) -> Self {
        Response::Processed {
            events: r.events,
            deliveries: r.deliveries,
            scripts: r.scripts,
            emitted: r.emitted,
        }
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// A structured, serializable API error carrying the [`EngineError`]
/// taxonomy — precise variants for the failures a client can act on, a
/// tagged catch-all for the rest. Never a bare pre-formatted string for
/// the actionable cases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ApiError {
    /// A command or wire line failed to parse.
    Parse {
        /// Byte offset of the offending token.
        at: u64,
        /// The token found there (`"end of line"` when input ran out).
        found: String,
        /// What the grammar expected.
        expected: String,
    },
    /// The first word of a command line names no known command.
    UnknownCommand {
        /// Byte offset of the word.
        at: u64,
        /// The word.
        found: String,
    },
    /// No blueprint is loaded yet; `Init` must come first.
    NoProject,
    /// The targeted triplet does not exist.
    UnknownOid {
        /// The unresolved triplet.
        oid: Oid,
    },
    /// The triplet already exists.
    DuplicateOid {
        /// The duplicated triplet.
        oid: Oid,
    },
    /// A workspace operation conflicted with check-out state.
    CheckoutConflict {
        /// The object in conflict.
        oid: Oid,
        /// Who holds it, if anyone.
        holder: Option<String>,
    },
    /// A check-in targeted a frozen view.
    FrozenView {
        /// The frozen view.
        view: String,
    },
    /// Another project-policy rejection.
    Policy {
        /// The rendered violation.
        detail: String,
    },
    /// Blueprint source failed static validation.
    InvalidBlueprint {
        /// The rendered validation errors.
        issues: Vec<String>,
    },
    /// Blueprint source failed to parse.
    BlueprintSyntax {
        /// The rendered parse error (carries its own position).
        message: String,
    },
    /// `ProcessAll` exceeded the server's event budget.
    Runaway {
        /// Events processed before giving up.
        processed: u64,
    },
    /// A durability operation failed.
    Journal {
        /// What went wrong.
        reason: String,
    },
    /// A detached tool invocation exhausted its retry budget. The same
    /// failure also lands in-band as a `tool_failed` event at the
    /// invocation's origin; this is the out-of-band form for clients
    /// that watch invocations directly.
    InvocationFailed {
        /// The script (tool) that failed.
        script: String,
        /// Attempts consumed (≥ 1).
        attempts: u64,
        /// The last failure reason.
        reason: String,
    },
    /// Another meta-database failure.
    Meta {
        /// The rendered error.
        reason: String,
    },
    /// A server-side file operation failed.
    Io {
        /// The rendered error.
        reason: String,
    },
    /// The receiving node is a read-only replication follower; mutations
    /// must go to the leader.
    ReadOnly {
        /// The leader's address, as the follower was configured with.
        leader: String,
    },
    /// The follower has not finished catching up with the leader's
    /// stream; `(epoch, seq)` is how far it has applied. Retry shortly,
    /// or read from the leader.
    Lagging {
        /// The follower's applied checkpoint epoch.
        epoch: u64,
        /// Records applied within that epoch.
        seq: u64,
    },
    /// The operation ran under a stale leadership term: a newer reign
    /// fenced this node (or the request itself carried an outdated term).
    /// Committing it could dual-commit against the current leader, so it
    /// is refused structurally — chase the current leader instead.
    StaleTerm {
        /// The stale term the operation ran (or was requested) under.
        term: u64,
        /// The newer term holding the reign.
        current: u64,
    },
    /// A fleet session sent a routable request before attaching to a
    /// project (`project <name>` must come first).
    NotAttached,
    /// An attach named a project the fleet has not registered (and did
    /// not ask to create it).
    NoSuchProject {
        /// The unknown project name.
        project: String,
    },
    /// The fleet could not take the request right now: the project's
    /// activation backlog is full (every active slot is pinned and the
    /// parked queue hit its limit). Backpressure — retry shortly.
    ProjectBusy {
        /// The congested project.
        project: String,
    },
    /// An engine worker panicked while serving this project; the
    /// project's unflushed group-commit window is lost and it left
    /// residency. Re-attaching recovers it from its journal (crash
    /// semantics), and other projects on the same worker are unaffected.
    ProjectPoisoned {
        /// The poisoned project.
        project: String,
    },
    /// `project`/`projects` was sent to a single-project node; fleet
    /// routing needs a fleet front door (`damocles_server --fleet`).
    NoFleet,
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Parse {
                at,
                found,
                expected,
            } => write!(
                f,
                "parse error at byte {at}: expected {expected}, found `{found}`"
            ),
            ApiError::UnknownCommand { at, found } => {
                write!(f, "unknown command `{found}` at byte {at} (try `help`)")
            }
            ApiError::NoProject => write!(f, "no blueprint loaded; use `init <file>` first"),
            ApiError::UnknownOid { oid } => write!(f, "meta-database error: unknown OID {oid}"),
            ApiError::DuplicateOid { oid } => {
                write!(f, "meta-database error: OID {oid} already exists")
            }
            ApiError::CheckoutConflict { oid, holder } => match holder {
                Some(h) => write!(f, "meta-database error: {oid} is checked out by {h}"),
                None => write!(f, "meta-database error: {oid} is not checked out"),
            },
            ApiError::FrozenView { view } => {
                write!(
                    f,
                    "policy violation: view `{view}` is frozen by project policy"
                )
            }
            ApiError::Policy { detail } => write!(f, "policy violation: {detail}"),
            ApiError::InvalidBlueprint { issues } => {
                write!(f, "blueprint validation failed: {}", issues.join("; "))
            }
            ApiError::BlueprintSyntax { message } => {
                write!(f, "blueprint parse error: {message}")
            }
            ApiError::Runaway { processed } => {
                write!(f, "event budget exhausted after {processed} events")
            }
            ApiError::Journal { reason } => write!(f, "durability error: {reason}"),
            ApiError::InvocationFailed {
                script,
                attempts,
                reason,
            } => write!(
                f,
                "invocation of `{script}` failed after {attempts} attempt(s): {reason}"
            ),
            ApiError::Meta { reason } => write!(f, "meta-database error: {reason}"),
            ApiError::Io { reason } => write!(f, "I/O error: {reason}"),
            ApiError::ReadOnly { leader } => {
                write!(
                    f,
                    "read-only follower: send mutations to the leader at {leader}"
                )
            }
            ApiError::Lagging { epoch, seq } => write!(
                f,
                "follower still catching up (applied epoch {epoch}, seq {seq}); retry shortly"
            ),
            ApiError::StaleTerm { term, current } => write!(
                f,
                "stale leadership term {term}: term {current} holds the reign"
            ),
            ApiError::NotAttached => {
                write!(f, "no project attached; use `project <name>` first")
            }
            ApiError::NoSuchProject { project } => write!(
                f,
                "no such project `{project}` in the fleet (use `project {project} new` to register it)"
            ),
            ApiError::ProjectBusy { project } => write!(
                f,
                "project `{project}` is busy (activation backlog full); retry shortly"
            ),
            ApiError::ProjectPoisoned { project } => write!(
                f,
                "project `{project}` was poisoned by an engine-worker panic; \
                 its unflushed window is lost — retry to recover it from the journal"
            ),
            ApiError::NoFleet => write!(
                f,
                "not a fleet front door; `project`/`projects` need `damocles_server --fleet`"
            ),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<EngineError> for ApiError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Meta(MetaError::UnknownOid { oid }) => ApiError::UnknownOid { oid },
            EngineError::Meta(MetaError::DuplicateOid { oid }) => ApiError::DuplicateOid { oid },
            EngineError::Meta(MetaError::CheckoutConflict { oid, holder }) => {
                ApiError::CheckoutConflict { oid, holder }
            }
            EngineError::Meta(other) => ApiError::Meta {
                reason: other.to_string(),
            },
            EngineError::Policy(PolicyViolation::FrozenView { view }) => {
                ApiError::FrozenView { view }
            }
            EngineError::Policy(other) => ApiError::Policy {
                detail: other.to_string(),
            },
            EngineError::Parse(e) => ApiError::BlueprintSyntax {
                message: e.to_string(),
            },
            EngineError::Invalid { issues } => ApiError::InvalidBlueprint { issues },
            EngineError::Runaway { processed } => ApiError::Runaway { processed },
            EngineError::Journal { reason } => ApiError::Journal { reason },
            EngineError::Fenced { term, current } => ApiError::StaleTerm { term, current },
            EngineError::InvocationFailed {
                script,
                attempts,
                reason,
            } => ApiError::InvocationFailed {
                script,
                attempts,
                reason,
            },
        }
    }
}

impl From<MetaError> for ApiError {
    fn from(e: MetaError) -> Self {
        EngineError::Meta(e).into()
    }
}

impl From<damocles_meta::WireDiag> for ApiError {
    fn from(d: damocles_meta::WireDiag) -> Self {
        ApiError::Parse {
            at: d.at as u64,
            found: d.found,
            expected: d.expected,
        }
    }
}

// ---------------------------------------------------------------------
// Text codec
// ---------------------------------------------------------------------

/// Encodes a string as one word: `%` for the empty string, otherwise the
/// shared percent-escaping. Unambiguous because `escape` renders a lone
/// `%` as `%25`. Crate-shared so the tail-frame codec cannot drift from
/// the request codec.
pub(crate) fn enc_str(s: &str) -> String {
    if s.is_empty() {
        "%".to_string()
    } else {
        damocles_meta::persist::escape(s)
    }
}

pub(crate) fn dec_str(word: &str) -> Result<String, String> {
    if word == "%" {
        Ok(String::new())
    } else {
        damocles_meta::persist::unescape(word)
    }
}

/// Encodes an optional string: `-` for `None`, `+<word>` for `Some`.
fn enc_opt(s: Option<&str>) -> String {
    match s {
        None => "-".to_string(),
        Some(s) => format!("+{}", enc_str(s)),
    }
}

fn dec_opt(word: &str) -> Result<Option<String>, String> {
    match word.strip_prefix('+') {
        Some(body) => dec_str(body).map(Some),
        None if word == "-" => Ok(None),
        None => Err(format!("expected `-` or `+…`, found `{word}`")),
    }
}

fn enc_opt_value(v: Option<&Value>) -> String {
    match v {
        None => "-".to_string(),
        Some(v) => format!("+{}", encode_value(v)),
    }
}

fn dec_opt_value(word: &str) -> Result<Option<Value>, String> {
    match word.strip_prefix('+') {
        Some(body) => decode_value(body).map(Some),
        None if word == "-" => Ok(None),
        None => Err(format!("expected `-` or `+…`, found `{word}`")),
    }
}

fn enc_oid(oid: &Oid) -> String {
    enc_str(&oid.to_string())
}

fn enc_payload(payload: &[u8]) -> String {
    if payload.is_empty() {
        "-".to_string()
    } else {
        encode_hex(payload)
    }
}

/// A positioned word cursor over one protocol line — the shared
/// [`WordCursor`](damocles_meta::WordCursor) tokenizer plus [`ApiError::Parse`] reporting (byte
/// offset, found token, expectation). The shell's command grammar builds
/// on the same type, so every surface positions diagnostics identically.
pub struct Cursor<'a> {
    words: damocles_meta::WordCursor<'a>,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `line`.
    pub fn new(line: &'a str) -> Self {
        Cursor {
            words: damocles_meta::WordCursor::new(line),
        }
    }

    /// The next word and its byte offset.
    ///
    /// # Errors
    ///
    /// [`ApiError::Parse`] naming `expected` when the line ran out.
    pub fn next_word(&mut self, expected: &str) -> Result<(usize, &'a str), ApiError> {
        let at_end = self.words.skip_ws();
        match self.words.next_word() {
            Some(hit) => Ok(hit),
            None => Err(ApiError::Parse {
                at: at_end as u64,
                found: "end of line".to_string(),
                expected: expected.to_string(),
            }),
        }
    }

    /// The unconsumed remainder of the line (whitespace-trimmed).
    pub fn rest(&mut self) -> &'a str {
        self.words.rest()
    }

    /// Parses the next word with `parse`, folding its failure reason into
    /// a positioned [`ApiError::Parse`].
    ///
    /// # Errors
    ///
    /// [`ApiError::Parse`] at the word (or at end of line).
    pub fn parse_with<T>(
        &mut self,
        expected: &str,
        parse: impl FnOnce(&str) -> Result<T, String>,
    ) -> Result<T, ApiError> {
        let (at, word) = self.next_word(expected)?;
        parse(word).map_err(|reason| ApiError::Parse {
            at: at as u64,
            found: word.to_string(),
            expected: format!("{expected} ({reason})"),
        })
    }

    fn string(&mut self, expected: &str) -> Result<String, ApiError> {
        self.parse_with(expected, dec_str)
    }

    fn u64(&mut self, expected: &str) -> Result<u64, ApiError> {
        self.parse_with(expected, |w| {
            w.parse::<u64>().map_err(|_| "not a number".to_string())
        })
    }

    fn oid(&mut self, expected: &str) -> Result<Oid, ApiError> {
        self.parse_with(expected, |w| {
            let raw = dec_str(w)?;
            raw.parse::<Oid>().map_err(|e| e.short_reason())
        })
    }

    fn value(&mut self, expected: &str) -> Result<Value, ApiError> {
        self.parse_with(expected, decode_value)
    }

    /// Whether no word remains on the line.
    pub fn at_end(&mut self) -> bool {
        self.words.peek_word().is_none()
    }

    fn finish(mut self) -> Result<(), ApiError> {
        if let Some((at, word)) = self.words.peek_word() {
            return Err(ApiError::Parse {
                at: at as u64,
                found: word.to_string(),
                expected: "end of line".to_string(),
            });
        }
        Ok(())
    }
}

impl Request {
    /// Renders the canonical single-line form (no trailing newline).
    ///
    /// ```
    /// use blueprint_core::engine::api::Request;
    ///
    /// let req = Request::Checkin {
    ///     block: "CPU".into(),
    ///     view: "HDL_model".into(),
    ///     user: "yves".into(),
    ///     payload: b"module".to_vec(),
    /// };
    /// assert_eq!(req.encode(), "checkin CPU HDL_model yves 6d6f64756c65");
    /// ```
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        match self {
            Request::Init { source } => format!("init {}", enc_str(source)),
            Request::Reinit { source } => format!("reinit {}", enc_str(source)),
            Request::Checkin {
                block,
                view,
                user,
                payload,
            } => format!(
                "checkin {} {} {} {}",
                enc_str(block),
                enc_str(view),
                enc_str(user),
                enc_payload(payload)
            ),
            Request::Checkout { block, view, user } => format!(
                "checkout {} {} {}",
                enc_str(block),
                enc_str(view),
                enc_str(user)
            ),
            Request::CreateObject { oid } => format!("create {}", enc_oid(oid)),
            Request::Connect { from, to } => {
                format!("connect {} {}", enc_oid(from), enc_oid(to))
            }
            Request::Post { message, user } => {
                // Field-wise (not the rendered §3.1 wire line): the wire
                // grammar cannot carry whitespace inside event names or
                // OID components, but escaped fields can — so every
                // creatable object stays addressable through the typed
                // protocol.
                let mut out = format!(
                    "post {} {} {} {}",
                    enc_str(user),
                    enc_str(&message.event),
                    message.direction,
                    enc_oid(&message.target)
                );
                for arg in &message.args {
                    let _ = write!(out, " {}", enc_str(arg));
                }
                out
            }
            Request::ProcessAll => "process".to_string(),
            Request::RefreshLets => "refresh".to_string(),
            Request::Query { terms } => format!("query {}", enc_str(terms)),
            Request::Show { oid } => format!("show {}", enc_oid(oid)),
            Request::WorkLeft { oid, prop } => {
                format!("workleft {} {}", enc_oid(oid), enc_str(prop))
            }
            Request::Summary { prop } => format!("summary {}", enc_str(prop)),
            Request::Snapshot { name, root } => {
                format!("snapshot {} {}", enc_str(name), enc_oid(root))
            }
            Request::ListSnapshots => "snapshots".to_string(),
            Request::Freeze { view } => format!("freeze {}", enc_str(view)),
            Request::Thaw { view } => format!("thaw {}", enc_str(view)),
            Request::EnableJournal { dir, every } => {
                format!("journal {} {every}", enc_str(dir))
            }
            Request::Checkpoint => "checkpoint".to_string(),
            Request::Recover { dir, every } => format!("recover {} {every}", enc_str(dir)),
            Request::SaveProject { path } => format!("save {}", enc_str(path)),
            Request::LoadProject { path } => format!("load {}", enc_str(path)),
            Request::Dump => "dump".to_string(),
            Request::Dot => "dot".to_string(),
            Request::Audit => "audit".to_string(),
            Request::Stat => "stat".to_string(),
            Request::SetWaveWorkers { workers } => format!("waveworkers {workers}"),
            Request::SetRetryPolicy {
                script,
                max_retries,
                base_delay_ms,
                multiplier,
                timeout_ms,
            } => format!(
                "retry {} {max_retries} {base_delay_ms} {multiplier} {timeout_ms}",
                enc_opt(script.as_deref())
            ),
            Request::PumpInvocations => "pump".to_string(),
            Request::TailFrom { epoch, seq } => format!("tailfrom {epoch} {seq}"),
            Request::Promote { dir, every, term } => {
                format!("promote {} {every} {term}", enc_str(dir))
            }
            Request::Fence { term } => format!("fence {term}"),
            Request::Replay { epoch, seq } => format!("replay {epoch} {seq}"),
            Request::Trace { mode } => format!("trace {mode}"),
            Request::Attach { project, create } => {
                if *create {
                    format!("project {} new", enc_str(project))
                } else {
                    format!("project {}", enc_str(project))
                }
            }
            Request::ListProjects => "projects".to_string(),
        }
    }

    /// Parses the canonical single-line form. The codec round-trips
    /// byte-identically: `decode(encode(r)) == r` and re-encoding a
    /// decoded line reproduces it (property-tested in
    /// `tests/api_roundtrip.rs`).
    ///
    /// ```
    /// use blueprint_core::engine::api::Request;
    ///
    /// let line = "post simwrap hdl_sim up reg,verilog,4 logic%20sim%20passed";
    /// let req = Request::decode(line).unwrap();
    /// assert_eq!(req.encode(), line);
    /// assert!(matches!(req, Request::Post { user, .. } if user == "simwrap"));
    /// ```
    ///
    /// # Errors
    ///
    /// [`ApiError::Parse`] (with byte offset, found token and expectation)
    /// or [`ApiError::UnknownCommand`].
    pub fn decode(line: &str) -> Result<Request, ApiError> {
        let mut c = Cursor::new(line);
        let (at, keyword) = c.next_word("a request keyword")?;
        let req = match keyword {
            "init" => Request::Init {
                source: c.string("the blueprint source (escaped)")?,
            },
            "reinit" => Request::Reinit {
                source: c.string("the blueprint source (escaped)")?,
            },
            "checkin" => Request::Checkin {
                block: c.string("a block name")?,
                view: c.string("a view type")?,
                user: c.string("a user name")?,
                payload: c.parse_with("a hex payload or `-`", |w| {
                    if w == "-" {
                        Ok(Vec::new())
                    } else {
                        decode_hex(w)
                    }
                })?,
            },
            "checkout" => Request::Checkout {
                block: c.string("a block name")?,
                view: c.string("a view type")?,
                user: c.string("a user name")?,
            },
            "create" => Request::CreateObject {
                oid: c.oid("an OID `block,view,version`")?,
            },
            "connect" => Request::Connect {
                from: c.oid("a source OID")?,
                to: c.oid("a destination OID")?,
            },
            "post" => {
                let user = c.string("a user name")?;
                let event = c.string("an event name")?;
                let direction: damocles_meta::Direction =
                    c.parse_with("a direction (`up` or `down`)", |w| w.parse())?;
                let target = c.oid("a target OID")?;
                let mut message = EventMessage::new(event, direction, target);
                while !c.at_end() {
                    message = message.with_arg(c.string("an argument")?);
                }
                Request::Post { message, user }
            }
            "process" => Request::ProcessAll,
            "refresh" => Request::RefreshLets,
            "query" => Request::Query {
                terms: c.string("query terms (escaped)")?,
            },
            "show" => Request::Show {
                oid: c.oid("an OID `block,view,version`")?,
            },
            "workleft" => Request::WorkLeft {
                oid: c.oid("an OID `block,view,version`")?,
                prop: c.string("a state property name")?,
            },
            "summary" => Request::Summary {
                prop: c.string("a state property name")?,
            },
            "snapshot" => Request::Snapshot {
                name: c.string("a configuration name")?,
                root: c.oid("a root OID")?,
            },
            "snapshots" => Request::ListSnapshots,
            "freeze" => Request::Freeze {
                view: c.string("a view name")?,
            },
            "thaw" => Request::Thaw {
                view: c.string("a view name")?,
            },
            "journal" => Request::EnableJournal {
                dir: c.string("a directory path")?,
                every: c.u64("a checkpoint interval")?,
            },
            "checkpoint" => Request::Checkpoint,
            "recover" => Request::Recover {
                dir: c.string("a directory path")?,
                every: c.u64("a checkpoint interval")?,
            },
            "save" => Request::SaveProject {
                path: c.string("a file path")?,
            },
            "load" => Request::LoadProject {
                path: c.string("a file path")?,
            },
            "dump" => Request::Dump,
            "dot" => Request::Dot,
            "audit" => Request::Audit,
            "stat" => Request::Stat,
            "waveworkers" => Request::SetWaveWorkers {
                workers: c.u64("a worker count")?,
            },
            "retry" => Request::SetRetryPolicy {
                script: c.parse_with("a script (`-` = default policy)", dec_opt)?,
                max_retries: c.u64("a retry count")?,
                base_delay_ms: c.u64("a base delay (ms)")?,
                multiplier: c.u64("a backoff multiplier")?,
                timeout_ms: c.u64("a per-attempt timeout (ms)")?,
            },
            "pump" => Request::PumpInvocations,
            "tailfrom" => Request::TailFrom {
                epoch: c.u64("a checkpoint epoch")?,
                seq: c.u64("a record sequence number")?,
            },
            "promote" => Request::Promote {
                dir: c.string("a directory path")?,
                every: c.u64("a checkpoint interval")?,
                term: c.u64("a leadership term")?,
            },
            "fence" => Request::Fence {
                term: c.u64("a leadership term")?,
            },
            "replay" => Request::Replay {
                epoch: c.u64("a checkpoint epoch")?,
                seq: c.u64("a journal cursor sequence")?,
            },
            "trace" => Request::Trace {
                mode: c.parse_with("a trace mode (`on`, `off` or `get`)", |w| match w {
                    "on" => Ok(TraceMode::On),
                    "off" => Ok(TraceMode::Off),
                    "get" => Ok(TraceMode::Get),
                    _ => Err("not on/off/get".to_string()),
                })?,
            },
            "project" => {
                let project = c.string("a project name")?;
                let create = if c.at_end() {
                    false
                } else {
                    c.parse_with("`new` or end of line", |w| match w {
                        "new" => Ok(true),
                        _ => Err("not `new`".to_string()),
                    })?
                };
                Request::Attach { project, create }
            }
            "projects" => Request::ListProjects,
            other => {
                return Err(ApiError::UnknownCommand {
                    at: at as u64,
                    found: other.to_string(),
                })
            }
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Renders the canonical single-line form (no trailing newline).
    ///
    /// ```
    /// use blueprint_core::engine::api::{ApiError, Response};
    ///
    /// let resp = Response::Error(ApiError::ReadOnly {
    ///     leader: "10.0.0.7:7425".into(),
    /// });
    /// assert_eq!(resp.encode(), "err read-only 10.0.0.7:7425");
    /// ```
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        match self {
            Response::Ok => "ok".to_string(),
            Response::Blueprint { name } => format!("blueprint {}", enc_str(name)),
            Response::Created { oid } => format!("created {}", enc_oid(oid)),
            Response::Processed {
                events,
                deliveries,
                scripts,
                emitted,
            } => format!("processed {events} {deliveries} {scripts} {emitted}"),
            Response::Refreshed { written } => format!("refreshed {written}"),
            Response::Props { oid, props } => {
                let mut out = format!("props {} {}", enc_oid(oid), props.len());
                for (name, value) in props {
                    let _ = write!(out, " {} {}", enc_str(name), encode_value(value));
                }
                out
            }
            Response::Hits { oids } => {
                let mut out = format!("hits {}", oids.len());
                for oid in oids {
                    let _ = write!(out, " {}", enc_oid(oid));
                }
                out
            }
            Response::Work { target, items } => {
                let mut out = format!("work {} {}", enc_oid(target), items.len());
                for item in items {
                    let _ = write!(
                        out,
                        " {} {} {}",
                        enc_oid(&item.oid),
                        enc_str(&item.prop),
                        enc_opt_value(item.current.as_ref())
                    );
                }
                out
            }
            Response::ViewSummary { rows } => {
                let mut out = format!("viewsummary {}", rows.len());
                for r in rows {
                    let _ = write!(
                        out,
                        " {} {} {} {}",
                        enc_str(&r.view),
                        r.total,
                        r.satisfied,
                        r.untracked
                    );
                }
                out
            }
            Response::Snapped { name, oids } => {
                format!("snapped {} {oids}", enc_str(name))
            }
            Response::SnapshotList { entries } => {
                let mut out = format!("snaplist {}", entries.len());
                for e in entries {
                    let _ = write!(
                        out,
                        " {} {} {} {}",
                        enc_str(&e.name),
                        e.oids,
                        e.links,
                        e.dangling
                    );
                }
                out
            }
            Response::Epoch { epoch } => format!("epoch {epoch}"),
            Response::Recovered {
                epoch,
                snapshot_oids,
                replayed_ops,
                torn_tail,
                stale_journal,
            } => format!(
                "recovered {epoch} {snapshot_oids} {replayed_ops} {} {}",
                enc_opt(torn_tail.as_deref()),
                u8::from(*stale_journal)
            ),
            Response::Loaded { oids } => format!("loaded {oids}"),
            Response::Text { text } => format!("text {}", enc_str(text)),
            Response::Audit { counters } => format!(
                "audit {} {} {} {} {} {} {} {} {} {} {} {}",
                counters.deliveries,
                counters.assignments,
                counters.reevaluations,
                counters.scripts,
                counters.posts,
                counters.propagations,
                counters.cycle_skips,
                counters.depth_truncations,
                counters.templates,
                counters.invoke_retries,
                counters.invoke_timeouts,
                counters.invoke_exhaustions
            ),
            Response::Stat { stat } => format!(
                "stat {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
                stat.oids,
                stat.links,
                stat.pending_events,
                stat.journal_epoch
                    .map_or_else(|| "-".to_string(), |e| format!("+{e}")),
                stat.journal_records
                    .map_or_else(|| "-".to_string(), |r| format!("+{r}")),
                stat.wave_workers,
                stat.pending_invocations,
                stat.running_invocations,
                stat.retrying_invocations,
                stat.failed_invocations,
                stat.cursor_epoch,
                stat.cursor_seq,
                stat.active_projects,
                stat.resident_projects,
                stat.activations,
                stat.evictions,
                stat.term,
                stat.role,
            ),
            Response::Promoted { epoch, term } => format!("promoted {epoch} {term}"),
            Response::Tailing { epoch, seq } => format!("tailing {epoch} {seq}"),
            Response::Replayed {
                epoch,
                seq,
                oids,
                image,
            } => format!("replayed {epoch} {seq} {oids} {}", enc_str(image)),
            Response::Trace { records } => {
                let mut out = format!("trace {}", records.len());
                for rec in records {
                    let _ = write!(out, " {}", enc_str(rec));
                }
                out
            }
            Response::Attached { project, created } => {
                format!("attached {} {}", enc_str(project), u8::from(*created))
            }
            Response::Projects { entries } => {
                let mut out = format!("projects {}", entries.len());
                for e in entries {
                    let _ = write!(out, " {} {}", enc_str(&e.name), u8::from(e.active));
                }
                out
            }
            Response::Error(e) => format!("err {}", e.encode()),
        }
    }

    /// Parses the canonical single-line form.
    ///
    /// ```
    /// use blueprint_core::engine::api::Response;
    ///
    /// match Response::decode("processed 2 3 1 0").unwrap() {
    ///     Response::Processed { events, .. } => assert_eq!(events, 2),
    ///     other => panic!("{other:?}"),
    /// }
    /// ```
    ///
    /// # Errors
    ///
    /// [`ApiError::Parse`] with byte offset, found token and expectation.
    pub fn decode(line: &str) -> Result<Response, ApiError> {
        let mut c = Cursor::new(line);
        let (at, keyword) = c.next_word("a response keyword")?;
        let opt_u64 = |w: &str| -> Result<Option<u64>, String> {
            match w.strip_prefix('+') {
                Some(n) => n
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| "not a number".to_string()),
                None if w == "-" => Ok(None),
                None => Err(format!("expected `-` or `+<n>`, found `{w}`")),
            }
        };
        let resp = match keyword {
            "ok" => Response::Ok,
            "blueprint" => Response::Blueprint {
                name: c.string("a blueprint name")?,
            },
            "created" => Response::Created {
                oid: c.oid("an OID")?,
            },
            "processed" => Response::Processed {
                events: c.u64("an event count")?,
                deliveries: c.u64("a delivery count")?,
                scripts: c.u64("a script count")?,
                emitted: c.u64("an emitted count")?,
            },
            "refreshed" => Response::Refreshed {
                written: c.u64("a write count")?,
            },
            "props" => {
                let oid = c.oid("an OID")?;
                let n = c.u64("a property count")?;
                // Counts come off the wire: never pre-size from them (a
                // hostile line could demand a huge allocation before any
                // element parses). Same for every repeated group below.
                let mut props = Vec::new();
                for _ in 0..n {
                    let name = c.string("a property name")?;
                    let value = c.value("a tagged value")?;
                    props.push((name, value));
                }
                Response::Props { oid, props }
            }
            "hits" => {
                let n = c.u64("a hit count")?;
                let mut oids = Vec::new();
                for _ in 0..n {
                    oids.push(c.oid("an OID")?);
                }
                Response::Hits { oids }
            }
            "work" => {
                let target = c.oid("the target OID")?;
                let n = c.u64("an item count")?;
                let mut items = Vec::new();
                for _ in 0..n {
                    items.push(WorkLeftItem {
                        oid: c.oid("an OID")?,
                        prop: c.string("a property name")?,
                        current: c.parse_with("an optional value", dec_opt_value)?,
                    });
                }
                Response::Work { target, items }
            }
            "viewsummary" => {
                let n = c.u64("a row count")?;
                let mut rows = Vec::new();
                for _ in 0..n {
                    rows.push(SummaryRow {
                        view: c.string("a view name")?,
                        total: c.u64("a total")?,
                        satisfied: c.u64("a satisfied count")?,
                        untracked: c.u64("an untracked count")?,
                    });
                }
                Response::ViewSummary { rows }
            }
            "snapped" => Response::Snapped {
                name: c.string("a configuration name")?,
                oids: c.u64("an OID count")?,
            },
            "snaplist" => {
                let n = c.u64("an entry count")?;
                let mut entries = Vec::new();
                for _ in 0..n {
                    entries.push(SnapshotInfo {
                        name: c.string("a configuration name")?,
                        oids: c.u64("an OID count")?,
                        links: c.u64("a link count")?,
                        dangling: c.u64("a dangling count")?,
                    });
                }
                Response::SnapshotList { entries }
            }
            "epoch" => Response::Epoch {
                epoch: c.u64("an epoch")?,
            },
            "recovered" => Response::Recovered {
                epoch: c.u64("an epoch")?,
                snapshot_oids: c.u64("a snapshot OID count")?,
                replayed_ops: c.u64("a replayed-op count")?,
                torn_tail: c.parse_with("an optional torn-tail reason", dec_opt)?,
                stale_journal: c.parse_with("a stale flag (0/1)", |w| match w {
                    "0" => Ok(false),
                    "1" => Ok(true),
                    _ => Err("not 0/1".to_string()),
                })?,
            },
            "loaded" => Response::Loaded {
                oids: c.u64("an OID count")?,
            },
            "text" => Response::Text {
                text: c.string("a text artifact (escaped)")?,
            },
            "audit" => Response::Audit {
                counters: AuditCounters {
                    deliveries: c.u64("deliveries")?,
                    assignments: c.u64("assignments")?,
                    reevaluations: c.u64("reevaluations")?,
                    scripts: c.u64("scripts")?,
                    posts: c.u64("posts")?,
                    propagations: c.u64("propagations")?,
                    cycle_skips: c.u64("cycle skips")?,
                    depth_truncations: c.u64("depth truncations")?,
                    templates: c.u64("templates")?,
                    invoke_retries: c.u64("invoke retries")?,
                    invoke_timeouts: c.u64("invoke timeouts")?,
                    invoke_exhaustions: c.u64("invoke exhaustions")?,
                },
            },
            "stat" => Response::Stat {
                stat: ServerStat {
                    oids: c.u64("an OID count")?,
                    links: c.u64("a link count")?,
                    pending_events: c.u64("a pending-event count")?,
                    journal_epoch: c.parse_with("an optional epoch", opt_u64)?,
                    journal_records: c.parse_with("an optional record count", opt_u64)?,
                    wave_workers: c.u64("a wave worker count")?,
                    pending_invocations: c.u64("a pending-invocation count")?,
                    running_invocations: c.u64("a running-invocation count")?,
                    retrying_invocations: c.u64("a retrying-invocation count")?,
                    failed_invocations: c.u64("a failed-invocation count")?,
                    cursor_epoch: c.u64("a cursor epoch")?,
                    cursor_seq: c.u64("a cursor sequence")?,
                    active_projects: c.u64("an active-project count")?,
                    resident_projects: c.u64("a resident-project count")?,
                    activations: c.u64("an activation count")?,
                    evictions: c.u64("an eviction count")?,
                    term: c.u64("a leadership term")?,
                    role: c.parse_with("a role (leader/follower)", |w| w.parse())?,
                },
            },
            "promoted" => Response::Promoted {
                epoch: c.u64("an epoch")?,
                term: c.u64("a leadership term")?,
            },
            "tailing" => Response::Tailing {
                epoch: c.u64("a checkpoint epoch")?,
                seq: c.u64("a record sequence number")?,
            },
            "replayed" => Response::Replayed {
                epoch: c.u64("a checkpoint epoch")?,
                seq: c.u64("a journal cursor sequence")?,
                oids: c.u64("an OID count")?,
                image: c.string("a project image (escaped)")?,
            },
            "trace" => {
                let n = c.u64("a record count")?;
                let mut records = Vec::new();
                for _ in 0..n {
                    records.push(c.string("an encoded trace record")?);
                }
                Response::Trace { records }
            }
            "attached" => Response::Attached {
                project: c.string("a project name")?,
                created: c.parse_with("a created flag (0/1)", |w| match w {
                    "0" => Ok(false),
                    "1" => Ok(true),
                    _ => Err("not 0/1".to_string()),
                })?,
            },
            "projects" => {
                let n = c.u64("an entry count")?;
                let mut entries = Vec::new();
                for _ in 0..n {
                    entries.push(ProjectEntry {
                        name: c.string("a project name")?,
                        active: c.parse_with("an active flag (0/1)", |w| match w {
                            "0" => Ok(false),
                            "1" => Ok(true),
                            _ => Err("not 0/1".to_string()),
                        })?,
                    });
                }
                Response::Projects { entries }
            }
            "err" => Response::Error(ApiError::decode_cursor(&mut c)?),
            other => {
                return Err(ApiError::Parse {
                    at: at as u64,
                    found: other.to_string(),
                    expected: "a response keyword".to_string(),
                })
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

impl ApiError {
    /// Renders the error's wire words (the part after `err `).
    fn encode(&self) -> String {
        use std::fmt::Write as _;
        match self {
            ApiError::Parse {
                at,
                found,
                expected,
            } => format!("parse {at} {} {}", enc_str(found), enc_str(expected)),
            ApiError::UnknownCommand { at, found } => {
                format!("unknown-command {at} {}", enc_str(found))
            }
            ApiError::NoProject => "no-project".to_string(),
            ApiError::UnknownOid { oid } => format!("unknown-oid {}", enc_oid(oid)),
            ApiError::DuplicateOid { oid } => format!("duplicate-oid {}", enc_oid(oid)),
            ApiError::CheckoutConflict { oid, holder } => format!(
                "checkout-conflict {} {}",
                enc_oid(oid),
                enc_opt(holder.as_deref())
            ),
            ApiError::FrozenView { view } => format!("frozen-view {}", enc_str(view)),
            ApiError::Policy { detail } => format!("policy {}", enc_str(detail)),
            ApiError::InvalidBlueprint { issues } => {
                let mut out = format!("invalid-blueprint {}", issues.len());
                for issue in issues {
                    let _ = write!(out, " {}", enc_str(issue));
                }
                out
            }
            ApiError::BlueprintSyntax { message } => {
                format!("blueprint-syntax {}", enc_str(message))
            }
            ApiError::Runaway { processed } => format!("runaway {processed}"),
            ApiError::Journal { reason } => format!("journal {}", enc_str(reason)),
            ApiError::InvocationFailed {
                script,
                attempts,
                reason,
            } => format!(
                "invocation-failed {} {attempts} {}",
                enc_str(script),
                enc_str(reason)
            ),
            ApiError::Meta { reason } => format!("meta {}", enc_str(reason)),
            ApiError::Io { reason } => format!("io {}", enc_str(reason)),
            ApiError::ReadOnly { leader } => format!("read-only {}", enc_str(leader)),
            ApiError::Lagging { epoch, seq } => format!("lagging {epoch} {seq}"),
            ApiError::StaleTerm { term, current } => format!("stale-term {term} {current}"),
            ApiError::NotAttached => "not-attached".to_string(),
            ApiError::NoSuchProject { project } => {
                format!("no-such-project {}", enc_str(project))
            }
            ApiError::ProjectBusy { project } => {
                format!("project-busy {}", enc_str(project))
            }
            ApiError::ProjectPoisoned { project } => {
                format!("project-poisoned {}", enc_str(project))
            }
            ApiError::NoFleet => "no-fleet".to_string(),
        }
    }

    fn decode_cursor(c: &mut Cursor<'_>) -> Result<ApiError, ApiError> {
        let (at, kind) = c.next_word("an error kind")?;
        Ok(match kind {
            "parse" => ApiError::Parse {
                at: c.u64("a byte offset")?,
                found: c.string("the found token")?,
                expected: c.string("the expectation")?,
            },
            "unknown-command" => ApiError::UnknownCommand {
                at: c.u64("a byte offset")?,
                found: c.string("the found token")?,
            },
            "no-project" => ApiError::NoProject,
            "unknown-oid" => ApiError::UnknownOid {
                oid: c.oid("an OID")?,
            },
            "duplicate-oid" => ApiError::DuplicateOid {
                oid: c.oid("an OID")?,
            },
            "checkout-conflict" => ApiError::CheckoutConflict {
                oid: c.oid("an OID")?,
                holder: c.parse_with("an optional holder", dec_opt)?,
            },
            "frozen-view" => ApiError::FrozenView {
                view: c.string("a view name")?,
            },
            "policy" => ApiError::Policy {
                detail: c.string("a violation rendering")?,
            },
            "invalid-blueprint" => {
                let n = c.u64("an issue count")?;
                let mut issues = Vec::new();
                for _ in 0..n {
                    issues.push(c.string("an issue rendering")?);
                }
                ApiError::InvalidBlueprint { issues }
            }
            "blueprint-syntax" => ApiError::BlueprintSyntax {
                message: c.string("a parse-error rendering")?,
            },
            "runaway" => ApiError::Runaway {
                processed: c.u64("an event count")?,
            },
            "journal" => ApiError::Journal {
                reason: c.string("a reason")?,
            },
            "invocation-failed" => ApiError::InvocationFailed {
                script: c.string("a script name")?,
                attempts: c.u64("an attempt count")?,
                reason: c.string("a reason")?,
            },
            "meta" => ApiError::Meta {
                reason: c.string("a reason")?,
            },
            "io" => ApiError::Io {
                reason: c.string("a reason")?,
            },
            "read-only" => ApiError::ReadOnly {
                leader: c.string("a leader address")?,
            },
            "lagging" => ApiError::Lagging {
                epoch: c.u64("a checkpoint epoch")?,
                seq: c.u64("a record sequence number")?,
            },
            "stale-term" => ApiError::StaleTerm {
                term: c.u64("a stale term")?,
                current: c.u64("the current term")?,
            },
            "not-attached" => ApiError::NotAttached,
            "no-such-project" => ApiError::NoSuchProject {
                project: c.string("a project name")?,
            },
            "project-busy" => ApiError::ProjectBusy {
                project: c.string("a project name")?,
            },
            "project-poisoned" => ApiError::ProjectPoisoned {
                project: c.string("a project name")?,
            },
            "no-fleet" => ApiError::NoFleet,
            other => {
                return Err(ApiError::Parse {
                    at: at as u64,
                    found: other.to_string(),
                    expected: "an error kind".to_string(),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damocles_meta::Direction;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Init {
                source: "blueprint x\nview v endview\nendblueprint".into(),
            },
            // A spacey block survives the CODEC (escaped fields); the
            // server itself rejects it at execution time, since OID
            // components forbid separator characters.
            Request::Checkin {
                block: "CPU core".into(),
                view: "HDL_model".into(),
                user: "yves".into(),
                payload: b"\xff\x00module cpu;".to_vec(),
            },
            Request::Checkin {
                block: "b".into(),
                view: "v".into(),
                user: String::new(),
                payload: Vec::new(),
            },
            Request::Post {
                message: EventMessage::new("hdl_sim", Direction::Up, Oid::new("reg", "verilog", 4))
                    .with_arg("logic sim passed")
                    .with_arg("4 errors"),
                user: "sim wrapper".into(),
            },
            Request::ProcessAll,
            Request::Query {
                terms: "view=schematic stale.uptodate latest".into(),
            },
            // Characters that are Unicode whitespace but NOT codec
            // separators (vertical tab, NBSP, line separator) must ride
            // inside one word unescaped.
            Request::Query {
                terms: "a\u{0B}b\u{A0}c\u{2028}d".into(),
            },
            Request::EnableJournal {
                dir: "/tmp/dura dir".into(),
                every: 1024,
            },
            Request::Stat,
            Request::SetWaveWorkers { workers: 4 },
            Request::SetRetryPolicy {
                script: None,
                max_retries: 5,
                base_delay_ms: 10,
                multiplier: 2,
                timeout_ms: 30_000,
            },
            Request::SetRetryPolicy {
                script: Some("hdl sim".into()),
                max_retries: 0,
                base_delay_ms: 0,
                multiplier: 1,
                timeout_ms: 1,
            },
            Request::PumpInvocations,
            Request::TailFrom { epoch: 3, seq: 117 },
            Request::Promote {
                dir: "/tmp/dura dir".into(),
                every: 1024,
                term: 3,
            },
            Request::Fence { term: 4 },
            Request::Replay { epoch: 2, seq: 40 },
            Request::Trace {
                mode: TraceMode::On,
            },
            Request::Trace {
                mode: TraceMode::Off,
            },
            Request::Trace {
                mode: TraceMode::Get,
            },
            Request::Attach {
                project: "asic 9".into(),
                create: false,
            },
            Request::Attach {
                project: "fpga".into(),
                create: true,
            },
            Request::ListProjects,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Ok,
            Response::Created {
                oid: Oid::new("cpu", "schematic", 2),
            },
            Response::Props {
                oid: Oid::new("cpu", "schematic", 2),
                props: vec![
                    ("uptodate".into(), Value::Bool(false)),
                    ("note".into(), Value::Str("4 errors\nbad ✗".into())),
                    ("count".into(), Value::Int(-3)),
                ],
            },
            Response::Work {
                target: Oid::new("cpu", "netlist", 1),
                items: vec![WorkLeftItem {
                    oid: Oid::new("cpu", "schematic", 2),
                    prop: "uptodate".into(),
                    current: None,
                }],
            },
            Response::Recovered {
                epoch: 3,
                snapshot_oids: 10,
                replayed_ops: 4,
                torn_tail: Some("checksum mismatch".into()),
                stale_journal: false,
            },
            Response::Stat {
                stat: ServerStat {
                    oids: 5,
                    links: 2,
                    pending_events: 1,
                    journal_epoch: Some(2),
                    journal_records: Some(17),
                    wave_workers: 4,
                    pending_invocations: 3,
                    running_invocations: 2,
                    retrying_invocations: 1,
                    failed_invocations: 7,
                    cursor_epoch: 2,
                    cursor_seq: 17,
                    active_projects: 2,
                    resident_projects: 120,
                    activations: 9,
                    evictions: 7,
                    term: 3,
                    role: NodeRole::Follower,
                },
            },
            Response::Replayed {
                epoch: 2,
                seq: 17,
                oids: 5,
                image: "damocles-project v1\noids 0\n".into(),
            },
            Response::Trace {
                records: vec![
                    "begin ckin cpu,HDL_model,2 yves 7 - -".into(),
                    "end 2".into(),
                ],
            },
            Response::Trace {
                records: Vec::new(),
            },
            Response::Error(ApiError::Parse {
                at: 14,
                found: "sideways".into(),
                expected: "a direction (`up` or `down`)".into(),
            }),
            Response::Error(ApiError::CheckoutConflict {
                oid: Oid::new("a", "v", 1),
                holder: Some("yves".into()),
            }),
            Response::Tailing { epoch: 5, seq: 42 },
            Response::Promoted { epoch: 6, term: 2 },
            Response::Error(ApiError::ReadOnly {
                leader: "127.0.0.1:7425".into(),
            }),
            Response::Error(ApiError::Lagging { epoch: 2, seq: 9 }),
            Response::Error(ApiError::StaleTerm {
                term: 2,
                current: 3,
            }),
            Response::Error(ApiError::InvocationFailed {
                script: "hdl_sim".into(),
                attempts: 6,
                reason: "simulation crashed".into(),
            }),
            Response::Attached {
                project: "asic 9".into(),
                created: true,
            },
            Response::Projects {
                entries: vec![
                    ProjectEntry {
                        name: "asic 9".into(),
                        active: true,
                    },
                    ProjectEntry {
                        name: "fpga".into(),
                        active: false,
                    },
                ],
            },
            Response::Projects {
                entries: Vec::new(),
            },
            Response::Error(ApiError::NotAttached),
            Response::Error(ApiError::NoSuchProject {
                project: "ghost".into(),
            }),
            Response::Error(ApiError::ProjectBusy {
                project: "asic 9".into(),
            }),
            Response::Error(ApiError::ProjectPoisoned {
                project: "fpga".into(),
            }),
            Response::Error(ApiError::NoFleet),
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in sample_requests() {
            let line = req.encode();
            let back = Request::decode(&line).unwrap_or_else(|e| panic!("`{line}`: {e}"));
            assert_eq!(back, req, "`{line}`");
            assert_eq!(back.encode(), line, "canonical re-encode of `{line}`");
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in sample_responses() {
            let line = resp.encode();
            let back = Response::decode(&line).unwrap_or_else(|e| panic!("`{line}`: {e}"));
            assert_eq!(back, resp, "`{line}`");
            assert_eq!(back.encode(), line, "canonical re-encode of `{line}`");
        }
    }

    #[test]
    fn decode_errors_carry_positions() {
        let e = Request::decode("frobnicate all the things").unwrap_err();
        assert!(matches!(e, ApiError::UnknownCommand { at: 0, .. }), "{e:?}");

        let e = Request::decode("connect cpu,v,1").unwrap_err();
        match e {
            ApiError::Parse { at, found, .. } => {
                assert_eq!(at, 15);
                assert_eq!(found, "end of line");
            }
            other => panic!("{other:?}"),
        }

        let e = Request::decode("checkin b v u zz-not-hex").unwrap_err();
        assert!(matches!(e, ApiError::Parse { at: 14, .. }), "{e:?}");

        // Trailing garbage is rejected, positioned at the extra token.
        let e = Request::decode("process now").unwrap_err();
        assert!(matches!(e, ApiError::Parse { at: 8, .. }), "{e:?}");
    }

    #[test]
    fn engine_errors_map_onto_the_taxonomy() {
        let e: ApiError = EngineError::Meta(MetaError::UnknownOid {
            oid: Oid::new("cpu", "v", 9),
        })
        .into();
        assert!(matches!(e, ApiError::UnknownOid { .. }));
        assert_eq!(e.to_string(), "meta-database error: unknown OID cpu,v,9");

        let e: ApiError = EngineError::Policy(PolicyViolation::FrozenView {
            view: "layout".into(),
        })
        .into();
        assert!(matches!(e, ApiError::FrozenView { .. }));
        assert!(e.to_string().contains("frozen"));

        let e: ApiError = EngineError::Runaway { processed: 50 }.into();
        assert!(matches!(e, ApiError::Runaway { processed: 50 }));
    }

    #[test]
    fn barrier_and_mutation_classification() {
        assert!(Request::Checkpoint.is_barrier());
        assert!(Request::LoadProject { path: "x".into() }.is_barrier());
        assert!(!Request::ProcessAll.is_barrier());
        assert!(Request::ProcessAll.is_mutation());
        assert!(!Request::Stat.is_mutation());
        assert!(!Request::Dump.is_mutation());
        let retry = Request::SetRetryPolicy {
            script: None,
            max_retries: 3,
            base_delay_ms: 10,
            multiplier: 2,
            timeout_ms: 30_000,
        };
        assert!(retry.is_mutation() && !retry.is_barrier());
        assert!(Request::PumpInvocations.is_mutation());
        assert!(!Request::PumpInvocations.is_barrier());
        // Replay reads the on-disk journal: barrier (needs a flushed
        // window) but never a mutation (the live image is untouched).
        let replay = Request::Replay { epoch: 1, seq: 0 };
        assert!(replay.is_barrier() && !replay.is_mutation());
        let trace = Request::Trace {
            mode: TraceMode::On,
        };
        assert!(!trace.is_barrier() && !trace.is_mutation());
        // Promotion and fencing re-base durable state AND mutate it: both
        // must flush the group-commit window before running.
        let promote = Request::Promote {
            dir: "d".into(),
            every: 8,
            term: 2,
        };
        assert!(promote.is_barrier() && promote.is_mutation());
        let fence = Request::Fence { term: 2 };
        assert!(fence.is_barrier() && fence.is_mutation());
    }

    #[test]
    fn fenced_engine_error_maps_to_stale_term() {
        let e: ApiError = EngineError::Fenced {
            term: 2,
            current: 3,
        }
        .into();
        assert_eq!(
            e,
            ApiError::StaleTerm {
                term: 2,
                current: 3
            }
        );
        assert!(e.to_string().contains("stale leadership term 2"));
    }
}

//! Engine error type.

use std::fmt;

use damocles_meta::MetaError;

use crate::engine::policy::PolicyViolation;
use crate::lang::diag::ParseError;

/// Errors surfaced by the run-time engine and the project server.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A meta-database operation failed.
    Meta(MetaError),
    /// A project policy rejected the operation.
    Policy(PolicyViolation),
    /// Blueprint source failed to parse during (re-)initialization.
    Parse(ParseError),
    /// Blueprint failed static validation during (re-)initialization.
    Invalid {
        /// The rendered validation errors.
        issues: Vec<String>,
    },
    /// `process_all` exceeded the server's event budget — almost always a
    /// blueprint whose rules keep generating new events.
    Runaway {
        /// Events processed before giving up.
        processed: u64,
    },
    /// A durability operation (journal append, checkpoint, recovery)
    /// failed. Carries the rendered [`damocles_meta::JournalError`] — that
    /// type holds `std::io::Error` and so cannot itself live in this
    /// `Clone + PartialEq` enum.
    Journal {
        /// What went wrong.
        reason: String,
    },
    /// The operation ran under a stale leadership term: a newer reign
    /// fenced this server (or the request itself carried an outdated
    /// term), so committing it could dual-commit against the current
    /// leader's journal.
    Fenced {
        /// The stale term the operation ran (or was requested) under.
        term: u64,
        /// The newer term holding the reign.
        current: u64,
    },
    /// A detached tool invocation exhausted its retry budget. The failure
    /// also surfaces in-band as a `tool_failed` event at the invocation's
    /// origin; this variant is the out-of-band form for callers that
    /// watch invocations directly.
    InvocationFailed {
        /// The script (tool) that failed.
        script: String,
        /// Attempts consumed (≥ 1).
        attempts: u64,
        /// The last failure reason.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Meta(e) => write!(f, "meta-database error: {e}"),
            EngineError::Policy(v) => write!(f, "policy violation: {v}"),
            EngineError::Parse(e) => write!(f, "blueprint parse error: {e}"),
            EngineError::Invalid { issues } => {
                write!(f, "blueprint validation failed: {}", issues.join("; "))
            }
            EngineError::Runaway { processed } => {
                write!(f, "event budget exhausted after {processed} events")
            }
            EngineError::Journal { reason } => write!(f, "durability error: {reason}"),
            EngineError::Fenced { term, current } => write!(
                f,
                "stale leadership term {term}: term {current} holds the reign"
            ),
            EngineError::InvocationFailed {
                script,
                attempts,
                reason,
            } => write!(
                f,
                "invocation of `{script}` failed after {attempts} attempt(s): {reason}"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Meta(e) => Some(e),
            EngineError::Policy(v) => Some(v),
            EngineError::Parse(e) => Some(e),
            EngineError::Invalid { .. }
            | EngineError::Runaway { .. }
            | EngineError::Journal { .. }
            | EngineError::Fenced { .. }
            | EngineError::InvocationFailed { .. } => None,
        }
    }
}

impl From<damocles_meta::JournalError> for EngineError {
    fn from(e: damocles_meta::JournalError) -> Self {
        EngineError::Journal {
            reason: e.to_string(),
        }
    }
}

impl From<MetaError> for EngineError {
    fn from(e: MetaError) -> Self {
        EngineError::Meta(e)
    }
}

impl From<PolicyViolation> for EngineError {
    fn from(v: PolicyViolation) -> Self {
        EngineError::Policy(v)
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = MetaError::ForeignEndpoint.into();
        assert!(e.to_string().contains("meta-database"));
        let e: EngineError = PolicyViolation::FrozenView {
            view: "layout".into(),
        }
        .into();
        assert!(e.to_string().contains("policy"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}

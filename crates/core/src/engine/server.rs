//! The DAMOCLES project server: the façade tying blueprint, meta-database,
//! workspace, event queue and run-time engine together (Fig. 1).
//!
//! Wrapper programs (and designers' front-ends) talk to a [`ProjectServer`]:
//! they check data in and out, post event messages, and query project state.
//! The server drains its FIFO queue with [`ProjectServer::process_all`],
//! dispatching `exec` invocations to its [`ScriptExecutor`] and feeding any
//! events those wrappers post back into the queue — the automatic tool
//! invocation loop of Section 3.3.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use damocles_meta::journal::{self, JournalOp, JournalWriter, RecoveryReport};
use damocles_meta::{
    persist, Direction, EventMessage, LinkId, MetaDb, MetaError, Oid, OidId, ProjectQuery, Value,
    Workspace,
};

use crate::engine::audit::{AuditKind, AuditLog};
use crate::engine::compile::{CompiledBlueprint, ShardMap};
use crate::engine::error::EngineError;
use crate::engine::event::{Delivery, QueuedEvent};
use crate::engine::exec::{NullExecutor, PreparedRun, ScriptExecutor, ScriptInvocation, ToolCtx};
use crate::engine::invoke::{
    FinishedInvocation, InvokeOutcome, InvokeStats, Invoker, RetryPolicy, WakeFn,
};
use crate::engine::policy::{Policy, PolicyViolation, Strictness};
use crate::engine::queue::{EventQueue, Posted};
use crate::engine::runtime::RuntimeEngine;
use crate::engine::tail::TailHub;
use crate::engine::template;
use crate::engine::trace::{TraceLog, TraceRecord};
use crate::lang::ast::Blueprint;
use crate::lang::{parser, validate};

/// Aggregate results of one [`ProjectServer::process_all`] drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessReport {
    /// Design events processed (queue entries).
    pub events: u64,
    /// OIDs that executed rules across all waves.
    pub deliveries: u64,
    /// Wrapper invocations dispatched.
    pub scripts: u64,
    /// Event messages wrappers posted back.
    pub emitted: u64,
}

impl ProcessReport {
    fn absorb(&mut self, other: ProcessReport) {
        self.events += other.events;
        self.deliveries += other.deliveries;
        self.scripts += other.scripts;
        self.emitted += other.emitted;
    }
}

/// The wave worker count new servers start with: the
/// `DAMOCLES_WAVE_WORKERS` environment variable when it parses (floored
/// at 1), else the machine's available hardware parallelism. Sharded
/// waves are byte-identical to sequential execution at every worker
/// count, so parallelism is the default; `workers 1` (shell) or
/// `--wave-workers 1` (server binary) is the sequential opt-out, and the
/// environment knob lets CI force the parallel path on any suite.
pub fn default_wave_workers() -> usize {
    if let Ok(raw) = std::env::var("DAMOCLES_WAVE_WORKERS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Snapshot file name inside a durability directory.
pub(crate) const SNAPSHOT_FILE: &str = "snapshot.ddb";
/// Journal file name inside a durability directory.
pub(crate) const JOURNAL_FILE: &str = "journal.djl";

/// Durability state of a journaling server: where the checkpoint snapshot
/// and op journal live, the open journal writer, and the fold policy.
#[derive(Debug)]
struct Durability {
    dir: PathBuf,
    writer: JournalWriter,
    /// Epoch of the snapshot the journal extends.
    epoch: u64,
    /// Leadership term the journal is written under (see `fence_term`).
    term: u64,
    /// Fold the journal into a fresh snapshot after this many appended ops.
    checkpoint_every: u64,
    ops_since_checkpoint: u64,
    /// Set when the database was swapped wholesale (`adopt_project`): the
    /// journal on disk no longer describes the in-memory state, so the next
    /// sync point must checkpoint before appending anything.
    force_checkpoint: bool,
}

fn journal_io(e: std::io::Error) -> EngineError {
    EngineError::Journal {
        reason: e.to_string(),
    }
}

/// Reads a durability directory **at rest** and reconstructs the project
/// image at journal cursor `(epoch, seq)`: the snapshot plus its first
/// `seq` journal records, replayed against a scratch database. Nothing in
/// the directory is written or truncated — the offline half of
/// [`ProjectServer::replay_at`], used by `damocles_server --replay-until`
/// and `damocles_inspect` to examine a copied bug-report directory.
/// Returns the recovered object count and the image in
/// [`persist::save_project`] format.
///
/// # Errors
///
/// [`EngineError::Journal`] when the snapshot is unreadable, `epoch` does
/// not match the on-disk snapshot, or `seq` lies beyond the journal.
pub fn replay_dir(
    dir: impl AsRef<Path>,
    epoch: u64,
    seq: u64,
) -> Result<(u64, String), EngineError> {
    let dir = dir.as_ref();
    let snapshot = std::fs::read_to_string(dir.join(SNAPSHOT_FILE)).map_err(journal_io)?;
    let on_disk = journal::snapshot_epoch(&snapshot);
    if epoch != on_disk {
        return Err(EngineError::Journal {
            reason: format!(
                "replay cursor epoch {epoch} is not addressable: the directory \
                 holds epoch {on_disk} (checkpoints fold earlier epochs away)"
            ),
        });
    }
    let bytes = match std::fs::read(dir.join(JOURNAL_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(journal_io(e)),
    };
    let recovered = journal::recover_until(&snapshot, &bytes, Some(seq))?;
    let oids = recovered.db.oid_count() as u64;
    let image = persist::save_project(&recovered.db, &recovered.workspace);
    Ok((oids, image))
}

/// Reads the addressable cursor range of a durability directory **at
/// rest**: the snapshot's epoch and the number of valid journal records
/// extending it, plus the encoded body of every such record (for
/// timeline rendering). A cursor `(epoch, s)` for any `s` up to the
/// returned count is valid input to [`replay_dir`].
///
/// # Errors
///
/// [`EngineError::Journal`] when the snapshot is unreadable or the
/// journal is corrupt mid-file (a torn tail is fine — it is past the
/// valid prefix by definition).
pub fn journal_dir_cursor(dir: impl AsRef<Path>) -> Result<(u64, Vec<String>), EngineError> {
    let dir = dir.as_ref();
    let snapshot = std::fs::read_to_string(dir.join(SNAPSHOT_FILE)).map_err(journal_io)?;
    let epoch = journal::snapshot_epoch(&snapshot);
    let bytes = match std::fs::read(dir.join(JOURNAL_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(journal_io(e)),
    };
    let tail = journal::parse_journal(&bytes)?;
    Ok((epoch, tail.ops.iter().map(JournalOp::encode).collect()))
}

/// How long the blocking drain parks per poll while detached invocations
/// are still in flight (results usually arrive earlier via the condvar).
const INVOKE_POLL: Duration = Duration::from_millis(50);

/// The work-queue journal record for a durably accepted event, or `None`
/// when the event carries no sequence stamp (journaling off at accept) or
/// its target address no longer resolves.
///
/// A free function (not a method) so callers can borrow the queue and the
/// database from disjoint fields at the same time.
fn event_queued_op(db: &MetaDb, ev: &QueuedEvent) -> Option<JournalOp> {
    let seq = ev.seq?;
    let target = db.oid(ev.delivery.anchor()).ok()?.clone();
    Some(JournalOp::EventQueued {
        seq,
        event: ev.event.clone(),
        direction: match ev.direction {
            Direction::Up => "up".to_string(),
            Direction::Down => "down".to_string(),
        },
        propagate: matches!(ev.delivery, Delivery::PropagateFrom(_)),
        target,
        args: ev.args.clone(),
        user: ev.user.clone(),
    })
}

/// The project server.
///
/// Generic over its script executor so tests can use
/// [`RecordingExecutor`](crate::engine::exec::RecordingExecutor) and the
/// `damocles-tools` crate can plug a simulated tool chain in, while the
/// default is the inert [`NullExecutor`].
///
/// # Example
///
/// ```
/// use blueprint_core::engine::server::ProjectServer;
///
/// # fn main() -> Result<(), blueprint_core::engine::error::EngineError> {
/// let mut server = ProjectServer::from_source(r#"
///     blueprint demo
///     view default
///         property uptodate default true
///         when ckin do uptodate = true; post outofdate down done
///         when outofdate do uptodate = false done
///     endview
///     view HDL_model endview
///     view schematic
///         link_from HDL_model move propagates outofdate type derived
///     endview
///     endblueprint
/// "#)?;
/// let hdl = server.checkin("cpu", "HDL_model", "yves", b"module cpu;".to_vec())?;
/// let sch = server.checkin("cpu", "schematic", "yves", b"...".to_vec())?;
/// server.connect_oids(&hdl, &sch)?;
/// server.process_all()?;
///
/// // A new HDL version invalidates the derived schematic.
/// server.checkin("cpu", "HDL_model", "yves", b"module cpu; // v2".to_vec())?;
/// server.process_all()?;
/// assert_eq!(server.prop(&sch, "uptodate").unwrap().as_atom(), "false");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProjectServer<E = NullExecutor> {
    blueprint: Arc<Blueprint>,
    /// The blueprint compiled for the engine; rebuilt whenever the
    /// blueprint changes (`reinit`). Behind an [`Arc`] so a fleet can
    /// share one compilation across every tenant on the same source.
    compiled: Arc<CompiledBlueprint>,
    db: MetaDb,
    workspace: Workspace,
    engine: RuntimeEngine,
    queue: EventQueue,
    audit: AuditLog,
    /// Per-wave execution trace (see [`crate::engine::trace`]):
    /// retention off by default, so the hot path pays nothing until a
    /// `trace on` request flips it.
    trace: TraceLog,
    /// Invoker fault counters already folded into the audit log as
    /// `InvokeRetried` / `InvokeTimedOut` notes (the pool's counters are
    /// cumulative; the server notes deltas).
    seen_invoke_faults: (u64, u64),
    executor: E,
    /// Reusable inbox-drain buffer (see `EventQueue::drain_inbox_into`).
    inbox_buf: Vec<Posted>,
    /// When true, events run through the seed's AST-walking engine path
    /// instead of the compiled dispatch tables — kept for differential
    /// testing and as the benches' baseline.
    ast_dispatch: bool,
    /// Journal + checkpoint state (see [`ProjectServer::enable_journal`]).
    durability: Option<Durability>,
    /// The leadership term this server last journaled (or adopted a
    /// snapshot) under; 1 until a journal or promotion says otherwise.
    term: u64,
    /// Set when a newer leadership term fenced this server (see
    /// [`ProjectServer::fence_term`]): the fencing term. A fenced server
    /// can never commit again — the service layer refuses its mutations
    /// as stale-term, and the journal refuses appends.
    fenced_by: Option<u64>,
    /// Group-commit mode: operation boundaries buffer their journal ops
    /// in memory instead of appending+fsyncing; the owner (the command
    /// loop) calls [`ProjectServer::flush_journal`] once per batch.
    group_commit: bool,
    /// Set when a journal failure *disabled* durability (poisoning), as
    /// opposed to durability being off by configuration. The command
    /// loop consumes it ([`ProjectServer::take_journal_poisoned`]) to
    /// error un-acked mutations of the poisoned window.
    journal_poisoned: bool,
    /// Replication publication point: committed journal records and
    /// checkpoint rollovers are published here for tail subscribers
    /// (see [`crate::engine::tail`]). Shared with the service layer so
    /// the hub survives `Init` server swaps.
    tail: Arc<TailHub>,
    /// Worker threads for the sharded wave path (see
    /// [`ProjectServer::set_wave_workers`]); `1` = sequential.
    wave_workers: usize,
    /// Cached shard partition for the parallel wave path, rebuilt when the
    /// blueprint generation or the database's link topology moves (a
    /// `Connect` that bridges two previously-disjoint components bumps the
    /// topology stamp and thereby the shard-map generation).
    shard_map: Option<ShardMap>,
    /// The async invocation pool running detached tool runs (see
    /// [`crate::engine::invoke`]); inline executors never touch it.
    invoker: Invoker,
    /// `InvokeQueued` records of detached invocations not yet terminal,
    /// kept so a checkpoint can re-seed the fresh journal with them
    /// (work records have no snapshot representation).
    in_flight_ops: BTreeMap<u64, JournalOp>,
    /// Next durable event-queue sequence number.
    next_event_seq: u64,
    /// Next invocation id (monotonic across inline and detached runs).
    next_invoke_id: u64,
    /// Safety valve for `process_all`.
    pub max_events_per_drain: u64,
}

impl ProjectServer<NullExecutor> {
    /// Initializes a server from blueprint source text, validating it.
    ///
    /// # Errors
    ///
    /// Returns parse errors or validation errors (warnings are tolerated,
    /// matching the non-obstructive stance).
    pub fn from_source(source: &str) -> Result<Self, EngineError> {
        let bp = parser::parse(source)?;
        Self::new(bp)
    }

    /// Initializes a server from a parsed blueprint, validating it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] when validation finds errors.
    pub fn new(blueprint: Blueprint) -> Result<Self, EngineError> {
        Self::with_executor(blueprint, NullExecutor)
    }
}

impl<E: ScriptExecutor> ProjectServer<E> {
    /// Initializes a server with a custom script executor.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] when validation finds errors.
    pub fn with_executor(blueprint: Blueprint, executor: E) -> Result<Self, EngineError> {
        validate::check(&blueprint).map_err(|issues| EngineError::Invalid {
            issues: issues.iter().map(ToString::to_string).collect(),
        })?;
        let compiled = Arc::new(CompiledBlueprint::compile(&blueprint));
        Ok(Self::with_shared(Arc::new(blueprint), compiled, executor))
    }

    /// Initializes a server around an **already validated and compiled**
    /// blueprint — the fleet path, where hundreds of tenants loading the
    /// same source share one [`CompiledBlueprint`] allocation through the
    /// registry's content-hash cache instead of compiling per tenant.
    ///
    /// The caller vouches that `compiled` was compiled from `blueprint`
    /// and that the source passed [`validate::check`]; [`with_executor`]
    /// is the checked single-project path.
    ///
    /// [`with_executor`]: ProjectServer::with_executor
    pub fn with_shared(
        blueprint: Arc<Blueprint>,
        compiled: Arc<CompiledBlueprint>,
        executor: E,
    ) -> Self {
        ProjectServer {
            blueprint,
            compiled,
            db: MetaDb::new(),
            workspace: Workspace::new("project"),
            engine: RuntimeEngine::default(),
            queue: EventQueue::new(),
            audit: AuditLog::counters_only(),
            trace: TraceLog::disabled(),
            seen_invoke_faults: (0, 0),
            executor,
            inbox_buf: Vec::new(),
            ast_dispatch: false,
            durability: None,
            term: 1,
            fenced_by: None,
            group_commit: false,
            journal_poisoned: false,
            tail: Arc::new(TailHub::new()),
            wave_workers: default_wave_workers(),
            shard_map: None,
            invoker: Invoker::default(),
            in_flight_ops: BTreeMap::new(),
            next_event_seq: 0,
            next_invoke_id: 0,
            max_events_per_drain: 1_000_000,
        }
    }

    /// Replaces the blueprint — "re-initializing the BluePrint mechanism"
    /// between project phases (Section 3.2). The meta-database, workspace
    /// and queue are kept.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] when the new blueprint fails
    /// validation; the old blueprint stays in force.
    pub fn reinit(&mut self, blueprint: Blueprint) -> Result<(), EngineError> {
        validate::check(&blueprint).map_err(|issues| EngineError::Invalid {
            issues: issues.iter().map(ToString::to_string).collect(),
        })?;
        self.compiled = Arc::new(CompiledBlueprint::compile(&blueprint));
        self.blueprint = Arc::new(blueprint);
        Ok(())
    }

    /// Batch re-evaluation of every continuous assignment on every live
    /// OID — the deferred half of the `eager_lets` ablation (with eager
    /// evaluation disabled, `let` properties are only refreshed when this is
    /// called, e.g. once per query burst instead of once per delivery).
    ///
    /// Returns the number of `let` properties written.
    ///
    /// # Errors
    ///
    /// Propagates database errors (none expected on a live database).
    pub fn refresh_lets(&mut self) -> Result<u64, EngineError> {
        use crate::engine::eval::EvalCtx;
        let ids: Vec<OidId> = self.db.iter_oids().map(|(id, _)| id).collect();
        let mut written = 0u64;
        for id in ids {
            // The compiled per-view tables hold the default view's lets and
            // the view's own pre-merged in evaluation order.
            let table = {
                let view = &self.db.oid(id)?.view;
                self.compiled.table_for_view(view.as_str())
            };
            // Evaluate against a stable snapshot of the entry's properties.
            let values: Vec<(String, Value)> = {
                let entry = self.db.entry(id)?;
                let ctx = EvalCtx {
                    props: &entry.props,
                    overlay: None,
                    oid: &entry.oid,
                    event: "refresh",
                    args: &[],
                    user: "server",
                    date: 0,
                };
                table
                    .lets()
                    .iter()
                    .map(|l| (l.name.clone(), ctx.eval(&l.expr)))
                    .collect()
            };
            for (name, value) in values {
                self.db.set_prop(id, &name, value)?;
                written += 1;
            }
        }
        self.journal_sync(None)?;
        Ok(written)
    }

    /// Adopts a restored database and workspace (e.g. from
    /// [`damocles_meta::persist::load_project`]), discarding the current
    /// ones. Any queued events are dropped — their addresses belong to the
    /// old database.
    ///
    /// With journaling enabled, the on-disk journal no longer describes the
    /// adopted state; a checkpoint is forced at the next sync point (call
    /// [`ProjectServer::checkpoint`] immediately if you need the window
    /// closed now).
    pub fn adopt_project(&mut self, db: MetaDb, workspace: Workspace) {
        while self.queue.dequeue().is_some() {}
        for _ in self.queue.drain_inbox() {}
        // Detached jobs were captured against the old database; a fresh
        // pool (same policies and wake) replaces them. On a durable server
        // the journal's in-flight records re-dispatch them instead.
        let (default_policy, overrides) = self.invoker.policies();
        let wake = self.invoker.take_wake();
        let mut fresh = Invoker::default();
        fresh.set_policy(None, default_policy);
        for (script, policy) in &overrides {
            fresh.set_policy(Some(script), *policy);
        }
        fresh.set_wake(wake);
        self.invoker = fresh;
        self.in_flight_ops.clear();
        self.db = db;
        self.workspace = workspace;
        // The engine's per-view dispatch cache is keyed by the old
        // database's view symbols; the adopted database may intern the
        // same view names in a different order. The shard map is likewise
        // per-database (its topology stamp could coincide by value).
        self.engine.invalidate_dispatch_cache();
        self.shard_map = None;
        if let Some(d) = self.durability.as_mut() {
            self.db.attach_journal();
            d.force_checkpoint = true;
        }
    }

    // ------------------------------------------------------------------
    // Durability: op journal + incremental checkpoints
    // ------------------------------------------------------------------

    /// Turns on durability: writes an initial checkpoint (snapshot +
    /// fresh journal) under `dir`, attaches a journal recorder to the
    /// database, and from then on appends every mutation's op record at
    /// each server operation boundary, folding the journal into a fresh
    /// snapshot every `checkpoint_every` ops (and on
    /// [`ProjectServer::checkpoint`]). Returns the checkpoint epoch.
    ///
    /// The durability cost between checkpoints scales with the mutation
    /// rate, not the database size — the point of the journal over plain
    /// [`damocles_meta::persist::save`] snapshots.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] on file-system failures.
    pub fn enable_journal(
        &mut self,
        dir: impl AsRef<Path>,
        checkpoint_every: u64,
    ) -> Result<u64, EngineError> {
        self.enable_journal_inner(dir.as_ref(), checkpoint_every, 0, None)
    }

    /// The failover half of [`ProjectServer::enable_journal`]: enables
    /// journaling under an explicit fencing `term` (the promotion bumps
    /// it past the deposed leader's) with an epoch floor — a promoted
    /// follower that consumed the leader's stream up to epoch *k* must
    /// journal at epoch ≥ *k*+1 so its reign never reuses a coordinate
    /// the old reign published. Returns the promoted epoch.
    ///
    /// # Errors
    ///
    /// [`EngineError::Fenced`] when this server was already fenced by a
    /// term ≥ `term`; [`EngineError::Journal`] on file-system failures.
    pub fn promote_journal(
        &mut self,
        dir: impl AsRef<Path>,
        checkpoint_every: u64,
        min_epoch: u64,
        term: u64,
    ) -> Result<u64, EngineError> {
        if let Some(fence) = self.fenced_by.filter(|f| *f >= term) {
            return Err(EngineError::Fenced {
                term,
                current: fence,
            });
        }
        // A promotion must strictly advance the reign: re-promoting at
        // (or below) the term already in force would let two nodes
        // journal under one term — exactly the dual-commit fencing
        // exists to prevent.
        let current = self.current_term();
        if term <= current {
            return Err(EngineError::Fenced { term, current });
        }
        self.fenced_by = None;
        self.enable_journal_inner(dir.as_ref(), checkpoint_every, min_epoch, Some(term))
    }

    fn enable_journal_inner(
        &mut self,
        dir: &Path,
        checkpoint_every: u64,
        min_epoch: u64,
        term: Option<u64>,
    ) -> Result<u64, EngineError> {
        let dir = dir.to_path_buf();
        std::fs::create_dir_all(&dir).map_err(journal_io)?;
        // Continue the epoch sequence (and, absent an explicit promotion
        // term, the term) of any previous incarnation so a stale journal
        // from before this enable can never pass the (epoch, term) match
        // against a new snapshot. Only a MISSING snapshot means a fresh
        // start; an unreadable one is an error (enable would otherwise
        // overwrite state the operator may still want).
        let (on_disk_epoch, on_disk_term) = match std::fs::read_to_string(dir.join(SNAPSHOT_FILE)) {
            Ok(s) => (journal::snapshot_epoch(&s), journal::snapshot_term(&s)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (0, self.term),
            Err(e) => return Err(journal_io(e)),
        };
        let epoch = (on_disk_epoch + 1).max(min_epoch);
        let term = term.unwrap_or(on_disk_term);
        let (writer, image) =
            Self::write_checkpoint_files(&dir, epoch, term, &self.db, &self.workspace)?;
        self.db.attach_journal();
        self.journal_poisoned = false;
        self.term = term;
        self.tail.publish_enable(epoch, term, image);
        self.durability = Some(Durability {
            dir,
            writer,
            epoch,
            term,
            checkpoint_every: checkpoint_every.max(1),
            ops_since_checkpoint: 0,
            force_checkpoint: false,
        });
        // Events queued before this enable predate the journal: stamp them
        // with sequence numbers and record their acceptance now, so the
        // fresh journal's pending-work scan covers the whole queue.
        let mut stamped = Vec::new();
        {
            let db = &self.db;
            let mut next = self.next_event_seq;
            for ev in self.queue.iter_mut() {
                if ev.seq.is_some() {
                    continue;
                }
                ev.seq = Some(next);
                next += 1;
                if let Some(op) = event_queued_op(db, ev) {
                    stamped.push(op);
                }
            }
            self.next_event_seq = next;
        }
        for op in stamped {
            self.db.record_extra(op);
        }
        self.journal_sync(None)?;
        Ok(epoch)
    }

    /// Whether durability is enabled.
    pub fn journal_enabled(&self) -> bool {
        self.durability.is_some()
    }

    /// The current checkpoint epoch, when journaling.
    pub fn journal_epoch(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.epoch)
    }

    /// Ops appended to the current journal since the last checkpoint.
    pub fn journal_records(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.writer.record_count())
    }

    /// The durability directory, when journaling.
    pub fn journal_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// The leadership term in force: the open journal's, or the last
    /// term this server journaled / adopted under (1 for a server that
    /// never saw a failover).
    pub fn current_term(&self) -> u64 {
        self.durability.as_ref().map_or(self.term, |d| d.term)
    }

    /// The fencing term, when a newer reign fenced this server (see
    /// [`ProjectServer::fence_term`]). The service layer consults this
    /// before every mutation.
    pub fn fenced_by(&self) -> Option<u64> {
        self.fenced_by
    }

    /// Fences this server out of leadership: a coordinator (or a revived
    /// ex-leader's operator) announces that term `term` now holds the
    /// reign. If `term` is newer than this server's, the server becomes
    /// permanently read-only — durability is closed (the on-disk journal
    /// stays, a valid artifact of the old reign), the tail hub publishes
    /// its end so subscribers fail over, and every later mutation or
    /// journal append is refused as stale-term. Returns the term this
    /// server held.
    ///
    /// Any journal ops still buffered (group-commit window) are
    /// discarded un-appended: they were never acked as durable, and
    /// appending them under a deposed term could dual-commit against the
    /// new reign's journal.
    ///
    /// # Errors
    ///
    /// [`EngineError::Fenced`] when `term` is not newer than the term
    /// this server already holds — the fence request itself is stale.
    pub fn fence_term(&mut self, term: u64) -> Result<u64, EngineError> {
        let current = self.current_term();
        if term <= current {
            return Err(EngineError::Fenced { term, current });
        }
        self.term = current;
        self.fenced_by = Some(term);
        let _discarded = self.db.drain_journal_ops();
        if self.durability.take().is_some() {
            self.db.detach_journal();
            self.tail.publish_disable();
        }
        Ok(current)
    }

    /// The replication publication point: tail subscribers read committed
    /// journal records and checkpoint rollovers from here (see
    /// [`crate::engine::tail`]).
    pub fn tail_hub(&self) -> Arc<TailHub> {
        Arc::clone(&self.tail)
    }

    /// Replaces the tail hub — the service layer shares one hub across
    /// `Init` server swaps so live subscriptions survive by address.
    ///
    /// If journaling is already enabled, the committed on-disk state
    /// (snapshot + the journal's complete records) is published to the
    /// new hub so subscribers can bootstrap; the in-memory op buffer, not
    /// yet fsynced, is intentionally excluded and publishes at its flush.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] when the on-disk state cannot be read
    /// back (the hub is left disabled; durability itself is unaffected).
    pub fn set_tail_hub(&mut self, hub: Arc<TailHub>) -> Result<(), EngineError> {
        self.tail = hub;
        let Some(d) = self.durability.as_ref() else {
            return Ok(());
        };
        let snapshot = std::fs::read_to_string(d.dir.join(SNAPSHOT_FILE)).map_err(journal_io)?;
        let bytes = std::fs::read(d.dir.join(JOURNAL_FILE)).map_err(journal_io)?;
        let text = String::from_utf8_lossy(&bytes);
        let mut lines = text.split_inclusive('\n');
        let _header = lines.next();
        self.tail.publish_enable(d.epoch, d.term, snapshot);
        self.tail.publish_records(
            // Only newline-terminated lines are committed records; a
            // torn fragment (impossible outside a crash) is not.
            lines
                .filter(|l| l.ends_with('\n'))
                .map(|l| l.trim_end().to_string()),
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Replication follower surface
    // ------------------------------------------------------------------

    /// Adopts a leader checkpoint snapshot (a `persist` project image, as
    /// carried by a `tail-reset` frame) as this server's whole state —
    /// the follower bootstrap step. Returns the live object count.
    ///
    /// # Errors
    ///
    /// [`EngineError::Meta`] when the image fails to parse.
    pub fn adopt_replica_image(&mut self, image: &str) -> Result<usize, EngineError> {
        let (db, workspace) = persist::load_project(image).map_err(EngineError::Meta)?;
        let oids = db.oid_count();
        self.adopt_project(db, workspace);
        Ok(oids)
    }

    /// The journal-tag map (tag → link address) for the current database
    /// image, tags assigned in image order — exactly the assignment the
    /// leader makes at each checkpoint, so a follower rebuilds it after
    /// every bootstrap and epoch rollover.
    pub fn replica_link_tags(&self) -> HashMap<u64, LinkId> {
        self.db
            .links_in_image_order()
            .into_iter()
            .enumerate()
            .map(|(i, id)| (i as u64, id))
            .collect()
    }

    /// Applies one streamed journal record through the normal database
    /// API — the follower's unit of replication (see
    /// [`damocles_meta::journal::apply_op`]). `tags` is the follower's
    /// link-tag map, maintained across calls.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] when the op does not apply — the stream
    /// does not match this follower's image (it must re-bootstrap).
    pub fn apply_replica_op(
        &mut self,
        op: &JournalOp,
        tags: &mut HashMap<u64, LinkId>,
    ) -> Result<(), EngineError> {
        journal::apply_op(&mut self.db, &mut self.workspace, tags, op)
            .map_err(|reason| EngineError::Journal { reason })
    }

    /// The full project image (database + workspace payloads) — what a
    /// byte-identical follower must reproduce.
    pub fn project_image(&self) -> String {
        persist::save_project(&self.db, &self.workspace)
    }

    /// Folds the journal into a fresh snapshot: writes the full image at
    /// the next epoch (atomically), starts an empty journal, and re-bases
    /// the database's link tags. Returns the new epoch.
    ///
    /// Crash-safe ordering: the snapshot lands (tmp + rename) *before* the
    /// journal resets, and recovery ignores a journal whose header epoch
    /// does not match the snapshot — so dying between the two steps loses
    /// nothing and corrupts nothing.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] when journaling is not enabled or on
    /// file-system failures.
    pub fn checkpoint(&mut self) -> Result<u64, EngineError> {
        if self.durability.is_none() {
            return Err(EngineError::Journal {
                reason: "journaling is not enabled (call enable_journal first)".to_string(),
            });
        }
        // Buffered ops are already reflected in the live database; the
        // fresh snapshot subsumes them. Dropping any here (or folding a
        // wholesale-adopted database) makes the rollover non-seamless for
        // tail subscribers: the stream never carried those changes, so a
        // caught-up follower must re-bootstrap rather than take the cheap
        // epoch marker.
        let dropped_ops = self.db.drain_journal_ops().len();
        let (dir, epoch, term, adopted) = {
            let d = self.durability.as_ref().expect("checked above");
            (d.dir.clone(), d.epoch + 1, d.term, d.force_checkpoint)
        };
        let (writer, image) =
            match Self::write_checkpoint_files(&dir, epoch, term, &self.db, &self.workspace) {
                Ok(w) => w,
                Err(e) => {
                    // The snapshot may have landed at the new epoch while the
                    // journal did not reset; continuing to append would write
                    // ops recovery must ignore. Disable durability loudly —
                    // recorder included, or the db would buffer ops forever.
                    self.durability = None;
                    self.db.detach_journal();
                    self.journal_poisoned = true;
                    self.tail.publish_disable();
                    return Err(e);
                }
            };
        // Work records — still-queued events, in-flight detached
        // invocations — have no snapshot representation: re-seed the fresh
        // journal with them so recovery from the new epoch still sees the
        // accepted-but-unfinished set. This stays consistent with the
        // buffered drop above: a terminal record dropped there had its
        // queued record leave the pending sets too.
        let mut carried: Vec<JournalOp> = self
            .queue
            .iter()
            .filter_map(|ev| event_queued_op(&self.db, ev))
            .collect();
        carried.extend(self.in_flight_ops.values().cloned());
        let d = self.durability.as_mut().expect("checked above");
        d.writer = writer;
        d.epoch = epoch;
        d.ops_since_checkpoint = 0;
        d.force_checkpoint = false;
        let reseed = |d: &mut Durability| -> Result<(), std::io::Error> {
            for op in &carried {
                d.writer.append(op)?;
            }
            if !carried.is_empty() {
                d.writer.sync()?;
            }
            Ok(())
        };
        if let Err(e) = reseed(d) {
            self.durability = None;
            self.db.detach_journal();
            self.journal_poisoned = true;
            self.tail.publish_disable();
            return Err(EngineError::Journal {
                reason: format!("checkpoint re-seed failed, durability disabled: {e}"),
            });
        }
        // Re-tag links in image order so tail ops and the snapshot agree.
        self.db.attach_journal();
        self.tail
            .publish_checkpoint(epoch, term, image, dropped_ops == 0 && !adopted);
        if !carried.is_empty() {
            self.tail.publish_records(
                carried
                    .iter()
                    .enumerate()
                    .map(|(i, op)| journal::encode_record(i as u64, op).trim_end().to_string()),
            );
        }
        Ok(epoch)
    }

    /// Restores the project from a durability directory: loads
    /// `snapshot + journal tail`, replays the tail through the normal
    /// database API (rebuilding indices and interned bitsets rather than
    /// trusting them), adopts the result, and folds it into a fresh
    /// checkpoint so journaling continues cleanly from the recovered
    /// state.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] when the snapshot is unreadable, the
    /// journal is corrupt beyond a torn tail, or a record fails to replay.
    pub fn recover_journal(
        &mut self,
        dir: impl AsRef<Path>,
        checkpoint_every: u64,
    ) -> Result<RecoveryReport, EngineError> {
        let dir = dir.as_ref().to_path_buf();
        let snapshot = std::fs::read_to_string(dir.join(SNAPSHOT_FILE)).map_err(journal_io)?;
        // A MISSING journal file is a valid (empty) tail — the crash may
        // have hit before the first journal write. Any other read failure
        // must surface: proceeding would recover the snapshot alone and
        // then truncate the unread journal, destroying fsynced ops.
        let journal_bytes = match std::fs::read(dir.join(JOURNAL_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(journal_io(e)),
        };
        let recovered = journal::recover(&snapshot, &journal_bytes)?;
        self.durability = None;
        self.adopt_project(recovered.db, recovered.workspace);
        // Recovery continues the on-disk reign: the fresh checkpoint is
        // written under the recovered snapshot's term (promotion, which
        // BUMPS the term, goes through `promote_journal` instead).
        self.term = recovered.report.term;
        self.enable_journal(dir, checkpoint_every)?;
        // Work records survive even a stale journal (they have no
        // snapshot representation): re-enqueue unprocessed events and
        // re-dispatch in-flight invocations under their original ids.
        self.restore_pending_work(recovered.pending)?;
        Ok(recovered.report)
    }

    /// Reconstructs the historical project image at journal cursor
    /// `(epoch, seq)`: the snapshot of that epoch plus its first `seq`
    /// journal records, replayed through the recovery path against a
    /// **scratch** database — the live server is untouched. Returns the
    /// recovered object count and the image in
    /// [`persist::save_project`] format.
    ///
    /// Only the current epoch is addressable (checkpoints fold earlier
    /// journals away). `stat` reports the live cursor; replaying at it
    /// reproduces the live image byte for byte, and replaying at a
    /// smaller `seq` travels back in time — a bug report becomes a
    /// journal directory plus a cursor.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] when journaling is off, `epoch` is not
    /// the current epoch, `seq` lies beyond the journal, or the on-disk
    /// files cannot be read or replayed.
    pub fn replay_at(&mut self, epoch: u64, seq: u64) -> Result<(u64, String), EngineError> {
        // The on-disk journal must cover every acked op before the read;
        // under group commit the command loop has already flushed (replay
        // is a barrier request), so this is usually a no-op.
        self.flush_journal()?;
        let Some(d) = self.durability.as_ref() else {
            return Err(EngineError::Journal {
                reason: "replay requires journaling (enable a journal first)".to_string(),
            });
        };
        if epoch != d.epoch {
            return Err(EngineError::Journal {
                reason: format!(
                    "replay cursor epoch {epoch} is not addressable: only the current \
                     epoch {} is on disk (checkpoints fold earlier epochs away)",
                    d.epoch
                ),
            });
        }
        replay_dir(&d.dir, epoch, seq)
    }

    fn write_checkpoint_files(
        dir: &Path,
        epoch: u64,
        term: u64,
        db: &MetaDb,
        workspace: &Workspace,
    ) -> Result<(JournalWriter, String), EngineError> {
        let image = journal::write_snapshot(db, workspace, epoch, term);
        journal::write_file_atomic(dir.join(SNAPSHOT_FILE), &image).map_err(journal_io)?;
        let writer =
            JournalWriter::create(dir.join(JOURNAL_FILE), epoch, term).map_err(journal_io)?;
        Ok((writer, image))
    }

    /// Records an optional server-level op (e.g. a payload record) in
    /// order with the database's buffered ops, then — outside group-commit
    /// mode — flushes everything to the journal. Under group commit the
    /// ops stay buffered until the owner's [`ProjectServer::flush_journal`]
    /// at the batch boundary. No-op without durability.
    fn journal_sync(&mut self, extra: Option<JournalOp>) -> Result<(), EngineError> {
        if self.durability.is_none() {
            return Ok(());
        }
        if let Some(op) = extra {
            // Through the recorder, not a side buffer, so the op keeps its
            // position relative to surrounding database mutations even
            // when several operations' ops drain in one batch.
            self.db.record_extra(op);
        }
        if self.group_commit {
            return Ok(());
        }
        self.flush_journal()
    }

    /// Enters or leaves group-commit mode. While on, operation boundaries
    /// (`checkin`, `process_all`, …) buffer their journal ops in memory;
    /// one [`ProjectServer::flush_journal`] appends and fsyncs the whole
    /// batch — the group-commit discipline that amortizes the
    /// ~per-sync-dominated durability cost across many requests. Leaving
    /// the mode flushes whatever is pending.
    ///
    /// Crash semantics: dying before the flush loses the in-memory batch,
    /// but the on-disk journal still ends at the previous batch boundary —
    /// recovery replays a valid prefix, never a torn batch.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] from the flush when leaving the mode.
    pub fn set_group_commit(&mut self, on: bool) -> Result<(), EngineError> {
        let was = self.group_commit;
        self.group_commit = on;
        if was && !on {
            self.flush_journal()?;
        }
        Ok(())
    }

    /// Whether group-commit mode is on.
    pub fn group_commit(&self) -> bool {
        self.group_commit
    }

    /// Takes (and clears) the poison marker: `true` when a journal
    /// failure disabled durability since the last call. Distinct from
    /// "journaling is off" — a fresh or deliberately un-journaled server
    /// never reports poisoning, while a failure does even after the
    /// server was replaced or re-enabled.
    pub fn take_journal_poisoned(&mut self) -> bool {
        std::mem::take(&mut self.journal_poisoned)
    }

    /// Appends all buffered journal ops and syncs once; folds into a
    /// checkpoint when the policy says so. No-op without durability.
    ///
    /// Failure semantics: an append/sync error **disables durability**
    /// (poison) and surfaces the error. The drained ops cannot be retried —
    /// the failed write may have left a partial record on disk, and
    /// appending after it would turn a recoverable torn tail into mid-file
    /// corruption. Poisoning keeps the on-disk journal a valid prefix of
    /// history and makes the gap loud instead of silent.
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] on append/sync/checkpoint failures.
    pub fn flush_journal(&mut self) -> Result<(), EngineError> {
        // A fenced server must never append again: even with durability
        // already closed, any ops that slipped into the buffer are
        // refused loudly rather than silently dropped.
        if let Some(fence) = self.fenced_by {
            if !self.db.drain_journal_ops().is_empty() {
                return Err(EngineError::Fenced {
                    term: self.term,
                    current: fence,
                });
            }
            return Ok(());
        }
        if self.durability.is_none() {
            return Ok(());
        }
        if self.durability.as_ref().is_some_and(|d| d.force_checkpoint) {
            // The on-disk journal predates an adopt_project; fold first.
            self.checkpoint()?;
        }
        let ops = self.db.drain_journal_ops();
        let d = self.durability.as_mut().expect("checked above");
        let base_seq = d.writer.record_count();
        let appended = {
            let write_all = |d: &mut Durability| -> Result<u64, std::io::Error> {
                let mut appended = 0u64;
                for op in ops.iter() {
                    d.writer.append(op)?;
                    appended += 1;
                }
                if appended > 0 {
                    d.writer.sync()?;
                }
                Ok(appended)
            };
            match write_all(d) {
                Ok(n) => n,
                Err(e) => {
                    self.durability = None;
                    self.db.detach_journal();
                    self.journal_poisoned = true;
                    self.tail.publish_disable();
                    return Err(EngineError::Journal {
                        reason: format!("journal append failed, durability disabled: {e}"),
                    });
                }
            }
        };
        if appended > 0 {
            // Publish to tail subscribers strictly AFTER the fsync: a
            // record a follower ever sees is on the leader's stable
            // storage, so replication can never run ahead of durability.
            self.tail
                .publish_records(ops.iter().enumerate().map(|(i, op)| {
                    journal::encode_record(base_seq + i as u64, op)
                        .trim_end()
                        .to_string()
                }));
        }
        if appended > 0 {
            let d = self.durability.as_mut().expect("checked above");
            d.ops_since_checkpoint += appended;
            if d.ops_since_checkpoint >= d.checkpoint_every {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Replaces the blueprint from source text.
    ///
    /// # Errors
    ///
    /// Parse or validation errors; the old blueprint stays in force.
    pub fn reinit_from_source(&mut self, source: &str) -> Result<(), EngineError> {
        let bp = parser::parse(source)?;
        self.reinit(bp)
    }

    /// Sets the engine policy (builder style).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.engine = RuntimeEngine::new(policy);
        self
    }

    /// Turns on full audit-record retention (builder style).
    pub fn with_audit_retention(mut self) -> Self {
        self.audit = AuditLog::retaining();
        self
    }

    /// Routes events through the seed's AST-walking engine path instead of
    /// the compiled dispatch tables (builder style) — the baseline side of
    /// the differential tests and the `propagation`/`fig1_event_queue`
    /// benches.
    pub fn with_ast_dispatch(mut self) -> Self {
        self.ast_dispatch = true;
        self
    }

    /// Whether the AST-walking dispatch path is in force.
    pub fn uses_ast_dispatch(&self) -> bool {
        self.ast_dispatch
    }

    /// Sets the wave worker count for [`ProjectServer::process_all`]
    /// (clamped to at least 1). With `n > 1` each drained batch of queued
    /// events executes as link-connected shards across `n` worker
    /// threads; `1` keeps the sequential path. Results are identical
    /// either way — the sharded path is differentially tested against the
    /// sequential one — so this knob trades threads for wall-clock only.
    ///
    /// Within one parallel batch, wrapper invocations are dispatched
    /// after the whole batch's waves, in event order — and with a
    /// detached executor their results re-enter the queue in that same
    /// dispatch order (the pool's ordered harvest, see
    /// [`crate::engine::invoke`]), so the final image matches the
    /// sequential path even though tool runs overlap freely.
    pub fn set_wave_workers(&mut self, workers: usize) {
        self.wave_workers = workers.max(1);
    }

    /// The wave worker count in force.
    pub fn wave_workers(&self) -> usize {
        self.wave_workers
    }

    /// Cumulative `(worker_ns, apply_ns)` phase split of the sharded wave
    /// batches this server has run — see
    /// [`RuntimeEngine::batch_phase_ns`].
    pub fn wave_phase_ns(&self) -> (u64, u64) {
        self.engine.batch_phase_ns()
    }

    // ------------------------------------------------------------------
    // Async invocation pool
    // ------------------------------------------------------------------

    /// Live counters of the async invocation pool (pending, running,
    /// retrying, and terminal totals) — surfaced through `Request::Stat`.
    pub fn invoke_stats(&self) -> InvokeStats {
        self.invoker.stats()
    }

    /// Sets the retry policy detached runs of `script` use, or the pool
    /// default when `script` is `None`. Applies to subsequent dispatches.
    pub fn set_retry_policy(&mut self, script: Option<&str>, policy: RetryPolicy) {
        self.invoker.set_policy(script, policy);
    }

    /// Every configured retry policy (the default plus per-script
    /// overrides) — the service re-installs them across `Init` swaps.
    pub fn retry_policies(&self) -> (RetryPolicy, Vec<(String, RetryPolicy)>) {
        self.invoker.policies()
    }

    /// Arms (or clears) the callback fired when a detached result becomes
    /// harvestable — the command loop's "pump me" signal.
    pub fn set_invoke_wake(&self, wake: Option<WakeFn>) {
        self.invoker.set_wake(wake);
    }

    /// Detached invocations submitted and not yet fed back.
    pub fn invocations_in_flight(&self) -> usize {
        self.invoker.in_flight()
    }

    /// Blocks up to `timeout` for a harvestable detached result; `true`
    /// when one is ready (polling loops around
    /// [`ProjectServer::process_round`]).
    pub fn wait_invocations(&self, timeout: Duration) -> bool {
        self.invoker.wait_harvest(timeout)
    }

    /// The shard partition the parallel wave path would use right now.
    /// A stale cached [`ShardMap`] is first offered the database's
    /// topology delta log ([`ShardMap::try_update`]) — mid-session
    /// `Connect`/`PROPAGATE` growth patches in as pure union-find merges;
    /// only severing changes (or delta-log truncation, or a blueprint
    /// swap) pay for a full rebuild. Also the observability hook for
    /// tests and tooling (group count, runtime merges, incremental
    /// updates, generation).
    pub fn shard_map(&mut self) -> &ShardMap {
        let updated = match self.shard_map.as_mut() {
            Some(map) => map.try_update(&self.compiled, &self.db),
            None => false,
        };
        if !updated {
            self.shard_map = Some(ShardMap::build(&self.compiled, &self.db));
        }
        self.shard_map.as_ref().expect("built above")
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The active blueprint.
    pub fn blueprint(&self) -> &Blueprint {
        &self.blueprint
    }

    /// The active blueprint's compiled form.
    pub fn compiled(&self) -> &CompiledBlueprint {
        &self.compiled
    }

    /// A shared handle to the compiled blueprint — cheap to clone, and
    /// pointer-comparable (`Arc::ptr_eq`) to prove two tenants share one
    /// compilation through the fleet's blueprint cache.
    pub fn compiled_shared(&self) -> Arc<CompiledBlueprint> {
        Arc::clone(&self.compiled)
    }

    /// The meta-database (read-only; mutate through server operations).
    pub fn db(&self) -> &MetaDb {
        &self.db
    }

    /// The workspace.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Clears the audit log (counters and records).
    pub fn reset_audit(&mut self) {
        self.audit.reset();
    }

    /// The execution trace log (see [`crate::engine::trace`]).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Turns per-wave trace retention on or off. Turning it off drops any
    /// captured records; while off, wave execution pays no trace cost.
    pub fn set_trace_retention(&mut self, on: bool) {
        self.trace.set_retaining(on);
    }

    /// Drains the captured trace records, leaving retention as it is —
    /// the `trace get` request, so repeated polls see each record once
    /// and the server never accumulates an unbounded trace.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.trace.take_records()
    }

    /// The engine policy in force.
    pub fn policy(&self) -> &Policy {
        &self.engine.policy
    }

    /// Mutable policy access (tighten/loosen between phases).
    pub fn policy_mut(&mut self) -> &mut Policy {
        &mut self.engine.policy
    }

    /// The script executor.
    pub fn executor(&self) -> &E {
        &self.executor
    }

    /// Mutable executor access.
    pub fn executor_mut(&mut self) -> &mut E {
        &mut self.executor
    }

    /// Read-only query facade.
    pub fn query(&self) -> ProjectQuery<'_> {
        ProjectQuery::new(&self.db)
    }

    /// Events currently queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// A property of an OID, by triplet.
    pub fn prop(&self, oid: &Oid, name: &str) -> Option<Value> {
        let id = self.db.resolve(oid)?;
        self.db.get_prop(id, name).ok().flatten().cloned()
    }

    // ------------------------------------------------------------------
    // Design activities
    // ------------------------------------------------------------------

    /// Checks new design data in: creates the next version OID, applies
    /// template rules, records the owner, and queues a `ckin` event targeted
    /// at the new OID (direction `up`, as in the paper's wire example).
    ///
    /// # Errors
    ///
    /// Fails on frozen views (policy), check-out conflicts, or database
    /// errors.
    pub fn checkin(
        &mut self,
        block: &str,
        view: &str,
        user: &str,
        payload: Vec<u8>,
    ) -> Result<Oid, EngineError> {
        if self.engine.policy.is_frozen(view) {
            return Err(PolicyViolation::FrozenView {
                view: view.to_string(),
            }
            .into());
        }
        let (id, oid) = self
            .workspace
            .checkin(&mut self.db, block, view, user, payload)?;
        template::apply_on_create(&self.blueprint, &mut self.db, id, &mut self.audit)?;
        self.db
            .set_prop(id, "owner", Value::Str(user.to_string()))?;
        self.accept_event(QueuedEvent::target("ckin", Direction::Up, id, user));
        // Journal the payload alongside the meta-data ops so recovery can
        // rebuild the workspace too, not just the database.
        let data_op = self.durability.is_some().then(|| JournalOp::Data {
            oid: oid.clone(),
            payload: self
                .workspace
                .datum(id)
                .map(|d| d.content.clone())
                .unwrap_or_default(),
        });
        self.journal_sync(data_op)?;
        Ok(oid)
    }

    /// Checks a `(block, view)` chain out for `user`.
    ///
    /// # Errors
    ///
    /// Fails on check-out conflicts.
    pub fn checkout(&mut self, block: &str, view: &str, user: &str) -> Result<(), EngineError> {
        self.workspace.checkout(&self.db, block, view, user)?;
        Ok(())
    }

    /// Creates a bare OID (no payload) with template application — for tools
    /// and setup code. No `ckin` event is queued.
    ///
    /// # Errors
    ///
    /// Fails on duplicate triplets.
    pub fn create_object(&mut self, oid: Oid) -> Result<OidId, EngineError> {
        let id = self.db.create_oid(oid)?;
        template::apply_on_create(&self.blueprint, &mut self.db, id, &mut self.audit)?;
        self.journal_sync(None)?;
        Ok(id)
    }

    /// Relates two OIDs (by address), attaching the template's
    /// PROPAGATE/TYPE annotation.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or self-links.
    pub fn connect(&mut self, from: OidId, to: OidId) -> Result<(), EngineError> {
        template::instantiate_link(&self.blueprint, &mut self.db, from, to)?;
        self.journal_sync(None)?;
        Ok(())
    }

    /// Relates two OIDs by triplet.
    ///
    /// # Errors
    ///
    /// Fails when either triplet is unknown.
    pub fn connect_oids(&mut self, from: &Oid, to: &Oid) -> Result<(), EngineError> {
        let f = self.db.require(from)?;
        let t = self.db.require(to)?;
        self.connect(f, t)
    }

    /// Resolves a triplet to its address.
    ///
    /// # Errors
    ///
    /// Fails when the triplet is unknown.
    pub fn resolve(&self, oid: &Oid) -> Result<OidId, EngineError> {
        Ok(self.db.require(oid)?)
    }

    // ------------------------------------------------------------------
    // Event traffic
    // ------------------------------------------------------------------

    /// Queues an event message on behalf of `user`.
    ///
    /// # Errors
    ///
    /// Fails when the target OID does not exist.
    pub fn post(&mut self, message: &EventMessage, user: &str) -> Result<(), EngineError> {
        let ev = QueuedEvent::from_message(&self.db, message, user)?;
        self.accept_event(ev);
        // A post's ack means "accepted and queued" — with journaling on,
        // the acceptance record is durable (or buffered for the batch
        // flush under group commit) before the ack.
        self.journal_sync(None)?;
        Ok(())
    }

    /// Queues an event from a raw `postEvent` line.
    ///
    /// # Errors
    ///
    /// Fails on wire-format errors or unknown targets.
    pub fn post_line(&mut self, line: &str, user: &str) -> Result<(), EngineError> {
        let message: EventMessage = line.parse::<EventMessage>().map_err(EngineError::Meta)?;
        self.post(&message, user)
    }

    /// A cloneable handle that concurrent wrapper threads can post through;
    /// the messages are folded into FIFO order at the next
    /// [`ProjectServer::process_all`].
    pub fn sender(&self) -> crossbeam::channel::Sender<crate::engine::queue::Posted> {
        self.queue.sender()
    }

    /// Drains the event queue to quiescence: processes every queued event,
    /// dispatches wrapper invocations, and feeds posted messages back until
    /// nothing is left. With a detached executor the drain also waits for
    /// every in-flight tool run to land and feeds its results through, so
    /// "quiescent" still means *fully* quiescent — and because results
    /// re-enter the queue in dispatch order (the pool's ordered harvest,
    /// see [`crate::engine::invoke`]), the final image is independent of
    /// worker scheduling and fault timing. Command loops that must not
    /// block behind slow tools use [`ProjectServer::process_round`].
    ///
    /// # Errors
    ///
    /// Policy violations under strict policies, database errors, or
    /// [`EngineError::Runaway`] when `max_events_per_drain` is exceeded.
    pub fn process_all(&mut self) -> Result<ProcessReport, EngineError> {
        let mut report = ProcessReport::default();
        loop {
            self.drain_round(&mut report)?;
            if self.invoker.in_flight() == 0 {
                break;
            }
            self.invoker.wait_harvest(INVOKE_POLL);
        }
        // One durability sync per drain: every op the wave performed is on
        // disk before process_all returns.
        self.journal_sync(None)?;
        Ok(report)
    }

    /// One non-blocking processing round: absorbs any landed detached
    /// results, drains the queue, and returns without waiting on
    /// still-running invocations — the command loop's building block, so
    /// a storm of retrying tools never stalls unrelated requests.
    /// [`ProjectServer::invocations_in_flight`] says whether more results
    /// are coming; the pool's wake callback
    /// ([`ProjectServer::set_invoke_wake`]) signals when to call again.
    ///
    /// # Errors
    ///
    /// As [`ProjectServer::process_all`].
    pub fn process_round(&mut self) -> Result<ProcessReport, EngineError> {
        let mut report = ProcessReport::default();
        self.drain_round(&mut report)?;
        self.journal_sync(None)?;
        Ok(report)
    }

    /// The shared drain: folds landed results and the wrapper inbox into
    /// the queue, then processes events (sequentially or sharded) until
    /// the queue is empty. Never waits on in-flight detached work.
    fn drain_round(&mut self, report: &mut ProcessReport) -> Result<(), EngineError> {
        loop {
            self.absorb_finished(report)?;
            // Reuse one inbox buffer across polls instead of allocating a
            // fresh Vec per drain.
            let mut inbox = std::mem::take(&mut self.inbox_buf);
            inbox.clear();
            self.queue.drain_inbox_into(&mut inbox);
            let drained: Result<(), EngineError> = inbox
                .iter()
                .try_for_each(|posted| self.enqueue_lenient(&posted.message, &posted.user));
            self.inbox_buf = inbox;
            drained?;
            // The sharded path takes the whole queued batch at once;
            // feedback events (wrapper posts) arrive for the next round.
            if self.wave_workers > 1 && !self.ast_dispatch && !self.queue.is_empty() {
                self.process_batch(report)?;
                continue;
            }
            let Some(ev) = self.queue.dequeue() else {
                return Ok(());
            };
            if report.events >= self.max_events_per_drain {
                return Err(EngineError::Runaway {
                    processed: report.events,
                });
            }
            let seq = ev.seq;
            let outcome = if self.ast_dispatch {
                self.engine
                    .process(&self.blueprint, &mut self.db, &mut self.audit, ev)?
            } else {
                self.engine.process_compiled_traced(
                    &self.compiled,
                    &mut self.db,
                    &mut self.audit,
                    &mut self.trace,
                    ev,
                )?
            };
            report.absorb(ProcessReport {
                events: 1,
                deliveries: outcome.delivered,
                ..Default::default()
            });
            self.mark_event_done(seq);
            self.dispatch_invocations(outcome.invocations, report)?;
        }
    }

    /// Records the terminal `EventDone` for a durably accepted event once
    /// its waves have run; the record travels in the same flush batch as
    /// the event's effects, so recovery either replays both or re-runs
    /// the event (at-least-once).
    fn mark_event_done(&mut self, seq: Option<u64>) {
        if self.durability.is_none() {
            return;
        }
        if let Some(seq) = seq {
            self.db.record_extra(JournalOp::EventDone { seq });
        }
    }

    /// One sharded round of `process_all`: takes every queued event as a
    /// batch, runs it across the wave worker pool, then dispatches the
    /// wrapper invocations in event order. On a wave error the untouched
    /// tail of the batch returns to the queue front, exactly as if the
    /// sequential loop had stopped there.
    fn process_batch(&mut self, report: &mut ProcessReport) -> Result<(), EngineError> {
        let allowance = self.max_events_per_drain.saturating_sub(report.events);
        if allowance == 0 {
            return Err(EngineError::Runaway {
                processed: report.events,
            });
        }
        let mut events = Vec::with_capacity(self.queue.len().min(allowance as usize));
        while (events.len() as u64) < allowance {
            match self.queue.dequeue() {
                Some(ev) => events.push(ev),
                None => break,
            }
        }
        // Durable-queue bookkeeping: the batch consumes its events, so
        // capture their sequence stamps first; only the applied prefix is
        // marked done (a requeued tail keeps its stamps and stays pending).
        let seqs: Vec<Option<u64>> = events.iter().map(|ev| ev.seq).collect();
        // Refresh the shard partition if the blueprint or the link
        // topology changed since the last batch; it is then taken out and
        // put back so the engine can borrow the database mutably.
        self.shard_map();
        let shards = self.shard_map.take().expect("refreshed above");
        let batch = self.engine.process_batch_sharded_traced(
            &self.compiled,
            &shards,
            &mut self.db,
            &mut self.audit,
            &mut self.trace,
            events,
            self.wave_workers,
        );
        self.shard_map = Some(shards);
        let applied = batch.outcomes.len();
        let mut invocations = Vec::new();
        for outcome in batch.outcomes {
            report.absorb(ProcessReport {
                events: 1,
                deliveries: outcome.delivered,
                ..Default::default()
            });
            invocations.extend(outcome.invocations);
        }
        for seq in seqs.into_iter().take(applied).flatten() {
            self.mark_event_done(Some(seq));
        }
        if let Some(error) = batch.error {
            // The sequential loop dispatches each pre-error event's
            // invocations before reaching the erroring event; do the same
            // for the batch's applied prefix, THEN surface the error.
            // Order matters for the queue too: executor-posted messages
            // append to the (drained) queue first, and the untouched tail
            // then returns to the front — exactly the sequential order
            // `[unreached events…, wrapper messages…]`.
            let dispatched = self.dispatch_invocations(invocations, report);
            self.queue.requeue_front(batch.unprocessed.into_iter());
            dispatched?;
            return Err(error);
        }
        self.dispatch_invocations(invocations, report)
    }

    /// Runs collected `exec`/`notify` invocations through the script
    /// executor, in order: inline runs feed their messages straight back
    /// into the queue; detached runs are journaled as in-flight and handed
    /// to the worker pool, their results coming back through the harvest
    /// in this same dispatch order.
    fn dispatch_invocations(
        &mut self,
        invocations: Vec<ScriptInvocation>,
        report: &mut ProcessReport,
    ) -> Result<(), EngineError> {
        for invocation in invocations {
            let id = self.next_invoke_id;
            self.next_invoke_id += 1;
            self.dispatch_one(id, invocation, report)?;
        }
        Ok(())
    }

    /// Dispatches one invocation under a fixed id (recovery re-dispatch
    /// reuses the id the crashed run was journaled under).
    fn dispatch_one(
        &mut self,
        id: u64,
        invocation: ScriptInvocation,
        report: &mut ProcessReport,
    ) -> Result<(), EngineError> {
        let queued_op = self.durability.is_some().then(|| JournalOp::InvokeQueued {
            id,
            script: invocation.script.clone(),
            args: invocation.args.clone(),
            notify: invocation.notify,
            origin: invocation.origin.clone(),
            event: invocation.event.clone(),
        });
        if let Some(op) = queued_op.clone() {
            self.db.record_extra(op);
        }
        let prepared = {
            let mut ctx = ToolCtx {
                db: &mut self.db,
                workspace: &mut self.workspace,
                blueprint: &self.blueprint,
                audit: &mut self.audit,
            };
            self.executor.prepare(&invocation, &mut ctx)
        };
        report.scripts += 1;
        match prepared {
            PreparedRun::Inline(messages) => {
                // Queued and completed travel in one flush batch: an
                // inline run never appears in-flight after recovery.
                if self.durability.is_some() {
                    self.db.record_extra(JournalOp::InvokeCompleted { id });
                }
                for message in messages {
                    report.emitted += 1;
                    self.enqueue_lenient(&message, &invocation.script)?;
                }
            }
            PreparedRun::Detached(job) => {
                if let Some(op) = queued_op {
                    self.in_flight_ops.insert(id, op);
                }
                self.invoker.submit(
                    id,
                    &invocation.script,
                    &invocation.origin,
                    &invocation.event,
                    job,
                );
            }
        }
        Ok(())
    }

    /// Harvests terminal detached invocations (submission order, see
    /// [`crate::engine::invoke`]) and feeds them back: a completion
    /// journals `InvokeCompleted` and enqueues its result messages; an
    /// exhausted retry budget journals `InvokeFailed` and surfaces as a
    /// `tool_failed` event at the invocation's origin (args: script,
    /// attempts, reason) so blueprints can react to it like any other
    /// design event.
    fn absorb_finished(&mut self, report: &mut ProcessReport) -> Result<(), EngineError> {
        // Fold the pool's cumulative fault counters into the audit log as
        // allocation-free notes, so a retry/timeout storm shows up in
        // `audit` counters even with retention off.
        let stats = self.invoker.stats();
        let (seen_retries, seen_timeouts) = self.seen_invoke_faults;
        for _ in seen_retries..stats.retried {
            self.audit.note(AuditKind::InvokeRetried);
        }
        for _ in seen_timeouts..stats.timed_out {
            self.audit.note(AuditKind::InvokeTimedOut);
        }
        self.seen_invoke_faults = (stats.retried, stats.timed_out);
        for fin in self.invoker.harvest() {
            self.in_flight_ops.remove(&fin.id);
            let FinishedInvocation {
                id,
                script,
                origin,
                outcome,
                ..
            } = fin;
            if self.trace.enabled() {
                let (attempts, ok) = match &outcome {
                    InvokeOutcome::Completed { attempts, .. } => (*attempts, true),
                    InvokeOutcome::Failed { attempts, .. } => (*attempts, false),
                };
                self.trace.push(TraceRecord::Settle {
                    script: script.clone(),
                    attempts: u64::from(attempts),
                    ok,
                });
            }
            match outcome {
                InvokeOutcome::Completed { messages, .. } => {
                    if self.durability.is_some() {
                        self.db.record_extra(JournalOp::InvokeCompleted { id });
                    }
                    for message in messages {
                        report.emitted += 1;
                        self.enqueue_lenient(&message, &script)?;
                    }
                }
                InvokeOutcome::Failed { attempts, reason } => {
                    self.audit.note(AuditKind::InvokeExhausted);
                    if self.durability.is_some() {
                        self.db.record_extra(JournalOp::InvokeFailed {
                            id,
                            attempts: u64::from(attempts),
                            reason: reason.clone(),
                        });
                    }
                    // An unparseable origin (never produced by the rule
                    // engine) has nowhere to land; the journal record
                    // above still documents the failure.
                    if let Ok(target) = origin.parse::<Oid>() {
                        let message = EventMessage::new("tool_failed", Direction::Up, target)
                            .with_arg(script.clone())
                            .with_arg(attempts.to_string())
                            .with_arg(reason);
                        report.emitted += 1;
                        self.enqueue_lenient(&message, &script)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Accepts one resolved event into the queue. With journaling on, the
    /// event is stamped with the next durable sequence number and its
    /// `EventQueued` work record enters the op buffer *before* the event
    /// enters the in-memory queue — so an acknowledged post survives a
    /// crash and is replayed on recovery.
    fn accept_event(&mut self, mut ev: QueuedEvent) {
        if self.durability.is_some() {
            let seq = self.next_event_seq;
            self.next_event_seq += 1;
            ev.seq = Some(seq);
            if let Some(op) = event_queued_op(&self.db, &ev) {
                self.db.record_extra(op);
            }
        }
        self.queue.enqueue(ev);
    }

    /// Enqueues a message; unknown targets are dropped under lenient
    /// policies (a wrapper may race a deletion) and rejected under strict
    /// ones.
    fn enqueue_lenient(&mut self, message: &EventMessage, user: &str) -> Result<(), EngineError> {
        match QueuedEvent::from_message(&self.db, message, user) {
            Ok(ev) => {
                self.accept_event(ev);
                Ok(())
            }
            Err(MetaError::UnknownOid { .. })
                if self.engine.policy.unknown_views != Strictness::Reject =>
            {
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Re-animates the accepted-but-unfinished work a recovered journal
    /// carried: pending events return to the queue (and are re-journaled
    /// into the fresh epoch), in-flight invocations re-dispatch through
    /// the executor under their original ids — the at-least-once half of
    /// the durable work queue. Targets that no longer resolve are dropped,
    /// mirroring the lenient enqueue.
    fn restore_pending_work(&mut self, pending: journal::PendingWork) -> Result<(), EngineError> {
        self.next_event_seq = self.next_event_seq.max(pending.next_event_seq);
        self.next_invoke_id = self.next_invoke_id.max(pending.next_invoke_id);
        for op in pending.events {
            let JournalOp::EventQueued {
                seq,
                event,
                direction,
                propagate,
                target,
                args,
                user,
            } = op
            else {
                continue;
            };
            let Some(id) = self.db.resolve(&target) else {
                continue;
            };
            let ev = QueuedEvent {
                event,
                direction: if direction == "down" {
                    Direction::Down
                } else {
                    Direction::Up
                },
                delivery: if propagate {
                    Delivery::PropagateFrom(id)
                } else {
                    Delivery::Target(id)
                },
                args,
                user,
                seq: Some(seq),
            };
            if let Some(op) = event_queued_op(&self.db, &ev) {
                self.db.record_extra(op);
            }
            self.queue.enqueue(ev);
        }
        let mut report = ProcessReport::default();
        for op in pending.invocations {
            let JournalOp::InvokeQueued {
                id,
                script,
                args,
                notify,
                origin,
                event,
            } = op
            else {
                continue;
            };
            let invocation = ScriptInvocation {
                script,
                args,
                notify,
                origin,
                event,
            };
            self.dispatch_one(id, invocation, &mut report)?;
        }
        self.journal_sync(None)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::exec::RecordingExecutor;

    const SIMPLE: &str = r#"
        blueprint simple
        view default
            property uptodate default true
            when ckin do uptodate = true; post outofdate down done
            when outofdate do uptodate = false done
        endview
        view HDL_model
            property sim_result default bad
            when hdl_sim do sim_result = $arg done
        endview
        view schematic
            link_from HDL_model move propagates outofdate type derived
            use_link move propagates outofdate
            when ckin do exec netlister "$oid" done
        endview
        endblueprint
    "#;

    #[test]
    fn from_source_validates() {
        assert!(ProjectServer::from_source(SIMPLE).is_ok());
        let broken = "blueprint b view a endview view a endview endblueprint";
        assert!(matches!(
            ProjectServer::from_source(broken),
            Err(EngineError::Invalid { .. })
        ));
    }

    #[test]
    fn checkin_queues_and_processes_ckin() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        assert_eq!(server.pending_events(), 1);
        let report = server.process_all().unwrap();
        assert_eq!(report.events, 1);
        assert_eq!(server.pending_events(), 0);
        assert_eq!(server.prop(&hdl, "uptodate").unwrap(), Value::Bool(true));
        assert_eq!(server.prop(&hdl, "owner").unwrap().as_atom(), "yves");
    }

    #[test]
    fn post_line_accepts_wire_format() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        server.process_all().unwrap();
        server
            .post_line(&format!("postEvent hdl_sim up {hdl} \"good\""), "simwrap")
            .unwrap();
        server.process_all().unwrap();
        assert_eq!(server.prop(&hdl, "sim_result").unwrap().as_atom(), "good");
    }

    #[test]
    fn change_propagates_to_derived_views() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        let sch = server
            .checkin("cpu", "schematic", "synth", b"s1".to_vec())
            .unwrap();
        server.connect_oids(&hdl, &sch).unwrap();
        server.process_all().unwrap();
        assert_eq!(server.prop(&sch, "uptodate").unwrap(), Value::Bool(true));

        server
            .checkin("cpu", "HDL_model", "yves", b"v2".to_vec())
            .unwrap();
        server.process_all().unwrap();
        assert_eq!(server.prop(&sch, "uptodate").unwrap(), Value::Bool(false));
    }

    #[test]
    fn executor_receives_exec_invocations() {
        let bp = parser::parse(SIMPLE).unwrap();
        let mut server = ProjectServer::with_executor(bp, RecordingExecutor::new()).unwrap();
        server
            .checkin("cpu", "schematic", "yves", b"s1".to_vec())
            .unwrap();
        server.process_all().unwrap();
        assert_eq!(server.executor().invocations_of("netlister").len(), 1);
    }

    #[test]
    fn executor_replies_are_fed_back() {
        let bp = parser::parse(SIMPLE).unwrap();
        let mut exec = RecordingExecutor::new();
        // When the netlister runs, it reports an hdl_sim result for the HDL
        // model (contrived, but exercises the feedback loop).
        exec.reply_with(
            "netlister",
            vec!["postEvent hdl_sim up cpu,HDL_model,1 \"good\""
                .parse()
                .unwrap()],
        );
        let mut server = ProjectServer::with_executor(bp, exec).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        server
            .checkin("cpu", "schematic", "yves", b"s1".to_vec())
            .unwrap();
        let report = server.process_all().unwrap();
        assert_eq!(report.scripts, 1);
        assert_eq!(report.emitted, 1);
        assert_eq!(server.prop(&hdl, "sim_result").unwrap().as_atom(), "good");
    }

    #[test]
    fn frozen_view_rejects_checkin() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        server.policy_mut().frozen_views.insert("schematic".into());
        let err = server
            .checkin("cpu", "schematic", "yves", b"s1".to_vec())
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Policy(PolicyViolation::FrozenView { .. })
        ));
    }

    #[test]
    fn reinit_swaps_blueprint_keeping_data() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        server.process_all().unwrap();
        // Loosened blueprint: outofdate propagation removed.
        server
            .reinit_from_source(
                r#"blueprint loose
                view default
                    property uptodate default true
                endview
                view HDL_model endview
                view schematic endview
                endblueprint"#,
            )
            .unwrap();
        assert_eq!(server.blueprint().name, "loose");
        // Data survived.
        assert!(server.prop(&hdl, "uptodate").is_some());
        // Bad blueprint: reinit fails, old one stays.
        let err =
            server.reinit_from_source("blueprint x view a endview view a endview endblueprint");
        assert!(err.is_err());
        assert_eq!(server.blueprint().name, "loose");
    }

    #[test]
    fn concurrent_wrappers_post_through_sender() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        server.process_all().unwrap();
        let sender = server.sender();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = sender.clone();
                let oid = hdl.clone();
                std::thread::spawn(move || {
                    tx.send(crate::engine::queue::Posted {
                        message: EventMessage::new("hdl_sim", Direction::Up, oid)
                            .with_arg(format!("run {i}")),
                        user: format!("sim{i}"),
                    })
                    .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = server.process_all().unwrap();
        assert_eq!(report.events, 4);
        // Last writer wins; any of the four is acceptable, but one landed.
        assert!(server
            .prop(&hdl, "sim_result")
            .unwrap()
            .as_atom()
            .starts_with("run "));
    }

    #[test]
    fn runaway_guard_trips() {
        // Self-feeding executor: every netlister run checks in a new
        // schematic, which runs the netlister again, forever.
        #[derive(Debug, Default)]
        struct SelfFeeding;
        impl ScriptExecutor for SelfFeeding {
            fn execute(
                &mut self,
                _inv: &crate::engine::exec::ScriptInvocation,
                ctx: &mut ToolCtx<'_>,
            ) -> Vec<EventMessage> {
                let (_, oid) = ctx
                    .create_versioned("cpu", "schematic", "netlister", b"n".to_vec())
                    .unwrap();
                vec![EventMessage::new("ckin", Direction::Up, oid)]
            }
        }
        let bp = parser::parse(SIMPLE).unwrap();
        let mut server = ProjectServer::with_executor(bp, SelfFeeding).unwrap();
        server.max_events_per_drain = 50;
        server
            .checkin("cpu", "schematic", "yves", b"s1".to_vec())
            .unwrap();
        let err = server.process_all().unwrap_err();
        assert!(matches!(err, EngineError::Runaway { processed: 50 }));
    }

    #[test]
    fn adopt_project_invalidates_view_dispatch_cache() {
        // Two views with opposite rules for the same event; the adopted
        // database interns the view names in the OPPOSITE order, so a
        // stale per-view dispatch cache would run alpha's rule on beta.
        let mut server = ProjectServer::from_source(
            r#"blueprint cache
            view alpha
                when ping do mark = from_alpha done
            endview
            view beta
                when ping do mark = from_beta done
            endview
            endblueprint"#,
        )
        .unwrap();
        let a = Oid::new("blk", "alpha", 1);
        let b = Oid::new("blk", "beta", 1);
        server.create_object(a.clone()).unwrap();
        server.create_object(b.clone()).unwrap();
        // Warm the cache for both view symbols (alpha=0, beta=1 here).
        server
            .post_line("postEvent ping up blk,alpha,1", "t")
            .unwrap();
        server
            .post_line("postEvent ping up blk,beta,1", "t")
            .unwrap();
        server.process_all().unwrap();
        assert_eq!(server.prop(&a, "mark").unwrap().as_atom(), "from_alpha");

        // Adopted database interns beta FIRST (beta=0, alpha=1).
        let mut db = MetaDb::new();
        db.create_oid(b.clone()).unwrap();
        db.create_oid(a.clone()).unwrap();
        server.adopt_project(db, Workspace::new("adopted"));
        server
            .post_line("postEvent ping up blk,beta,1", "t")
            .unwrap();
        server
            .post_line("postEvent ping up blk,alpha,1", "t")
            .unwrap();
        server.process_all().unwrap();
        assert_eq!(
            server.prop(&b, "mark").unwrap().as_atom(),
            "from_beta",
            "stale view cache served alpha's dispatch table for beta"
        );
        assert_eq!(server.prop(&a, "mark").unwrap().as_atom(), "from_alpha");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("damocles-srv-journal-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn journal_checkpoint_recover_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        server.enable_journal(&dir, 10_000).unwrap();
        assert!(server.journal_enabled());
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        let sch = server
            .checkin("cpu", "schematic", "synth", b"s1".to_vec())
            .unwrap();
        server.connect_oids(&hdl, &sch).unwrap();
        server.process_all().unwrap();
        assert!(server.journal_records().unwrap() > 0, "ops were journaled");
        let image_before = damocles_meta::persist::save(server.db());

        // A fresh server recovers the whole project from snapshot + tail.
        let mut crashed = ProjectServer::from_source(SIMPLE).unwrap();
        let report = crashed.recover_journal(&dir, 10_000).unwrap();
        assert!(report.replayed_ops > 0, "{report:?}");
        assert_eq!(
            damocles_meta::persist::save(crashed.db()),
            image_before,
            "recovered image matches the pre-crash database byte-for-byte"
        );
        // Payloads came back through the journal's data records.
        let id = crashed.resolve(&hdl).unwrap();
        assert_eq!(
            crashed.workspace().datum(id).unwrap().content,
            b"v1".to_vec()
        );
        // And tracking continues: a new HDL version invalidates the
        // recovered schematic.
        crashed
            .checkin("cpu", "HDL_model", "yves", b"v2".to_vec())
            .unwrap();
        crashed.process_all().unwrap();
        assert_eq!(crashed.prop(&sch, "uptodate").unwrap(), Value::Bool(false));
    }

    #[test]
    fn checkpoint_policy_folds_every_n_ops() {
        let dir = temp_dir("fold");
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let epoch0 = server.enable_journal(&dir, 8).unwrap();
        for i in 0..6 {
            server
                .checkin("cpu", "HDL_model", "yves", format!("v{i}").into_bytes())
                .unwrap();
            server.process_all().unwrap();
        }
        let epoch = server.journal_epoch().unwrap();
        assert!(epoch > epoch0, "auto-checkpoint advanced the epoch");
        // After a fold the journal restarts small.
        assert!(server.journal_records().unwrap() < 8 * 6);
        // Explicit checkpoint empties it entirely and still recovers.
        server.checkpoint().unwrap();
        assert_eq!(server.journal_records().unwrap(), 0);
        let image = damocles_meta::persist::save(server.db());
        let mut fresh = ProjectServer::from_source(SIMPLE).unwrap();
        fresh.recover_journal(&dir, 8).unwrap();
        assert_eq!(damocles_meta::persist::save(fresh.db()), image);
    }

    #[test]
    fn checkpoint_without_journal_errors() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        assert!(matches!(
            server.checkpoint(),
            Err(EngineError::Journal { .. })
        ));
        assert!(!server.journal_enabled());
    }

    #[test]
    fn torn_journal_tail_recovers_prefix() {
        let dir = temp_dir("torn");
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        server.enable_journal(&dir, 10_000).unwrap();
        server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        server.process_all().unwrap();
        // Simulate a crash mid-append: chop bytes off the journal tail.
        let jpath = dir.join("journal.djl");
        let bytes = std::fs::read(&jpath).unwrap();
        std::fs::write(&jpath, &bytes[..bytes.len() - 11]).unwrap();
        let mut crashed = ProjectServer::from_source(SIMPLE).unwrap();
        let report = crashed.recover_journal(&dir, 10_000).unwrap();
        assert!(report.torn_tail.is_some(), "{report:?}");
        // The HDL object from the valid prefix survived.
        assert_eq!(crashed.db().oid_count(), 1);
    }

    #[test]
    fn lenient_drop_of_unknown_targets() {
        let bp = parser::parse(SIMPLE).unwrap();
        let mut exec = RecordingExecutor::new();
        exec.reply_with(
            "netlister",
            vec!["postEvent nl_sim down ghost,netlist,9".parse().unwrap()],
        );
        let mut server = ProjectServer::with_executor(bp, exec).unwrap();
        server
            .checkin("cpu", "schematic", "yves", b"s1".to_vec())
            .unwrap();
        // The ghost target is dropped, not an error.
        let report = server.process_all().unwrap();
        assert_eq!(report.emitted, 1);
        assert_eq!(report.events, 1);
    }
}

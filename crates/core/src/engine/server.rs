//! The DAMOCLES project server: the façade tying blueprint, meta-database,
//! workspace, event queue and run-time engine together (Fig. 1).
//!
//! Wrapper programs (and designers' front-ends) talk to a [`ProjectServer`]:
//! they check data in and out, post event messages, and query project state.
//! The server drains its FIFO queue with [`ProjectServer::process_all`],
//! dispatching `exec` invocations to its [`ScriptExecutor`] and feeding any
//! events those wrappers post back into the queue — the automatic tool
//! invocation loop of Section 3.3.

use damocles_meta::{
    Direction, EventMessage, MetaDb, MetaError, Oid, OidId, ProjectQuery, Value, Workspace,
};

use crate::engine::audit::AuditLog;
use crate::engine::compile::CompiledBlueprint;
use crate::engine::error::EngineError;
use crate::engine::event::QueuedEvent;
use crate::engine::exec::{NullExecutor, ScriptExecutor, ToolCtx};
use crate::engine::policy::{Policy, PolicyViolation, Strictness};
use crate::engine::queue::{EventQueue, Posted};
use crate::engine::runtime::RuntimeEngine;
use crate::engine::template;
use crate::lang::ast::Blueprint;
use crate::lang::{parser, validate};

/// Aggregate results of one [`ProjectServer::process_all`] drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessReport {
    /// Design events processed (queue entries).
    pub events: u64,
    /// OIDs that executed rules across all waves.
    pub deliveries: u64,
    /// Wrapper invocations dispatched.
    pub scripts: u64,
    /// Event messages wrappers posted back.
    pub emitted: u64,
}

impl ProcessReport {
    fn absorb(&mut self, other: ProcessReport) {
        self.events += other.events;
        self.deliveries += other.deliveries;
        self.scripts += other.scripts;
        self.emitted += other.emitted;
    }
}

/// The project server.
///
/// Generic over its script executor so tests can use
/// [`RecordingExecutor`](crate::engine::exec::RecordingExecutor) and the
/// `damocles-tools` crate can plug a simulated tool chain in, while the
/// default is the inert [`NullExecutor`].
///
/// # Example
///
/// ```
/// use blueprint_core::engine::server::ProjectServer;
///
/// # fn main() -> Result<(), blueprint_core::engine::error::EngineError> {
/// let mut server = ProjectServer::from_source(r#"
///     blueprint demo
///     view default
///         property uptodate default true
///         when ckin do uptodate = true; post outofdate down done
///         when outofdate do uptodate = false done
///     endview
///     view HDL_model endview
///     view schematic
///         link_from HDL_model move propagates outofdate type derived
///     endview
///     endblueprint
/// "#)?;
/// let hdl = server.checkin("cpu", "HDL_model", "yves", b"module cpu;".to_vec())?;
/// let sch = server.checkin("cpu", "schematic", "yves", b"...".to_vec())?;
/// server.connect_oids(&hdl, &sch)?;
/// server.process_all()?;
///
/// // A new HDL version invalidates the derived schematic.
/// server.checkin("cpu", "HDL_model", "yves", b"module cpu; // v2".to_vec())?;
/// server.process_all()?;
/// assert_eq!(server.prop(&sch, "uptodate").unwrap().as_atom(), "false");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProjectServer<E = NullExecutor> {
    blueprint: Blueprint,
    /// The blueprint compiled for the engine; rebuilt whenever the
    /// blueprint changes (`reinit`).
    compiled: CompiledBlueprint,
    db: MetaDb,
    workspace: Workspace,
    engine: RuntimeEngine,
    queue: EventQueue,
    audit: AuditLog,
    executor: E,
    /// Reusable inbox-drain buffer (see `EventQueue::drain_inbox_into`).
    inbox_buf: Vec<Posted>,
    /// When true, events run through the seed's AST-walking engine path
    /// instead of the compiled dispatch tables — kept for differential
    /// testing and as the benches' baseline.
    ast_dispatch: bool,
    /// Safety valve for `process_all`.
    pub max_events_per_drain: u64,
}

impl ProjectServer<NullExecutor> {
    /// Initializes a server from blueprint source text, validating it.
    ///
    /// # Errors
    ///
    /// Returns parse errors or validation errors (warnings are tolerated,
    /// matching the non-obstructive stance).
    pub fn from_source(source: &str) -> Result<Self, EngineError> {
        let bp = parser::parse(source)?;
        Self::new(bp)
    }

    /// Initializes a server from a parsed blueprint, validating it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] when validation finds errors.
    pub fn new(blueprint: Blueprint) -> Result<Self, EngineError> {
        Self::with_executor(blueprint, NullExecutor)
    }
}

impl<E: ScriptExecutor> ProjectServer<E> {
    /// Initializes a server with a custom script executor.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] when validation finds errors.
    pub fn with_executor(blueprint: Blueprint, executor: E) -> Result<Self, EngineError> {
        validate::check(&blueprint).map_err(|issues| EngineError::Invalid {
            issues: issues.iter().map(ToString::to_string).collect(),
        })?;
        let compiled = CompiledBlueprint::compile(&blueprint);
        Ok(ProjectServer {
            blueprint,
            compiled,
            db: MetaDb::new(),
            workspace: Workspace::new("project"),
            engine: RuntimeEngine::default(),
            queue: EventQueue::new(),
            audit: AuditLog::counters_only(),
            executor,
            inbox_buf: Vec::new(),
            ast_dispatch: false,
            max_events_per_drain: 1_000_000,
        })
    }

    /// Replaces the blueprint — "re-initializing the BluePrint mechanism"
    /// between project phases (Section 3.2). The meta-database, workspace
    /// and queue are kept.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Invalid`] when the new blueprint fails
    /// validation; the old blueprint stays in force.
    pub fn reinit(&mut self, blueprint: Blueprint) -> Result<(), EngineError> {
        validate::check(&blueprint).map_err(|issues| EngineError::Invalid {
            issues: issues.iter().map(ToString::to_string).collect(),
        })?;
        self.compiled = CompiledBlueprint::compile(&blueprint);
        self.blueprint = blueprint;
        Ok(())
    }

    /// Batch re-evaluation of every continuous assignment on every live
    /// OID — the deferred half of the `eager_lets` ablation (with eager
    /// evaluation disabled, `let` properties are only refreshed when this is
    /// called, e.g. once per query burst instead of once per delivery).
    ///
    /// Returns the number of `let` properties written.
    ///
    /// # Errors
    ///
    /// Propagates database errors (none expected on a live database).
    pub fn refresh_lets(&mut self) -> Result<u64, EngineError> {
        use crate::engine::eval::EvalCtx;
        let ids: Vec<OidId> = self.db.iter_oids().map(|(id, _)| id).collect();
        let mut written = 0u64;
        for id in ids {
            // The compiled per-view tables hold the default view's lets and
            // the view's own pre-merged in evaluation order.
            let table = {
                let view = &self.db.oid(id)?.view;
                self.compiled.table_for_view(view.as_str())
            };
            // Evaluate against a stable snapshot of the entry's properties.
            let values: Vec<(String, Value)> = {
                let entry = self.db.entry(id)?;
                let ctx = EvalCtx {
                    props: &entry.props,
                    oid: &entry.oid,
                    event: "refresh",
                    args: &[],
                    user: "server",
                    date: 0,
                };
                table
                    .lets()
                    .iter()
                    .map(|l| (l.name.clone(), ctx.eval(&l.expr)))
                    .collect()
            };
            for (name, value) in values {
                self.db.set_prop(id, &name, value)?;
                written += 1;
            }
        }
        Ok(written)
    }

    /// Adopts a restored database and workspace (e.g. from
    /// [`damocles_meta::persist::load_project`]), discarding the current
    /// ones. Any queued events are dropped — their addresses belong to the
    /// old database.
    pub fn adopt_project(&mut self, db: MetaDb, workspace: Workspace) {
        while self.queue.dequeue().is_some() {}
        for _ in self.queue.drain_inbox() {}
        self.db = db;
        self.workspace = workspace;
    }

    /// Replaces the blueprint from source text.
    ///
    /// # Errors
    ///
    /// Parse or validation errors; the old blueprint stays in force.
    pub fn reinit_from_source(&mut self, source: &str) -> Result<(), EngineError> {
        let bp = parser::parse(source)?;
        self.reinit(bp)
    }

    /// Sets the engine policy (builder style).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.engine = RuntimeEngine::new(policy);
        self
    }

    /// Turns on full audit-record retention (builder style).
    pub fn with_audit_retention(mut self) -> Self {
        self.audit = AuditLog::retaining();
        self
    }

    /// Routes events through the seed's AST-walking engine path instead of
    /// the compiled dispatch tables (builder style) — the baseline side of
    /// the differential tests and the `propagation`/`fig1_event_queue`
    /// benches.
    pub fn with_ast_dispatch(mut self) -> Self {
        self.ast_dispatch = true;
        self
    }

    /// Whether the AST-walking dispatch path is in force.
    pub fn uses_ast_dispatch(&self) -> bool {
        self.ast_dispatch
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The active blueprint.
    pub fn blueprint(&self) -> &Blueprint {
        &self.blueprint
    }

    /// The active blueprint's compiled form.
    pub fn compiled(&self) -> &CompiledBlueprint {
        &self.compiled
    }

    /// The meta-database (read-only; mutate through server operations).
    pub fn db(&self) -> &MetaDb {
        &self.db
    }

    /// The workspace.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Clears the audit log (counters and records).
    pub fn reset_audit(&mut self) {
        self.audit.reset();
    }

    /// The engine policy in force.
    pub fn policy(&self) -> &Policy {
        &self.engine.policy
    }

    /// Mutable policy access (tighten/loosen between phases).
    pub fn policy_mut(&mut self) -> &mut Policy {
        &mut self.engine.policy
    }

    /// The script executor.
    pub fn executor(&self) -> &E {
        &self.executor
    }

    /// Mutable executor access.
    pub fn executor_mut(&mut self) -> &mut E {
        &mut self.executor
    }

    /// Read-only query facade.
    pub fn query(&self) -> ProjectQuery<'_> {
        ProjectQuery::new(&self.db)
    }

    /// Events currently queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// A property of an OID, by triplet.
    pub fn prop(&self, oid: &Oid, name: &str) -> Option<Value> {
        let id = self.db.resolve(oid)?;
        self.db.get_prop(id, name).ok().flatten().cloned()
    }

    // ------------------------------------------------------------------
    // Design activities
    // ------------------------------------------------------------------

    /// Checks new design data in: creates the next version OID, applies
    /// template rules, records the owner, and queues a `ckin` event targeted
    /// at the new OID (direction `up`, as in the paper's wire example).
    ///
    /// # Errors
    ///
    /// Fails on frozen views (policy), check-out conflicts, or database
    /// errors.
    pub fn checkin(
        &mut self,
        block: &str,
        view: &str,
        user: &str,
        payload: Vec<u8>,
    ) -> Result<Oid, EngineError> {
        if self.engine.policy.is_frozen(view) {
            return Err(PolicyViolation::FrozenView {
                view: view.to_string(),
            }
            .into());
        }
        let (id, oid) = self
            .workspace
            .checkin(&mut self.db, block, view, user, payload)?;
        template::apply_on_create(&self.blueprint, &mut self.db, id, &mut self.audit)?;
        self.db
            .set_prop(id, "owner", Value::Str(user.to_string()))?;
        self.queue
            .enqueue(QueuedEvent::target("ckin", Direction::Up, id, user));
        Ok(oid)
    }

    /// Checks a `(block, view)` chain out for `user`.
    ///
    /// # Errors
    ///
    /// Fails on check-out conflicts.
    pub fn checkout(&mut self, block: &str, view: &str, user: &str) -> Result<(), EngineError> {
        self.workspace.checkout(&self.db, block, view, user)?;
        Ok(())
    }

    /// Creates a bare OID (no payload) with template application — for tools
    /// and setup code. No `ckin` event is queued.
    ///
    /// # Errors
    ///
    /// Fails on duplicate triplets.
    pub fn create_object(&mut self, oid: Oid) -> Result<OidId, EngineError> {
        let id = self.db.create_oid(oid)?;
        template::apply_on_create(&self.blueprint, &mut self.db, id, &mut self.audit)?;
        Ok(id)
    }

    /// Relates two OIDs (by address), attaching the template's
    /// PROPAGATE/TYPE annotation.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or self-links.
    pub fn connect(&mut self, from: OidId, to: OidId) -> Result<(), EngineError> {
        template::instantiate_link(&self.blueprint, &mut self.db, from, to)?;
        Ok(())
    }

    /// Relates two OIDs by triplet.
    ///
    /// # Errors
    ///
    /// Fails when either triplet is unknown.
    pub fn connect_oids(&mut self, from: &Oid, to: &Oid) -> Result<(), EngineError> {
        let f = self.db.require(from)?;
        let t = self.db.require(to)?;
        self.connect(f, t)
    }

    /// Resolves a triplet to its address.
    ///
    /// # Errors
    ///
    /// Fails when the triplet is unknown.
    pub fn resolve(&self, oid: &Oid) -> Result<OidId, EngineError> {
        Ok(self.db.require(oid)?)
    }

    // ------------------------------------------------------------------
    // Event traffic
    // ------------------------------------------------------------------

    /// Queues an event message on behalf of `user`.
    ///
    /// # Errors
    ///
    /// Fails when the target OID does not exist.
    pub fn post(&mut self, message: &EventMessage, user: &str) -> Result<(), EngineError> {
        let ev = QueuedEvent::from_message(&self.db, message, user)?;
        self.queue.enqueue(ev);
        Ok(())
    }

    /// Queues an event from a raw `postEvent` line.
    ///
    /// # Errors
    ///
    /// Fails on wire-format errors or unknown targets.
    pub fn post_line(&mut self, line: &str, user: &str) -> Result<(), EngineError> {
        let message: EventMessage = line.parse::<EventMessage>().map_err(EngineError::Meta)?;
        self.post(&message, user)
    }

    /// A cloneable handle that concurrent wrapper threads can post through;
    /// the messages are folded into FIFO order at the next
    /// [`ProjectServer::process_all`].
    pub fn sender(&self) -> crossbeam::channel::Sender<crate::engine::queue::Posted> {
        self.queue.sender()
    }

    /// Drains the event queue to quiescence: processes every queued event,
    /// dispatches wrapper invocations, and feeds posted messages back until
    /// nothing is left.
    ///
    /// # Errors
    ///
    /// Policy violations under strict policies, database errors, or
    /// [`EngineError::Runaway`] when `max_events_per_drain` is exceeded.
    pub fn process_all(&mut self) -> Result<ProcessReport, EngineError> {
        let mut report = ProcessReport::default();
        loop {
            // Reuse one inbox buffer across polls instead of allocating a
            // fresh Vec per drain.
            let mut inbox = std::mem::take(&mut self.inbox_buf);
            inbox.clear();
            self.queue.drain_inbox_into(&mut inbox);
            let drained: Result<(), EngineError> = inbox
                .iter()
                .try_for_each(|posted| self.enqueue_lenient(&posted.message, &posted.user));
            self.inbox_buf = inbox;
            drained?;
            let Some(ev) = self.queue.dequeue() else {
                break;
            };
            if report.events >= self.max_events_per_drain {
                return Err(EngineError::Runaway {
                    processed: report.events,
                });
            }
            let outcome = if self.ast_dispatch {
                self.engine
                    .process(&self.blueprint, &mut self.db, &mut self.audit, ev)?
            } else {
                self.engine
                    .process_compiled(&self.compiled, &mut self.db, &mut self.audit, ev)?
            };
            report.absorb(ProcessReport {
                events: 1,
                deliveries: outcome.delivered,
                ..Default::default()
            });
            for invocation in outcome.invocations {
                let mut ctx = ToolCtx {
                    db: &mut self.db,
                    workspace: &mut self.workspace,
                    blueprint: &self.blueprint,
                    audit: &mut self.audit,
                };
                let messages = self.executor.execute(&invocation, &mut ctx);
                report.scripts += 1;
                for message in messages {
                    report.emitted += 1;
                    self.enqueue_lenient(&message, &invocation.script)?;
                }
            }
        }
        Ok(report)
    }

    /// Enqueues a message; unknown targets are dropped under lenient
    /// policies (a wrapper may race a deletion) and rejected under strict
    /// ones.
    fn enqueue_lenient(&mut self, message: &EventMessage, user: &str) -> Result<(), EngineError> {
        match QueuedEvent::from_message(&self.db, message, user) {
            Ok(ev) => {
                self.queue.enqueue(ev);
                Ok(())
            }
            Err(MetaError::UnknownOid { .. })
                if self.engine.policy.unknown_views != Strictness::Reject =>
            {
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::exec::RecordingExecutor;

    const SIMPLE: &str = r#"
        blueprint simple
        view default
            property uptodate default true
            when ckin do uptodate = true; post outofdate down done
            when outofdate do uptodate = false done
        endview
        view HDL_model
            property sim_result default bad
            when hdl_sim do sim_result = $arg done
        endview
        view schematic
            link_from HDL_model move propagates outofdate type derived
            use_link move propagates outofdate
            when ckin do exec netlister "$oid" done
        endview
        endblueprint
    "#;

    #[test]
    fn from_source_validates() {
        assert!(ProjectServer::from_source(SIMPLE).is_ok());
        let broken = "blueprint b view a endview view a endview endblueprint";
        assert!(matches!(
            ProjectServer::from_source(broken),
            Err(EngineError::Invalid { .. })
        ));
    }

    #[test]
    fn checkin_queues_and_processes_ckin() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        assert_eq!(server.pending_events(), 1);
        let report = server.process_all().unwrap();
        assert_eq!(report.events, 1);
        assert_eq!(server.pending_events(), 0);
        assert_eq!(server.prop(&hdl, "uptodate").unwrap(), Value::Bool(true));
        assert_eq!(server.prop(&hdl, "owner").unwrap().as_atom(), "yves");
    }

    #[test]
    fn post_line_accepts_wire_format() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        server.process_all().unwrap();
        server
            .post_line(&format!("postEvent hdl_sim up {hdl} \"good\""), "simwrap")
            .unwrap();
        server.process_all().unwrap();
        assert_eq!(server.prop(&hdl, "sim_result").unwrap().as_atom(), "good");
    }

    #[test]
    fn change_propagates_to_derived_views() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        let sch = server
            .checkin("cpu", "schematic", "synth", b"s1".to_vec())
            .unwrap();
        server.connect_oids(&hdl, &sch).unwrap();
        server.process_all().unwrap();
        assert_eq!(server.prop(&sch, "uptodate").unwrap(), Value::Bool(true));

        server
            .checkin("cpu", "HDL_model", "yves", b"v2".to_vec())
            .unwrap();
        server.process_all().unwrap();
        assert_eq!(server.prop(&sch, "uptodate").unwrap(), Value::Bool(false));
    }

    #[test]
    fn executor_receives_exec_invocations() {
        let bp = parser::parse(SIMPLE).unwrap();
        let mut server = ProjectServer::with_executor(bp, RecordingExecutor::new()).unwrap();
        server
            .checkin("cpu", "schematic", "yves", b"s1".to_vec())
            .unwrap();
        server.process_all().unwrap();
        assert_eq!(server.executor().invocations_of("netlister").len(), 1);
    }

    #[test]
    fn executor_replies_are_fed_back() {
        let bp = parser::parse(SIMPLE).unwrap();
        let mut exec = RecordingExecutor::new();
        // When the netlister runs, it reports an hdl_sim result for the HDL
        // model (contrived, but exercises the feedback loop).
        exec.reply_with(
            "netlister",
            vec!["postEvent hdl_sim up cpu,HDL_model,1 \"good\""
                .parse()
                .unwrap()],
        );
        let mut server = ProjectServer::with_executor(bp, exec).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        server
            .checkin("cpu", "schematic", "yves", b"s1".to_vec())
            .unwrap();
        let report = server.process_all().unwrap();
        assert_eq!(report.scripts, 1);
        assert_eq!(report.emitted, 1);
        assert_eq!(server.prop(&hdl, "sim_result").unwrap().as_atom(), "good");
    }

    #[test]
    fn frozen_view_rejects_checkin() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        server.policy_mut().frozen_views.insert("schematic".into());
        let err = server
            .checkin("cpu", "schematic", "yves", b"s1".to_vec())
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Policy(PolicyViolation::FrozenView { .. })
        ));
    }

    #[test]
    fn reinit_swaps_blueprint_keeping_data() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        server.process_all().unwrap();
        // Loosened blueprint: outofdate propagation removed.
        server
            .reinit_from_source(
                r#"blueprint loose
                view default
                    property uptodate default true
                endview
                view HDL_model endview
                view schematic endview
                endblueprint"#,
            )
            .unwrap();
        assert_eq!(server.blueprint().name, "loose");
        // Data survived.
        assert!(server.prop(&hdl, "uptodate").is_some());
        // Bad blueprint: reinit fails, old one stays.
        let err =
            server.reinit_from_source("blueprint x view a endview view a endview endblueprint");
        assert!(err.is_err());
        assert_eq!(server.blueprint().name, "loose");
    }

    #[test]
    fn concurrent_wrappers_post_through_sender() {
        let mut server = ProjectServer::from_source(SIMPLE).unwrap();
        let hdl = server
            .checkin("cpu", "HDL_model", "yves", b"v1".to_vec())
            .unwrap();
        server.process_all().unwrap();
        let sender = server.sender();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = sender.clone();
                let oid = hdl.clone();
                std::thread::spawn(move || {
                    tx.send(crate::engine::queue::Posted {
                        message: EventMessage::new("hdl_sim", Direction::Up, oid)
                            .with_arg(format!("run {i}")),
                        user: format!("sim{i}"),
                    })
                    .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = server.process_all().unwrap();
        assert_eq!(report.events, 4);
        // Last writer wins; any of the four is acceptable, but one landed.
        assert!(server
            .prop(&hdl, "sim_result")
            .unwrap()
            .as_atom()
            .starts_with("run "));
    }

    #[test]
    fn runaway_guard_trips() {
        // Self-feeding executor: every netlister run checks in a new
        // schematic, which runs the netlister again, forever.
        #[derive(Debug, Default)]
        struct SelfFeeding;
        impl ScriptExecutor for SelfFeeding {
            fn execute(
                &mut self,
                _inv: &crate::engine::exec::ScriptInvocation,
                ctx: &mut ToolCtx<'_>,
            ) -> Vec<EventMessage> {
                let (_, oid) = ctx
                    .create_versioned("cpu", "schematic", "netlister", b"n".to_vec())
                    .unwrap();
                vec![EventMessage::new("ckin", Direction::Up, oid)]
            }
        }
        let bp = parser::parse(SIMPLE).unwrap();
        let mut server = ProjectServer::with_executor(bp, SelfFeeding).unwrap();
        server.max_events_per_drain = 50;
        server
            .checkin("cpu", "schematic", "yves", b"s1".to_vec())
            .unwrap();
        let err = server.process_all().unwrap_err();
        assert!(matches!(err, EngineError::Runaway { processed: 50 }));
    }

    #[test]
    fn lenient_drop_of_unknown_targets() {
        let bp = parser::parse(SIMPLE).unwrap();
        let mut exec = RecordingExecutor::new();
        exec.reply_with(
            "netlister",
            vec!["postEvent nl_sim down ghost,netlist,9".parse().unwrap()],
        );
        let mut server = ProjectServer::with_executor(bp, exec).unwrap();
        server
            .checkin("cpu", "schematic", "yves", b"s1".to_vec())
            .unwrap();
        // The ghost target is dropped, not an error.
        let report = server.process_all().unwrap();
        assert_eq!(report.emitted, 1);
        assert_eq!(report.events, 1);
    }
}

//! The run-time engine: event delivery, rule execution and change
//! propagation.
//!
//! Section 3.2 specifies the processing of an event X targeted at an OID Y:
//!
//! 1. find Y and its view's run-time rules (plus the `default` view's, which
//!    "applies to all the views");
//! 2. execute all *assign* rules;
//! 3. re-evaluate all continuous assignments of the OID;
//! 4. invoke the scripts of *exec* rules (collected here, dispatched by the
//!    project server after the wave — wrappers run outside the engine);
//! 5. execute *post* rules;
//! 6. propagate X, and every posted event, across the links of Y — a link
//!    carries an event only if its PROPAGATE set allows it and its
//!    orientation matches the event's up/down direction — and repeat the
//!    whole procedure at each receiving OID.
//!
//! Events posted with `post <event> <dir>` do **not** execute on their origin
//! OID (they only leave it); `post <event> <dir> to <view>` delivers to the
//! link-adjacent OIDs of the named view. Each wave carries a visited set per
//! `(OID, event)` pair so cyclic link graphs terminate; the paper is silent
//! on cycles, so this is a documented deviation (see DESIGN.md §7).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use damocles_meta::{
    Direction, LaneWrites, MetaDb, MetaError, Oid, OidId, PropWrite, PropertyMap, Sym, Value,
};

use crate::engine::audit::{AuditKind, AuditLog, AuditRecord};
use crate::engine::compile::{CompiledBlueprint, ShardId, ShardMap};
use crate::engine::error::EngineError;
use crate::engine::eval::EvalCtx;
use crate::engine::event::{Delivery, QueuedEvent};
use crate::engine::exec::ScriptInvocation;
use crate::engine::policy::{Policy, PolicyViolation, Strictness};
use crate::engine::trace::{TraceLog, TraceRecord};
use crate::lang::ast::{Action, Blueprint, LetDef, RuleDef, Template};

/// What one processed event produced.
#[derive(Debug, Default)]
pub struct ProcessOutcome {
    /// Wrapper invocations to dispatch (in rule order across the wave).
    pub invocations: Vec<ScriptInvocation>,
    /// How many OIDs executed rules in this wave.
    pub delivered: u64,
}

/// Reusable buffers for the compiled wave loop, owned by the engine so one
/// `process_compiled` call allocates nothing in the steady state: the
/// visited set, the work queue and the neighbor scratch keep their capacity
/// across waves.
#[derive(Debug, Default)]
struct WaveScratch {
    /// `(OID, event)` pairs already delivered in the current wave.
    visited: HashSet<(OidId, Sym)>,
    /// Pending wave items.
    work: VecDeque<CompiledWaveItem>,
    /// Neighbor output buffer for [`MetaDb::neighbors_into`].
    neighbors: Vec<OidId>,
    /// Symbols for event names outside the compiled blueprint's universe
    /// (wire messages may post arbitrary names). Indexed above the compiled
    /// table. Cleared at the start of every wave — extras are only needed
    /// for intra-wave visited-set keys, and retaining them would grow
    /// engine memory by one entry per distinct unknown name for the
    /// server's lifetime.
    extra_map: HashMap<String, (Sym, Arc<str>)>,
    /// Per-view dispatch resolution cache, indexed by the database's
    /// interned view symbol ([`OidEntry::view_sym`]): `None` = not yet
    /// resolved; `Some(None)` = undeclared view (fallback table);
    /// `Some(Some(i))` = `tables[i]`. Lets the hot loop skip the view-name
    /// string hash in `table_for_view` after the first delivery per view.
    /// Valid only for the compiled blueprint generation in
    /// `view_cache_gen` — cleared when the server reinits the blueprint.
    view_cache: Vec<Option<Option<usize>>>,
    /// The [`CompiledBlueprint::generation`] the cache was filled against.
    view_cache_gen: u64,
}

impl WaveScratch {
    /// Resolves an OID's dispatch-table index, hashing the view-name string
    /// only on the first delivery to each view per blueprint generation.
    fn table_index(
        &mut self,
        compiled: &CompiledBlueprint,
        view_sym: Sym,
        view_name: &str,
    ) -> Option<usize> {
        if self.view_cache_gen != compiled.generation() {
            self.view_cache.clear();
            self.view_cache_gen = compiled.generation();
        }
        let slot = view_sym.index();
        if slot >= self.view_cache.len() {
            self.view_cache.resize(slot + 1, None);
        }
        *self.view_cache[slot].get_or_insert_with(|| compiled.table_index_for_view(view_name))
    }

    /// Interns an event name against `compiled`'s universe, extending it
    /// with wave-local symbols for unknown names.
    fn intern(&mut self, compiled: &CompiledBlueprint, event: &str) -> (Sym, Arc<str>) {
        if let Some(sym) = compiled.lookup(event) {
            let name = compiled.name_arc(sym).expect("interned names resolve");
            return (sym, Arc::clone(name));
        }
        if let Some((sym, name)) = self.extra_map.get(event) {
            return (*sym, Arc::clone(name));
        }
        let sym = Sym((compiled.symbols().len() + self.extra_map.len()) as u32);
        let name: Arc<str> = Arc::from(event);
        self.extra_map
            .insert(event.to_string(), (sym, Arc::clone(&name)));
        (sym, name)
    }
}

/// The run-time engine. Owns the policy, the logical clock and the wave
/// scratch buffers; borrows the blueprint, database and audit log per call
/// so the project server can keep them in one place.
#[derive(Debug)]
pub struct RuntimeEngine {
    /// Project policy in force.
    pub policy: Policy,
    clock: u64,
    scratch: WaveScratch,
    /// Per-worker scratches for the sharded batch path
    /// ([`RuntimeEngine::process_batch_sharded`]): each worker thread owns
    /// one for the batch, keeping the allocation-free steady state per
    /// worker. Grown lazily to the requested worker count and reused
    /// across batches.
    worker_scratches: Vec<WaveScratch>,
    /// Cumulative nanoseconds sharded batches spent in the parallel wave
    /// phase (worker execution) — the phase-split observability half of
    /// [`RuntimeEngine::batch_phase_ns`].
    batch_worker_ns: u64,
    /// Cumulative nanoseconds sharded batches spent in write application
    /// (the epilogue: sharded storage/index writes + serial delta replay).
    batch_apply_ns: u64,
}

impl Default for RuntimeEngine {
    fn default() -> Self {
        Self::new(Policy::default())
    }
}

/// One unit of wave work on the interpreted (AST-walking) path.
#[derive(Debug)]
struct WaveItem {
    event: String,
    direction: Direction,
    delivery: Delivery,
    args: Vec<String>,
    depth: u32,
}

/// The shared empty post-argument list: most `post` rules carry no
/// arguments, so wave items for them all clone one static `Arc` instead of
/// allocating a fresh empty slice per post.
fn empty_args() -> Arc<[String]> {
    static EMPTY: std::sync::OnceLock<Arc<[String]>> = std::sync::OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new())))
}

/// Counts `kind` on the allocation-free path, or materializes the full
/// record (the closure may look OIDs up in the database, hence the
/// `Result`) when the log retains records. Keeping the kind and the record
/// constructor in one call site prevents the two from drifting apart.
fn audit_record(
    audit: &mut AuditLog,
    kind: AuditKind,
    make: impl FnOnce() -> Result<AuditRecord, EngineError>,
) -> Result<(), EngineError> {
    if audit.enabled() {
        audit.push(make()?);
    } else {
        audit.note(kind);
    }
    Ok(())
}

/// One unit of wave work on the compiled path: the event travels as an
/// interned symbol plus a shared name, and the arguments are shared, so
/// scheduling a propagation hop clones two `Arc`s instead of strings.
#[derive(Debug)]
struct CompiledWaveItem {
    event: Sym,
    name: Arc<str>,
    direction: Direction,
    delivery: Delivery,
    args: Arc<[String]>,
    depth: u32,
}

// ---------------------------------------------------------------------
// Wave stores: the database surface one propagation wave runs against
// ---------------------------------------------------------------------

/// The exact database surface the compiled wave loop needs, factored out
/// so one generic loop serves both execution modes:
///
/// * [`DirectStore`] — `&mut MetaDb`; writes land (and journal)
///   immediately. The sequential path.
/// * [`OverlayStore`] — `&MetaDb` plus a private copy-on-write property
///   overlay and an ordered write log. Worker threads of a sharded batch
///   run on this: the shared database is only ever read, each worker's
///   writes are visible to its own later reads (waves read what they just
///   assigned), and the logs replay through the real database in the
///   deterministic post-wave epilogue — so journal ops, indices and
///   counters are byte-identical to sequential execution.
///
/// Only property writes mutate the database inside a wave (links and OIDs
/// change between waves), which is what makes the overlay complete.
trait WaveStore {
    /// Errors if the handle is stale (the liveness probe at delivery).
    fn probe(&self, id: OidId) -> Result<(), MetaError>;
    /// The OID triplet behind a handle.
    fn oid(&self, id: OidId) -> Result<&Oid, MetaError>;
    /// The database-interned view symbol of an OID.
    fn view_sym(&self, id: OidId) -> Result<Sym, MetaError>;
    /// The property view of an OID: the base map plus an optional sparse
    /// write overlay that shadows it (see [`EvalCtx::overlay`]). The
    /// direct path has no overlay; the worker path returns its private
    /// written-props map so no base map is ever cloned.
    fn props(&self, id: OidId) -> Result<(&PropertyMap, Option<&PropertyMap>), MetaError>;
    /// Writes a property, returning the previous value — overlay-aware.
    fn set_prop(&mut self, id: OidId, name: &str, value: Value)
        -> Result<Option<Value>, MetaError>;
    /// [`WaveStore::set_prop`] for callers that discard the previous
    /// value (the counters-only audit path) — lets the overlay skip the
    /// base-map lookup that exists only to report `old`.
    fn set_prop_quiet(&mut self, id: OidId, name: &str, value: Value) -> Result<(), MetaError> {
        self.set_prop(id, name, value).map(|_| ())
    }
    /// Appends the OIDs reachable from `id` over allowing links.
    fn neighbors_into(
        &self,
        id: OidId,
        dir: Direction,
        event: Option<&str>,
        out: &mut Vec<OidId>,
    ) -> Result<(), MetaError>;
}

/// The sequential store: writes go straight to the database.
struct DirectStore<'a> {
    db: &'a mut MetaDb,
}

impl WaveStore for DirectStore<'_> {
    fn probe(&self, id: OidId) -> Result<(), MetaError> {
        self.db.entry(id).map(|_| ())
    }

    fn oid(&self, id: OidId) -> Result<&Oid, MetaError> {
        self.db.oid(id)
    }

    fn view_sym(&self, id: OidId) -> Result<Sym, MetaError> {
        Ok(self.db.entry(id)?.view_sym())
    }

    fn props(&self, id: OidId) -> Result<(&PropertyMap, Option<&PropertyMap>), MetaError> {
        Ok((&self.db.entry(id)?.props, None))
    }

    fn set_prop(
        &mut self,
        id: OidId,
        name: &str,
        value: Value,
    ) -> Result<Option<Value>, MetaError> {
        self.db.set_prop(id, name, value)
    }

    fn neighbors_into(
        &self,
        id: OidId,
        dir: Direction,
        event: Option<&str>,
        out: &mut Vec<OidId>,
    ) -> Result<(), MetaError> {
        self.db.neighbors_into(id, dir, event, out)
    }
}

/// A minimal multiply-xor hasher for the overlay's `OidId` keys: arena
/// indices are small and already well-distributed, so SipHash's collision
/// resistance buys nothing on this internal, attacker-free map — but its
/// cost lands on every property read of every worker wave.
#[derive(Debug, Default)]
struct OidHasher(u64);

impl std::hash::Hasher for OidHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ u64::from(n)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type OidMap<V> = HashMap<OidId, V, std::hash::BuildHasherDefault<OidHasher>>;

/// The per-worker store of a sharded batch: shared read-only database,
/// copy-on-write property overlay, ordered write log.
struct OverlayStore<'a> {
    db: &'a MetaDb,
    /// Sparse per-OID overlays holding only the props this worker has
    /// written (never a clone of the base map). Lives for the worker's
    /// whole batch lane so later events see earlier events' writes
    /// (events of one link-connected component are ordered on one lane).
    dirty: OidMap<PropertyMap>,
    /// Writes of the event currently executing, in wave order. Drained
    /// per event into its [`EventRun`] and applied through
    /// [`MetaDb::apply_prop_writes_sharded`] in the epilogue.
    writes: Vec<PropWrite>,
}

impl WaveStore for OverlayStore<'_> {
    fn probe(&self, id: OidId) -> Result<(), MetaError> {
        self.db.entry(id).map(|_| ())
    }

    fn oid(&self, id: OidId) -> Result<&Oid, MetaError> {
        self.db.oid(id)
    }

    fn view_sym(&self, id: OidId) -> Result<Sym, MetaError> {
        Ok(self.db.entry(id)?.view_sym())
    }

    fn props(&self, id: OidId) -> Result<(&PropertyMap, Option<&PropertyMap>), MetaError> {
        Ok((&self.db.entry(id)?.props, self.dirty.get(&id)))
    }

    fn set_prop(
        &mut self,
        id: OidId,
        name: &str,
        value: Value,
    ) -> Result<Option<Value>, MetaError> {
        // The previous value the direct path would have reported: this
        // worker's last write if any, else the base map's.
        let base_old = match self.dirty.get(&id) {
            Some(overlay) if overlay.get(name).is_some() => None,
            _ => self.db.entry(id)?.props.get(name).cloned(),
        };
        let overlay = self.dirty.entry(id).or_default();
        let old = overlay.set(name, value.clone()).or(base_old);
        self.writes.push(PropWrite {
            id,
            prop: name.to_string(),
            value,
        });
        Ok(old)
    }

    fn set_prop_quiet(&mut self, id: OidId, name: &str, value: Value) -> Result<(), MetaError> {
        // Liveness check only on the first write to this OID; `old` is
        // not needed, so neither is the base map.
        if !self.dirty.contains_key(&id) {
            self.db.entry(id)?;
        }
        self.dirty.entry(id).or_default().set(name, value.clone());
        self.writes.push(PropWrite {
            id,
            prop: name.to_string(),
            value,
        });
        Ok(())
    }

    fn neighbors_into(
        &self,
        id: OidId,
        dir: Direction,
        event: Option<&str>,
        out: &mut Vec<OidId>,
    ) -> Result<(), MetaError> {
        self.db.neighbors_into(id, dir, event, out)
    }
}

impl RuntimeEngine {
    /// Creates an engine with the given policy.
    pub fn new(policy: Policy) -> Self {
        RuntimeEngine {
            policy,
            clock: 0,
            scratch: WaveScratch::default(),
            worker_scratches: Vec::new(),
            batch_worker_ns: 0,
            batch_apply_ns: 0,
        }
    }

    /// The logical clock: number of design events processed so far. Exposed
    /// to rules as `$date`.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Cumulative `(worker_ns, apply_ns)` phase split of every sharded
    /// batch this engine has run: time in the parallel wave phase vs time
    /// in write application. `apply / (worker + apply)` is the serial-ish
    /// fraction Amdahl charges the batch path — the number the phase-split
    /// bench reporter tracks across PRs.
    pub fn batch_phase_ns(&self) -> (u64, u64) {
        (self.batch_worker_ns, self.batch_apply_ns)
    }

    /// Drops the cached per-view dispatch resolutions. Must be called when
    /// the engine is pointed at a *different database* (`adopt_project`):
    /// the cache is indexed by the database's interned view symbols, and a
    /// replacement database may intern the same view names in a different
    /// order (e.g. `persist::load` interns in image order, not original
    /// creation order). Blueprint swaps are detected automatically via
    /// [`CompiledBlueprint::generation`]; database swaps are not.
    pub fn invalidate_dispatch_cache(&mut self) {
        // Generations start at 1, so 0 forces a refill on the next wave.
        self.scratch.view_cache.clear();
        self.scratch.view_cache_gen = 0;
        for scratch in &mut self.worker_scratches {
            scratch.view_cache.clear();
            scratch.view_cache_gen = 0;
        }
    }

    /// Processes one design event to completion (the full propagation wave).
    ///
    /// # Errors
    ///
    /// Returns a policy violation under [`Strictness::Reject`] policies, or
    /// a meta-database error on stale handles. Database changes made before
    /// a mid-wave error are kept (the engine is an observer, not a
    /// transaction manager — matching DAMOCLES' non-obstructive stance).
    pub fn process(
        &mut self,
        bp: &Blueprint,
        db: &mut MetaDb,
        audit: &mut AuditLog,
        ev: QueuedEvent,
    ) -> Result<ProcessOutcome, EngineError> {
        self.clock += 1;
        let mut outcome = ProcessOutcome::default();
        let mut visited: HashSet<(OidId, String)> = HashSet::new();
        let mut work: VecDeque<WaveItem> = VecDeque::new();
        work.push_back(WaveItem {
            event: ev.event,
            direction: ev.direction,
            delivery: ev.delivery,
            args: ev.args,
            depth: 0,
        });

        while let Some(item) = work.pop_front() {
            match item.delivery {
                Delivery::Target(id) => {
                    self.deliver(
                        bp,
                        db,
                        audit,
                        &ev.user,
                        &item,
                        id,
                        &mut visited,
                        &mut work,
                        &mut outcome,
                    )?;
                }
                Delivery::PropagateFrom(id) => {
                    self.propagate(db, audit, &item, id, &mut work)?;
                }
            }
        }
        Ok(outcome)
    }

    /// Rule execution at one OID, then onward propagation.
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &self,
        bp: &Blueprint,
        db: &mut MetaDb,
        audit: &mut AuditLog,
        user: &str,
        item: &WaveItem,
        id: OidId,
        visited: &mut HashSet<(OidId, String)>,
        work: &mut VecDeque<WaveItem>,
        outcome: &mut ProcessOutcome,
    ) -> Result<(), EngineError> {
        let oid = db.oid(id)?.clone();
        if self.policy.cycle_guard && !visited.insert((id, item.event.clone())) {
            audit.push(AuditRecord::CycleSkipped {
                oid,
                event: item.event.clone(),
            });
            return Ok(());
        }

        let view_name = oid.view.to_string();
        let view = bp.view(&view_name);
        if view.is_none() && view_name != "default" {
            match self.policy.unknown_views {
                Strictness::Reject => {
                    return Err(PolicyViolation::UnknownView {
                        view: view_name,
                        event: item.event.clone(),
                    }
                    .into());
                }
                Strictness::Observe => audit.push(AuditRecord::UnmatchedEvent {
                    oid: oid.clone(),
                    event: item.event.clone(),
                }),
                Strictness::Lenient => {}
            }
        }

        // Gather matching rules: default view first ("applies to all the
        // views"), then the specific view's.
        let mut rules: Vec<&RuleDef> = Vec::new();
        if let Some(default) = bp.default_view() {
            if view_name != "default" {
                rules.extend(default.rules_for(&item.event));
            }
        }
        if let Some(v) = view {
            rules.extend(v.rules_for(&item.event));
        }

        if rules.is_empty() {
            match self.policy.unmatched_events {
                Strictness::Reject => {
                    return Err(PolicyViolation::UnmatchedEvent {
                        view: view_name,
                        event: item.event.clone(),
                    }
                    .into());
                }
                Strictness::Observe => audit.push(AuditRecord::UnmatchedEvent {
                    oid: oid.clone(),
                    event: item.event.clone(),
                }),
                Strictness::Lenient => {}
            }
        }

        audit.push(AuditRecord::Delivered {
            oid: oid.clone(),
            event: item.event.clone(),
        });
        outcome.delivered += 1;

        // Phase split per Section 3.2: assigns, then lets, then execs, then
        // posts.
        let mut assigns: Vec<(&str, &Template)> = Vec::new();
        let mut execs: Vec<(&Template, &[Template], bool)> = Vec::new();
        let mut posts: Vec<(&str, Direction, Option<&str>, &[Template])> = Vec::new();
        for rule in &rules {
            for action in &rule.actions {
                match action {
                    Action::Assign { prop, value } => assigns.push((prop, value)),
                    Action::Exec { script, args } => execs.push((script, args, false)),
                    Action::Notify { message } => {
                        execs.push((message, &[], true));
                    }
                    Action::Post {
                        event,
                        direction,
                        to_view,
                        args,
                    } => posts.push((event, *direction, to_view.as_deref(), args)),
                }
            }
        }

        // 1. assign rules
        for (prop, template) in assigns {
            let value = {
                let entry = db.entry(id)?;
                let ctx = EvalCtx {
                    props: &entry.props,
                    overlay: None,
                    oid: &oid,
                    event: &item.event,
                    args: &item.args,
                    user,
                    date: self.clock,
                };
                ctx.render_value(template)
            };
            let old = db.set_prop(id, prop, value.clone())?;
            audit.push(AuditRecord::Assigned {
                oid: oid.clone(),
                prop: prop.to_string(),
                old,
                new: value,
            });
        }

        // 2. continuous assignments (default view's, then the view's).
        let mut lets: Vec<&LetDef> = Vec::new();
        if self.policy.eager_lets {
            if let Some(default) = bp.default_view() {
                if view_name != "default" {
                    lets.extend(default.lets.iter());
                }
            }
            if let Some(v) = view {
                lets.extend(v.lets.iter());
            }
        }
        for let_def in lets {
            let value = {
                let entry = db.entry(id)?;
                let ctx = EvalCtx {
                    props: &entry.props,
                    overlay: None,
                    oid: &oid,
                    event: &item.event,
                    args: &item.args,
                    user,
                    date: self.clock,
                };
                ctx.eval(&let_def.expr)
            };
            db.set_prop(id, &let_def.name, value.clone())?;
            audit.push(AuditRecord::Reevaluated {
                oid: oid.clone(),
                name: let_def.name.clone(),
                value,
            });
        }

        // 3. exec rules (collected; the server dispatches them post-wave).
        for (script_t, args_t, notify) in execs {
            let entry = db.entry(id)?;
            let ctx = EvalCtx {
                props: &entry.props,
                overlay: None,
                oid: &oid,
                event: &item.event,
                args: &item.args,
                user,
                date: self.clock,
            };
            let invocation = if notify {
                ScriptInvocation {
                    script: "notify".to_string(),
                    args: vec![ctx.render(script_t)],
                    notify: true,
                    origin: oid.to_string(),
                    event: item.event.clone(),
                }
            } else {
                ScriptInvocation {
                    script: ctx.render(script_t),
                    args: args_t.iter().map(|a| ctx.render(a)).collect(),
                    notify: false,
                    origin: oid.to_string(),
                    event: item.event.clone(),
                }
            };
            audit.push(AuditRecord::ScriptInvoked {
                script: invocation.script.clone(),
                args: invocation.args.clone(),
                notify,
            });
            outcome.invocations.push(invocation);
        }

        // 4. post rules
        for (event, direction, to_view, args_t) in posts {
            let rendered_args: Vec<String> = {
                let entry = db.entry(id)?;
                let ctx = EvalCtx {
                    props: &entry.props,
                    overlay: None,
                    oid: &oid,
                    event: &item.event,
                    args: &item.args,
                    user,
                    date: self.clock,
                };
                args_t.iter().map(|a| ctx.render(a)).collect()
            };
            audit.push(AuditRecord::EventPosted {
                from: oid.clone(),
                event: event.to_string(),
                direction,
                to_view: to_view.map(str::to_string),
            });
            if item.depth >= self.policy.max_post_depth {
                audit.push(AuditRecord::DepthTruncated {
                    event: event.to_string(),
                });
                continue;
            }
            match to_view {
                Some(target_view) => {
                    // Targeted post: one hop through an allowing link to OIDs
                    // of the named view; rules run there.
                    for next in db.neighbors(id, direction, Some(event))? {
                        if db.oid(next)?.view.as_str() == target_view {
                            audit.push(AuditRecord::Propagated {
                                from: oid.clone(),
                                to: db.oid(next)?.clone(),
                                event: event.to_string(),
                            });
                            work.push_back(WaveItem {
                                event: event.to_string(),
                                direction,
                                delivery: Delivery::Target(next),
                                args: rendered_args.clone(),
                                depth: item.depth + 1,
                            });
                        }
                    }
                }
                None => {
                    work.push_back(WaveItem {
                        event: event.to_string(),
                        direction,
                        delivery: Delivery::PropagateFrom(id),
                        args: rendered_args,
                        depth: item.depth + 1,
                    });
                }
            }
        }

        // 5. propagate the delivered event itself.
        self.propagate(db, audit, item, id, work)?;
        Ok(())
    }

    /// Crosses every allowing link out of `id`, scheduling full delivery at
    /// the far ends.
    fn propagate(
        &self,
        db: &mut MetaDb,
        audit: &mut AuditLog,
        item: &WaveItem,
        id: OidId,
        work: &mut VecDeque<WaveItem>,
    ) -> Result<(), EngineError> {
        let from = db.oid(id)?.clone();
        for next in db.neighbors(id, item.direction, Some(&item.event))? {
            audit.push(AuditRecord::Propagated {
                from: from.clone(),
                to: db.oid(next)?.clone(),
                event: item.event.clone(),
            });
            work.push_back(WaveItem {
                event: item.event.clone(),
                direction: item.direction,
                delivery: Delivery::Target(next),
                args: item.args.clone(),
                depth: item.depth,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Compiled dispatch path
    // ------------------------------------------------------------------

    /// Processes one design event through the compiled dispatch path —
    /// semantically identical to [`RuntimeEngine::process`] (the
    /// differential property test in `tests/compiled_differential.rs` holds
    /// the two to the same outcome, audit sequence and database state), but:
    ///
    /// * rule lookup is a hash probe on an interned event symbol instead of
    ///   a linear scan with string compares;
    /// * the visited set is keyed by `(OidId, Sym)` — `Copy`, no `String`
    ///   clone per probe;
    /// * the visited set, work queue and neighbor buffers are engine-owned
    ///   scratch reused across waves, so steady-state processing does not
    ///   allocate;
    /// * audit records are only materialized when the log retains them
    ///   (counters stay exact either way).
    ///
    /// # Errors
    ///
    /// As [`RuntimeEngine::process`].
    pub fn process_compiled(
        &mut self,
        compiled: &CompiledBlueprint,
        db: &mut MetaDb,
        audit: &mut AuditLog,
        ev: QueuedEvent,
    ) -> Result<ProcessOutcome, EngineError> {
        self.process_compiled_traced(compiled, db, audit, &mut TraceLog::disabled(), ev)
    }

    /// [`RuntimeEngine::process_compiled`] with execution tracing: when
    /// `trace` retains records, the wave's steps land in it bracketed by
    /// `Begin`/`End` (see [`TraceRecord`]). With a disabled trace this is
    /// exactly `process_compiled` — every hook is one branch.
    ///
    /// # Errors
    ///
    /// As [`RuntimeEngine::process`].
    pub fn process_compiled_traced(
        &mut self,
        compiled: &CompiledBlueprint,
        db: &mut MetaDb,
        audit: &mut AuditLog,
        trace: &mut TraceLog,
        mut ev: QueuedEvent,
    ) -> Result<ProcessOutcome, EngineError> {
        self.clock += 1;
        let clock = self.clock;
        let mut outcome = ProcessOutcome::default();
        let mut scratch = std::mem::take(&mut self.scratch);
        let args = std::mem::take(&mut ev.args);
        if trace.enabled() {
            if let Ok(target) = db.oid(ev.delivery.anchor()) {
                trace.push(TraceRecord::Begin {
                    event: ev.event.clone(),
                    target: target.clone(),
                    user: ev.user.clone(),
                    clock,
                    lane: None,
                    shard: None,
                });
            }
        }
        Self::seed_wave(compiled, &mut scratch, &ev, args);
        let QueuedEvent { user, .. } = ev;
        let mut store = DirectStore { db };
        let result = self.run_wave(
            compiled,
            &mut store,
            audit,
            trace,
            &user,
            &mut scratch,
            &mut outcome,
            clock,
        );
        if trace.enabled() {
            trace.push(TraceRecord::End {
                delivered: outcome.delivered,
            });
        }
        self.scratch = scratch;
        result.map(|()| outcome)
    }

    /// Resets the scratch and enqueues the wave's root item for `ev`.
    /// `args` is passed separately so the sequential path can move the
    /// event's arguments (no per-event allocation) while the lane path —
    /// which must keep the event intact for error requeueing — clones.
    fn seed_wave(
        compiled: &CompiledBlueprint,
        scratch: &mut WaveScratch,
        ev: &QueuedEvent,
        args: Vec<String>,
    ) {
        scratch.visited.clear();
        scratch.work.clear();
        scratch.extra_map.clear();
        let (sym, name) = scratch.intern(compiled, &ev.event);
        scratch.work.push_back(CompiledWaveItem {
            event: sym,
            name,
            direction: ev.direction,
            delivery: ev.delivery,
            args: if args.is_empty() {
                empty_args()
            } else {
                args.into()
            },
            depth: 0,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn run_wave<S: WaveStore>(
        &self,
        compiled: &CompiledBlueprint,
        store: &mut S,
        audit: &mut AuditLog,
        trace: &mut TraceLog,
        user: &str,
        scratch: &mut WaveScratch,
        outcome: &mut ProcessOutcome,
        clock: u64,
    ) -> Result<(), EngineError> {
        while let Some(item) = scratch.work.pop_front() {
            match item.delivery {
                Delivery::Target(id) => {
                    self.deliver_compiled(
                        compiled, store, audit, trace, user, &item, id, scratch, outcome, clock,
                    )?;
                }
                Delivery::PropagateFrom(id) => {
                    self.propagate_compiled(store, audit, trace, &item, id, scratch)?;
                }
            }
        }
        Ok(())
    }

    /// Rule execution at one OID on the compiled path, then onward
    /// propagation. Mirrors [`RuntimeEngine::deliver`] step for step
    /// (including audit-record order) so the two paths stay differentially
    /// testable.
    #[allow(clippy::too_many_arguments)]
    fn deliver_compiled<S: WaveStore>(
        &self,
        compiled: &CompiledBlueprint,
        store: &mut S,
        audit: &mut AuditLog,
        trace: &mut TraceLog,
        user: &str,
        item: &CompiledWaveItem,
        id: OidId,
        scratch: &mut WaveScratch,
        outcome: &mut ProcessOutcome,
        clock: u64,
    ) -> Result<(), EngineError> {
        let ev_name: &str = &item.name;
        // Probe liveness first, as the interpreted path does.
        store.probe(id)?;
        if self.policy.cycle_guard && !scratch.visited.insert((id, item.event)) {
            audit_record(audit, AuditKind::CycleSkipped, || {
                Ok(AuditRecord::CycleSkipped {
                    oid: store.oid(id)?.clone(),
                    event: ev_name.to_string(),
                })
            })?;
            return Ok(());
        }

        let (table, dispatch) = {
            // Resolve the dispatch table through the per-view cache: the
            // database interned the view name at OID creation, so the
            // steady state is one Vec index instead of a string hash.
            let view_sym = store.view_sym(id)?;
            let table_index = {
                let oid = store.oid(id)?;
                scratch.table_index(compiled, view_sym, oid.view.as_str())
            };
            if table_index.is_none() && store.oid(id)?.view.as_str() != "default" {
                match self.policy.unknown_views {
                    Strictness::Reject => {
                        return Err(PolicyViolation::UnknownView {
                            view: store.oid(id)?.view.to_string(),
                            event: ev_name.to_string(),
                        }
                        .into());
                    }
                    Strictness::Observe => {
                        audit_record(audit, AuditKind::UnmatchedEvent, || {
                            Ok(AuditRecord::UnmatchedEvent {
                                oid: store.oid(id)?.clone(),
                                event: ev_name.to_string(),
                            })
                        })?;
                    }
                    Strictness::Lenient => {}
                }
            }
            let table = compiled.table_at(table_index);
            (table, table.dispatch(item.event))
        };

        if dispatch.is_none() {
            match self.policy.unmatched_events {
                Strictness::Reject => {
                    return Err(PolicyViolation::UnmatchedEvent {
                        view: store.oid(id)?.view.to_string(),
                        event: ev_name.to_string(),
                    }
                    .into());
                }
                Strictness::Observe => {
                    audit_record(audit, AuditKind::UnmatchedEvent, || {
                        Ok(AuditRecord::UnmatchedEvent {
                            oid: store.oid(id)?.clone(),
                            event: ev_name.to_string(),
                        })
                    })?;
                }
                Strictness::Lenient => {}
            }
        }

        audit_record(audit, AuditKind::Delivered, || {
            Ok(AuditRecord::Delivered {
                oid: store.oid(id)?.clone(),
                event: ev_name.to_string(),
            })
        })?;
        if trace.enabled() {
            let oid = store.oid(id)?.clone();
            trace.push(TraceRecord::Deliver {
                view: oid.view.to_string(),
                oid,
                event: ev_name.to_string(),
            });
        }
        outcome.delivered += 1;

        // 1. assign rules (pre-merged, pre-phase-split).
        if let Some(d) = dispatch {
            for assign in d.assigns.iter() {
                let value = {
                    let (props, overlay) = store.props(id)?;
                    let oid = store.oid(id)?;
                    let ctx = EvalCtx {
                        props,
                        overlay,
                        oid,
                        event: ev_name,
                        args: &item.args,
                        user,
                        date: clock,
                    };
                    ctx.render_value(&assign.value)
                };
                if trace.enabled() {
                    trace.push(TraceRecord::Write {
                        oid: store.oid(id)?.clone(),
                        prop: assign.prop.clone(),
                        value: value.clone(),
                    });
                }
                if audit.enabled() {
                    let old = store.set_prop(id, &assign.prop, value.clone())?;
                    audit.push(AuditRecord::Assigned {
                        oid: store.oid(id)?.clone(),
                        prop: assign.prop.clone(),
                        old,
                        new: value,
                    });
                } else {
                    store.set_prop_quiet(id, &assign.prop, value)?;
                    audit.note(AuditKind::Assigned);
                }
            }
        }

        // 2. continuous assignments (pre-merged per view).
        if self.policy.eager_lets {
            for let_def in table.lets() {
                let value = {
                    let (props, overlay) = store.props(id)?;
                    let oid = store.oid(id)?;
                    let ctx = EvalCtx {
                        props,
                        overlay,
                        oid,
                        event: ev_name,
                        args: &item.args,
                        user,
                        date: clock,
                    };
                    ctx.eval(&let_def.expr)
                };
                if trace.enabled() {
                    trace.push(TraceRecord::Write {
                        oid: store.oid(id)?.clone(),
                        prop: let_def.name.clone(),
                        value: value.clone(),
                    });
                }
                if audit.enabled() {
                    store.set_prop(id, &let_def.name, value.clone())?;
                    audit.push(AuditRecord::Reevaluated {
                        oid: store.oid(id)?.clone(),
                        name: let_def.name.clone(),
                        value,
                    });
                } else {
                    store.set_prop_quiet(id, &let_def.name, value)?;
                    audit.note(AuditKind::Reevaluated);
                }
            }
        }

        if let Some(d) = dispatch {
            // 3. exec rules (collected; the server dispatches them post-wave).
            for exec in d.execs.iter() {
                let invocation = {
                    let (props, overlay) = store.props(id)?;
                    let oid = store.oid(id)?;
                    let ctx = EvalCtx {
                        props,
                        overlay,
                        oid,
                        event: ev_name,
                        args: &item.args,
                        user,
                        date: clock,
                    };
                    if exec.notify {
                        ScriptInvocation {
                            script: "notify".to_string(),
                            args: vec![ctx.render(&exec.script)],
                            notify: true,
                            origin: oid.to_string(),
                            event: ev_name.to_string(),
                        }
                    } else {
                        ScriptInvocation {
                            script: ctx.render(&exec.script),
                            args: exec.args.iter().map(|a| ctx.render(a)).collect(),
                            notify: false,
                            origin: oid.to_string(),
                            event: ev_name.to_string(),
                        }
                    }
                };
                audit_record(audit, AuditKind::ScriptInvoked, || {
                    Ok(AuditRecord::ScriptInvoked {
                        script: invocation.script.clone(),
                        args: invocation.args.clone(),
                        notify: exec.notify,
                    })
                })?;
                if trace.enabled() {
                    trace.push(TraceRecord::Invoke {
                        script: invocation.script.clone(),
                        origin: store.oid(id)?.clone(),
                        event: ev_name.to_string(),
                    });
                }
                outcome.invocations.push(invocation);
            }

            // 4. post rules.
            for post in d.posts.iter() {
                let post_name = compiled
                    .name_arc(post.event)
                    .expect("compiled posts resolve");
                let rendered_args: Arc<[String]> = if post.args.is_empty() {
                    empty_args()
                } else {
                    let (props, overlay) = store.props(id)?;
                    let oid = store.oid(id)?;
                    let ctx = EvalCtx {
                        props,
                        overlay,
                        oid,
                        event: ev_name,
                        args: &item.args,
                        user,
                        date: clock,
                    };
                    post.args
                        .iter()
                        .map(|a| ctx.render(a))
                        .collect::<Vec<_>>()
                        .into()
                };
                audit_record(audit, AuditKind::EventPosted, || {
                    Ok(AuditRecord::EventPosted {
                        from: store.oid(id)?.clone(),
                        event: post_name.to_string(),
                        direction: post.direction,
                        to_view: post.to_view.clone(),
                    })
                })?;
                if item.depth >= self.policy.max_post_depth {
                    audit_record(audit, AuditKind::DepthTruncated, || {
                        Ok(AuditRecord::DepthTruncated {
                            event: post_name.to_string(),
                        })
                    })?;
                    continue;
                }
                match &post.to_view {
                    Some(target_view) => {
                        // Targeted post: one hop through an allowing link to
                        // OIDs of the named view; rules run there.
                        scratch.neighbors.clear();
                        store.neighbors_into(
                            id,
                            post.direction,
                            Some(post_name),
                            &mut scratch.neighbors,
                        )?;
                        for i in 0..scratch.neighbors.len() {
                            let next = scratch.neighbors[i];
                            if store.oid(next)?.view.as_str() == target_view.as_str() {
                                audit_record(audit, AuditKind::Propagated, || {
                                    Ok(AuditRecord::Propagated {
                                        from: store.oid(id)?.clone(),
                                        to: store.oid(next)?.clone(),
                                        event: post_name.to_string(),
                                    })
                                })?;
                                if trace.enabled() {
                                    trace.push(TraceRecord::Fire {
                                        from: store.oid(id)?.clone(),
                                        to: store.oid(next)?.clone(),
                                        event: post_name.to_string(),
                                    });
                                }
                                scratch.work.push_back(CompiledWaveItem {
                                    event: post.event,
                                    name: Arc::clone(post_name),
                                    direction: post.direction,
                                    delivery: Delivery::Target(next),
                                    args: Arc::clone(&rendered_args),
                                    depth: item.depth + 1,
                                });
                            }
                        }
                    }
                    None => {
                        scratch.work.push_back(CompiledWaveItem {
                            event: post.event,
                            name: Arc::clone(post_name),
                            direction: post.direction,
                            delivery: Delivery::PropagateFrom(id),
                            args: rendered_args,
                            depth: item.depth + 1,
                        });
                    }
                }
            }
        }

        // 5. propagate the delivered event itself.
        self.propagate_compiled(store, audit, trace, item, id, scratch)?;
        Ok(())
    }

    /// Compiled-path counterpart of [`RuntimeEngine::propagate`]: crosses
    /// every allowing link out of `id` using the reusable neighbor buffer.
    fn propagate_compiled<S: WaveStore>(
        &self,
        store: &mut S,
        audit: &mut AuditLog,
        trace: &mut TraceLog,
        item: &CompiledWaveItem,
        id: OidId,
        scratch: &mut WaveScratch,
    ) -> Result<(), EngineError> {
        scratch.neighbors.clear();
        store.neighbors_into(id, item.direction, Some(&item.name), &mut scratch.neighbors)?;
        for i in 0..scratch.neighbors.len() {
            let next = scratch.neighbors[i];
            audit_record(audit, AuditKind::Propagated, || {
                Ok(AuditRecord::Propagated {
                    from: store.oid(id)?.clone(),
                    to: store.oid(next)?.clone(),
                    event: item.name.to_string(),
                })
            })?;
            if trace.enabled() {
                trace.push(TraceRecord::Fire {
                    from: store.oid(id)?.clone(),
                    to: store.oid(next)?.clone(),
                    event: item.name.to_string(),
                });
            }
            scratch.work.push_back(CompiledWaveItem {
                event: item.event,
                name: Arc::clone(&item.name),
                direction: item.direction,
                delivery: Delivery::Target(next),
                args: Arc::clone(&item.args),
                depth: item.depth,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Sharded batch path
    // ------------------------------------------------------------------

    /// Processes a batch of design events as N parallel shards —
    /// observationally identical to running [`RuntimeEngine::process_compiled`]
    /// over the batch in order, for *any* worker count (the sharded
    /// differential property test holds outcomes, merged audit and the
    /// persisted database image byte-identical across `n ∈ {1, 2, 4, 8}`
    /// and the sequential path).
    ///
    /// How the equivalence is engineered:
    ///
    /// * events are **grouped by execution shard** ([`ShardMap::group_of`]
    ///   of their anchor OID). The shard invariant — no allowing link ever
    ///   crosses group boundaries — means an event's wave reads and writes
    ///   only its own group's OIDs, so groups are independent;
    /// * each group runs on one worker lane in batch order; workers execute
    ///   waves against an overlay store (shared read-only database +
    ///   private copy-on-write overlay), recording per-event write logs and
    ///   per-event audit buffers. Each event carries its sequential logical
    ///   clock (`base + index + 1`), so `$date` is position-dependent, not
    ///   schedule-dependent;
    /// * a **deterministic sequential epilogue** replays the write logs
    ///   through the real database in ascending batch order — journal ops,
    ///   secondary indices and counters land exactly as sequential
    ///   execution would have produced them — and merges the audit buffers
    ///   in the same order;
    /// * on a wave error, the epilogue applies the error event's partial
    ///   writes (the engine is an observer, not a transaction manager —
    ///   same contract as the sequential path), reports the error, and
    ///   returns every later event in [`ShardedBatch::unprocessed`] so the
    ///   caller can requeue them untouched.
    ///
    /// Worker parallelism never changes results — only wall-clock time.
    pub fn process_batch_sharded(
        &mut self,
        compiled: &CompiledBlueprint,
        shards: &ShardMap,
        db: &mut MetaDb,
        audit: &mut AuditLog,
        events: Vec<QueuedEvent>,
        workers: usize,
    ) -> ShardedBatch {
        let mut trace = TraceLog::disabled();
        self.process_batch_sharded_traced(compiled, shards, db, audit, &mut trace, events, workers)
    }

    /// [`RuntimeEngine::process_batch_sharded`] with an execution trace.
    ///
    /// Workers buffer trace records per event (like their audit buffers)
    /// and the sequential epilogue absorbs them in ascending batch order,
    /// so the merged trace is deterministic for any worker count. Records
    /// from this path carry the worker lane and execution shard of each
    /// event; when `trace` is disabled the path is byte-for-byte the
    /// untraced one (no shard lookups, no buffering).
    #[allow(clippy::too_many_arguments)]
    pub fn process_batch_sharded_traced(
        &mut self,
        compiled: &CompiledBlueprint,
        shards: &ShardMap,
        db: &mut MetaDb,
        audit: &mut AuditLog,
        trace: &mut TraceLog,
        events: Vec<QueuedEvent>,
        workers: usize,
    ) -> ShardedBatch {
        let base_clock = self.clock;
        if events.is_empty() {
            return ShardedBatch::default();
        }

        // Group by execution shard, preserving batch order inside a group.
        let mut groups: BTreeMap<ShardId, Vec<(usize, QueuedEvent)>> = BTreeMap::new();
        for (index, ev) in events.into_iter().enumerate() {
            let group = shards.group_of(compiled, db, ev.delivery.anchor());
            groups.entry(group).or_default().push((index, ev));
        }

        // Deterministic greedy lane assignment: groups in shard-id order,
        // each to the least-loaded lane.
        let lane_count = workers.clamp(1, groups.len().max(1));
        let mut lanes: Vec<Vec<(usize, QueuedEvent)>> =
            (0..lane_count).map(|_| Vec::new()).collect();
        let mut load = vec![0usize; lane_count];
        for (_, group) in groups {
            let lane = (0..lane_count)
                .min_by_key(|&l| (load[l], l))
                .expect("lane_count >= 1");
            load[lane] += group.len();
            lanes[lane].extend(group);
        }
        for lane in &mut lanes {
            lane.sort_by_key(|(index, _)| *index);
        }

        // Per-worker scratches, taken out of the engine for the scope.
        if self.worker_scratches.len() < lane_count {
            self.worker_scratches
                .resize_with(lane_count, WaveScratch::default);
        }
        let mut pool = std::mem::take(&mut self.worker_scratches);
        let audit_proto: &AuditLog = audit;
        let trace_proto: &TraceLog = trace;
        let engine: &RuntimeEngine = self;
        let shared_db: &MetaDb = db;
        let mut outputs: Vec<LaneOutput> = Vec::with_capacity(lane_count);
        let worker_start = std::time::Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .into_iter()
                .enumerate()
                .zip(pool.iter_mut())
                .map(|((lane_id, lane), scratch)| {
                    scope.spawn(move || {
                        engine.run_lane(
                            compiled,
                            shared_db,
                            audit_proto,
                            trace_proto,
                            shards,
                            lane_id,
                            lane,
                            scratch,
                            base_clock,
                        )
                    })
                })
                .collect();
            for handle in handles {
                outputs.push(handle.join().expect("wave worker panicked"));
            }
        });
        self.worker_scratches = pool;
        self.batch_worker_ns += worker_start.elapsed().as_nanos() as u64;

        // Deterministic epilogue. Runs up to (and including) the first
        // wave error apply; later ones requeue untouched.
        let apply_start = std::time::Instant::now();
        let mut runs: Vec<EventRun> = Vec::new();
        let mut deferred: Vec<(usize, QueuedEvent)> = Vec::new();
        for output in outputs {
            runs.extend(output.runs);
            deferred.extend(output.leftover);
        }
        runs.sort_by_key(|run| run.index);
        let err_index = runs
            .iter()
            .filter(|run| run.error.is_some())
            .map(|run| run.index)
            .min();
        let mut applied_runs: Vec<EventRun> = Vec::with_capacity(runs.len());
        for run in runs {
            if err_index.is_some_and(|k| run.index > k) {
                deferred.push((run.index, run.event));
            } else {
                applied_runs.push(run);
            }
        }

        // All surviving runs' writes go through the sharded write
        // pipeline in one pass: lanes are shard-disjoint by construction,
        // so storage and index maintenance parallelize, while journal
        // ops, counters and error semantics stay byte-identical to a
        // serial set_prop replay in batch order.
        let mut lane_writes: Vec<LaneWrites> =
            (0..lane_count).map(|_| LaneWrites::default()).collect();
        for run in &mut applied_runs {
            let writes = std::mem::take(&mut run.writes);
            lane_writes[run.lane].runs.push((run.index, writes));
        }
        let apply_err = db.apply_prop_writes_sharded(lane_writes, workers).err();
        let apply_err_index = apply_err.as_ref().map(|(index, _)| *index);
        let mut apply_error = apply_err.map(|(index, e)| (index, EngineError::from(e)));

        let mut batch = ShardedBatch::default();
        let mut processed = 0u64;
        for run in applied_runs {
            if batch.error.is_some() || apply_err_index.is_some_and(|k| run.index > k) {
                deferred.push((run.index, run.event));
                continue;
            }
            processed += 1;
            audit.absorb(run.audit);
            trace.absorb(run.trace);
            let apply_e = match &apply_error {
                Some((index, _)) if *index == run.index => apply_error.take().map(|(_, e)| e),
                _ => None,
            };
            match run.error.or(apply_e) {
                Some(e) => batch.error = Some(e),
                None => batch.outcomes.push(run.outcome),
            }
        }
        self.clock = base_clock + processed;
        deferred.sort_by_key(|(index, _)| *index);
        batch.unprocessed = deferred.into_iter().map(|(_, ev)| ev).collect();
        self.batch_apply_ns += apply_start.elapsed().as_nanos() as u64;
        batch
    }

    /// One worker's share of a sharded batch: executes its events in batch
    /// order against an overlay store, stopping at the first error (the
    /// epilogue decides what the authoritative batch error is).
    #[allow(clippy::too_many_arguments)]
    fn run_lane(
        &self,
        compiled: &CompiledBlueprint,
        db: &MetaDb,
        audit_proto: &AuditLog,
        trace_proto: &TraceLog,
        shards: &ShardMap,
        lane_id: usize,
        lane: Vec<(usize, QueuedEvent)>,
        scratch: &mut WaveScratch,
        base_clock: u64,
    ) -> LaneOutput {
        let mut store = OverlayStore {
            db,
            dirty: OidMap::default(),
            writes: Vec::new(),
        };
        let mut runs = Vec::with_capacity(lane.len());
        let mut iter = lane.into_iter();
        for (index, ev) in iter.by_ref() {
            let clock = base_clock + index as u64 + 1;
            let mut audit = audit_proto.buffer();
            let mut trace = trace_proto.buffer();
            if trace.enabled() {
                let shard = shards.group_of(compiled, db, ev.delivery.anchor());
                if let Ok(target) = db.oid(ev.delivery.anchor()) {
                    trace.push(TraceRecord::Begin {
                        event: ev.event.clone(),
                        target: target.clone(),
                        user: ev.user.clone(),
                        clock,
                        lane: Some(lane_id as u64),
                        shard: Some(u64::from(shard.0)),
                    });
                }
            }
            let mut outcome = ProcessOutcome::default();
            // The event stays intact for error requeueing, so the lane
            // clones its arguments into the wave.
            Self::seed_wave(compiled, scratch, &ev, ev.args.clone());
            let result = self.run_wave(
                compiled,
                &mut store,
                &mut audit,
                &mut trace,
                &ev.user,
                scratch,
                &mut outcome,
                clock,
            );
            if trace.enabled() {
                trace.push(TraceRecord::End {
                    delivered: outcome.delivered,
                });
            }
            let writes = std::mem::take(&mut store.writes);
            let error = result.err();
            let stop = error.is_some();
            runs.push(EventRun {
                index,
                lane: lane_id,
                event: ev,
                writes,
                audit,
                trace,
                outcome,
                error,
            });
            if stop {
                break;
            }
        }
        LaneOutput {
            runs,
            leftover: iter.collect(),
        }
    }
}

/// The result of one sharded batch (see
/// [`RuntimeEngine::process_batch_sharded`]).
#[derive(Debug, Default)]
pub struct ShardedBatch {
    /// Per-event outcomes, in batch order, for every event that executed
    /// (all of them when `error` is `None`).
    pub outcomes: Vec<ProcessOutcome>,
    /// The first error in batch order, if any. Writes the erroring wave
    /// performed before failing are applied, as on the sequential path.
    pub error: Option<EngineError>,
    /// Events after the erroring one, untouched and in order — the caller
    /// requeues them at the front of its queue.
    pub unprocessed: Vec<QueuedEvent>,
}

/// What one worker lane produced.
struct LaneOutput {
    runs: Vec<EventRun>,
    leftover: Vec<(usize, QueuedEvent)>,
}

/// One executed event of a sharded batch, ready for the epilogue.
struct EventRun {
    index: usize,
    /// The worker lane that executed the event. Lanes hold disjoint OID
    /// sets, which is what lets the epilogue apply all lanes' writes
    /// through the parallel [`MetaDb::apply_prop_writes_sharded`] pass.
    lane: usize,
    event: QueuedEvent,
    writes: Vec<PropWrite>,
    audit: AuditLog,
    trace: TraceLog,
    outcome: ProcessOutcome,
    error: Option<EngineError>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::template;
    use crate::lang::parser::parse;
    use damocles_meta::{Oid, Value};

    /// hdl --derived(outofdate)--> sch --use(outofdate)--> reg
    /// with the default view's ckin/outofdate rules from §3.4.
    fn flow() -> (Blueprint, MetaDb, OidId, OidId, OidId) {
        let bp = parse(
            r#"blueprint t
            view default
                property uptodate default true
                when ckin do uptodate = true; post outofdate down done
                when outofdate do uptodate = false done
            endview
            view HDL_model endview
            view schematic
                link_from HDL_model move propagates outofdate type derived
                use_link move propagates outofdate
            endview
            endblueprint"#,
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let hdl = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        template::apply_on_create(&bp, &mut db, hdl, &mut audit).unwrap();
        let sch = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        template::apply_on_create(&bp, &mut db, sch, &mut audit).unwrap();
        let reg = db.create_oid(Oid::new("reg", "schematic", 1)).unwrap();
        template::apply_on_create(&bp, &mut db, reg, &mut audit).unwrap();
        template::instantiate_link(&bp, &mut db, hdl, sch).unwrap();
        template::instantiate_link(&bp, &mut db, sch, reg).unwrap();
        (bp, db, hdl, sch, reg)
    }

    fn uptodate(db: &MetaDb, id: OidId) -> bool {
        db.get_prop(id, "uptodate").unwrap().unwrap().is_truthy()
    }

    #[test]
    fn ckin_invalidates_derived_hierarchy() {
        let (bp, mut db, hdl, sch, reg) = flow();
        let mut audit = AuditLog::counters_only();
        let mut engine = RuntimeEngine::default();
        assert!(uptodate(&db, sch) && uptodate(&db, reg));

        let ev = QueuedEvent::target("ckin", Direction::Up, hdl, "yves");
        let outcome = engine.process(&bp, &mut db, &mut audit, ev).unwrap();

        // The posting OID keeps uptodate=true (posted events skip origin)...
        assert!(uptodate(&db, hdl));
        // ...while the derived schematic and its hierarchical component are
        // invalidated.
        assert!(!uptodate(&db, sch));
        assert!(!uptodate(&db, reg));
        // hdl + sch + reg all executed rules (hdl for ckin, others for
        // outofdate).
        assert_eq!(outcome.delivered, 3);
        assert_eq!(audit.summary().propagations, 2);
    }

    #[test]
    fn propagation_respects_event_filter() {
        let (bp, mut db, hdl, sch, _) = flow();
        let mut audit = AuditLog::counters_only();
        let mut engine = RuntimeEngine::default();
        // A `drc` event: no link propagates it, so it stays at its target.
        let ev = QueuedEvent::target("drc", Direction::Down, hdl, "t").with_arg("ok");
        let outcome = engine.process(&bp, &mut db, &mut audit, ev).unwrap();
        assert_eq!(outcome.delivered, 1);
        assert!(uptodate(&db, sch));
    }

    #[test]
    fn assign_uses_event_arg() {
        let bp = parse(
            r#"blueprint t view HDL_model
                property sim_result default bad
                when hdl_sim do sim_result = $arg done
            endview endblueprint"#,
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let id = db.create_oid(Oid::new("cpu", "HDL_model", 1)).unwrap();
        template::apply_on_create(&bp, &mut db, id, &mut audit).unwrap();
        let mut engine = RuntimeEngine::default();
        let ev = QueuedEvent::target("hdl_sim", Direction::Up, id, "sim").with_arg("4 errors");
        engine.process(&bp, &mut db, &mut audit, ev).unwrap();
        assert_eq!(
            db.get_prop(id, "sim_result").unwrap().unwrap().as_atom(),
            "4 errors"
        );
    }

    #[test]
    fn lets_reevaluate_after_assigns() {
        let bp = parse(
            r#"blueprint t view layout
                property drc_result default bad
                let state = ($drc_result == good)
                when drc do drc_result = $arg done
            endview endblueprint"#,
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let id = db.create_oid(Oid::new("alu", "layout", 1)).unwrap();
        template::apply_on_create(&bp, &mut db, id, &mut audit).unwrap();
        let mut engine = RuntimeEngine::default();

        let ev = QueuedEvent::target("drc", Direction::Down, id, "drc").with_arg("good");
        engine.process(&bp, &mut db, &mut audit, ev).unwrap();
        assert_eq!(db.get_prop(id, "state").unwrap(), Some(&Value::Bool(true)));

        let ev = QueuedEvent::target("drc", Direction::Down, id, "drc").with_arg("bad");
        engine.process(&bp, &mut db, &mut audit, ev).unwrap();
        assert_eq!(db.get_prop(id, "state").unwrap(), Some(&Value::Bool(false)));
    }

    #[test]
    fn exec_invocations_are_collected_not_run() {
        let bp = parse(
            r#"blueprint t view schematic
                when ckin do exec netlister "$oid" done
            endview endblueprint"#,
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let id = db.create_oid(Oid::new("cpu", "schematic", 2)).unwrap();
        let mut engine = RuntimeEngine::default();
        let ev = QueuedEvent::target("ckin", Direction::Up, id, "yves");
        let outcome = engine.process(&bp, &mut db, &mut audit, ev).unwrap();
        assert_eq!(outcome.invocations.len(), 1);
        let inv = &outcome.invocations[0];
        assert_eq!(inv.script, "netlister");
        assert_eq!(inv.args, vec!["cpu,schematic,2"]);
        assert!(!inv.notify);
    }

    #[test]
    fn post_to_view_targets_only_that_view() {
        let bp = parse(
            r#"blueprint t
            view src
                use_link propagates sim_ok
                link_from src propagates nothing
                when checkin do post sim_ok down to VerilogNetList done
            endview
            view VerilogNetList
                property seen default false
                link_from src propagates sim_ok type derived
                when sim_ok do seen = true done
            endview
            view EdifNetlist
                property seen default false
                link_from src propagates sim_ok type derived
                when sim_ok do seen = true done
            endview
            endblueprint"#,
        )
        .unwrap();
        // note: `link_from src` inside view src is invalid per validate(),
        // but harmless here; parser accepts it.
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let src = db.create_oid(Oid::new("cpu", "src", 1)).unwrap();
        let vnl = db.create_oid(Oid::new("cpu", "VerilogNetList", 1)).unwrap();
        let enl = db.create_oid(Oid::new("cpu", "EdifNetlist", 1)).unwrap();
        template::apply_on_create(&bp, &mut db, vnl, &mut audit).unwrap();
        template::apply_on_create(&bp, &mut db, enl, &mut audit).unwrap();
        template::instantiate_link(&bp, &mut db, src, vnl).unwrap();
        template::instantiate_link(&bp, &mut db, src, enl).unwrap();
        let mut engine = RuntimeEngine::default();
        let ev = QueuedEvent::target("checkin", Direction::Down, src, "yves");
        engine.process(&bp, &mut db, &mut audit, ev).unwrap();
        assert_eq!(db.get_prop(vnl, "seen").unwrap(), Some(&Value::Bool(true)));
        assert_eq!(db.get_prop(enl, "seen").unwrap(), Some(&Value::Bool(false)));
    }

    #[test]
    fn cycle_guard_terminates_equivalence_ping_pong() {
        // Two views tied by an equivalence link that propagates `lvs` both
        // ways, each re-posting on reception: without the guard this spins.
        let bp = parse(
            r#"blueprint t
            view A
                property got default false
                link_from B propagates lvs type equivalence
                when lvs do got = true; post lvs up done
            endview
            view B
                property got default false
                link_from A propagates lvs type equivalence
                when lvs do got = true; post lvs down done
            endview
            endblueprint"#,
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let a = db.create_oid(Oid::new("x", "A", 1)).unwrap();
        let b = db.create_oid(Oid::new("x", "B", 1)).unwrap();
        template::apply_on_create(&bp, &mut db, a, &mut audit).unwrap();
        template::apply_on_create(&bp, &mut db, b, &mut audit).unwrap();
        // Template orientation: B -> A (A declares link_from B).
        template::instantiate_link(&bp, &mut db, b, a).unwrap();
        let mut engine = RuntimeEngine::default();
        let ev = QueuedEvent::target("lvs", Direction::Down, b, "t");
        let outcome = engine.process(&bp, &mut db, &mut audit, ev).unwrap();
        assert!(outcome.delivered <= 3);
        assert!(audit.summary().cycle_skips >= 1);
        assert_eq!(db.get_prop(a, "got").unwrap(), Some(&Value::Bool(true)));
        assert_eq!(db.get_prop(b, "got").unwrap(), Some(&Value::Bool(true)));
    }

    #[test]
    fn depth_limit_truncates_runaway_posts() {
        // a chain of `ping` posts bouncing down a two-node path with a
        // pathological self-amplifying rule; depth limit must stop it even
        // with the cycle guard disabled.
        let bp = parse(
            r#"blueprint t
            view A
                link_from A propagates ping
                when ping do post ping down done
            endview
            endblueprint"#,
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        // chain a1 -> a2 -> a3 ... of the same view with ping links.
        let ids: Vec<OidId> = (0..6)
            .map(|i| db.create_oid(Oid::new(format!("b{i}"), "A", 1)).unwrap())
            .collect();
        for w in ids.windows(2) {
            db.add_link_with(
                w[0],
                w[1],
                damocles_meta::LinkClass::Derive,
                damocles_meta::LinkKind::DeriveFrom,
                ["ping"],
            )
            .unwrap();
        }
        let policy = Policy {
            cycle_guard: false,
            max_post_depth: 3,
            ..Policy::default()
        };
        let mut engine = RuntimeEngine::new(policy);
        let ev = QueuedEvent::target("ping", Direction::Down, ids[0], "t");
        let outcome = engine.process(&bp, &mut db, &mut audit, ev).unwrap();
        assert!(audit.summary().depth_truncations > 0);
        assert!(outcome.delivered < 64);
    }

    #[test]
    fn strict_policy_rejects_unknown_view() {
        let bp = parse("blueprint t view known endview endblueprint").unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let id = db.create_oid(Oid::new("b", "mystery", 1)).unwrap();
        let mut engine = RuntimeEngine::new(Policy::signoff());
        let ev = QueuedEvent::target("ckin", Direction::Up, id, "t");
        let err = engine.process(&bp, &mut db, &mut audit, ev).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Policy(PolicyViolation::UnknownView { .. })
        ));
    }

    #[test]
    fn lenient_policy_ignores_unmatched_events() {
        let bp = parse("blueprint t view v endview endblueprint").unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let id = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        let mut engine = RuntimeEngine::default();
        let ev = QueuedEvent::target("unheard_of", Direction::Down, id, "t");
        let outcome = engine.process(&bp, &mut db, &mut audit, ev).unwrap();
        assert_eq!(outcome.delivered, 1);
        assert!(outcome.invocations.is_empty());
    }

    #[test]
    fn clock_advances_per_event() {
        let bp = parse("blueprint t view v endview endblueprint").unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let id = db.create_oid(Oid::new("b", "v", 1)).unwrap();
        let mut engine = RuntimeEngine::default();
        assert_eq!(engine.clock(), 0);
        for i in 1..=3 {
            let ev = QueuedEvent::target("e", Direction::Down, id, "t");
            engine.process(&bp, &mut db, &mut audit, ev).unwrap();
            assert_eq!(engine.clock(), i);
        }
    }

    /// Compiles `bp` and runs one event through the compiled path.
    fn process_c(
        engine: &mut RuntimeEngine,
        bp: &Blueprint,
        db: &mut MetaDb,
        audit: &mut AuditLog,
        ev: QueuedEvent,
    ) -> ProcessOutcome {
        let compiled = CompiledBlueprint::compile(bp);
        engine.process_compiled(&compiled, db, audit, ev).unwrap()
    }

    #[test]
    fn compiled_path_invalidates_derived_hierarchy() {
        let (bp, mut db, hdl, sch, reg) = flow();
        let mut audit = AuditLog::counters_only();
        let mut engine = RuntimeEngine::default();
        let ev = QueuedEvent::target("ckin", Direction::Up, hdl, "yves");
        let outcome = process_c(&mut engine, &bp, &mut db, &mut audit, ev);
        assert!(uptodate(&db, hdl));
        assert!(!uptodate(&db, sch));
        assert!(!uptodate(&db, reg));
        assert_eq!(outcome.delivered, 3);
        assert_eq!(audit.summary().propagations, 2);
    }

    #[test]
    fn compiled_path_reuses_scratch_across_waves() {
        let (bp, mut db, hdl, _, _) = flow();
        let mut audit = AuditLog::counters_only();
        let mut engine = RuntimeEngine::default();
        let compiled = CompiledBlueprint::compile(&bp);
        for _ in 0..3 {
            let ev = QueuedEvent::target("ckin", Direction::Up, hdl, "yves");
            engine
                .process_compiled(&compiled, &mut db, &mut audit, ev)
                .unwrap();
        }
        assert_eq!(engine.clock(), 3);
        assert_eq!(audit.summary().deliveries, 9);
    }

    #[test]
    fn compiled_path_handles_events_outside_the_blueprint() {
        // An event name the blueprint never mentions must still deliver,
        // propagate across manually-created links that allow it, and hit the
        // cycle guard — exercising the engine-local symbol extension.
        let bp =
            parse("blueprint t view A property got default false endview endblueprint").unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let a = db.create_oid(Oid::new("x", "A", 1)).unwrap();
        let b = db.create_oid(Oid::new("y", "A", 1)).unwrap();
        db.add_link_with(
            a,
            b,
            damocles_meta::LinkClass::Derive,
            damocles_meta::LinkKind::DeriveFrom,
            ["zap"],
        )
        .unwrap();
        let mut engine = RuntimeEngine::default();
        let ev = QueuedEvent::target("zap", Direction::Down, a, "t");
        let outcome = process_c(&mut engine, &bp, &mut db, &mut audit, ev);
        assert_eq!(outcome.delivered, 2);
        assert_eq!(audit.summary().propagations, 1);
    }

    #[test]
    fn compiled_path_respects_post_to_view() {
        let bp = parse(
            r#"blueprint t
            view src
                use_link propagates sim_ok
                when checkin do post sim_ok down to VerilogNetList done
            endview
            view VerilogNetList
                property seen default false
                link_from src propagates sim_ok type derived
                when sim_ok do seen = true done
            endview
            view EdifNetlist
                property seen default false
                link_from src propagates sim_ok type derived
                when sim_ok do seen = true done
            endview
            endblueprint"#,
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let src = db.create_oid(Oid::new("cpu", "src", 1)).unwrap();
        let vnl = db.create_oid(Oid::new("cpu", "VerilogNetList", 1)).unwrap();
        let enl = db.create_oid(Oid::new("cpu", "EdifNetlist", 1)).unwrap();
        template::apply_on_create(&bp, &mut db, vnl, &mut audit).unwrap();
        template::apply_on_create(&bp, &mut db, enl, &mut audit).unwrap();
        template::instantiate_link(&bp, &mut db, src, vnl).unwrap();
        template::instantiate_link(&bp, &mut db, src, enl).unwrap();
        let mut engine = RuntimeEngine::default();
        let ev = QueuedEvent::target("checkin", Direction::Down, src, "yves");
        process_c(&mut engine, &bp, &mut db, &mut audit, ev);
        assert_eq!(db.get_prop(vnl, "seen").unwrap(), Some(&Value::Bool(true)));
        assert_eq!(db.get_prop(enl, "seen").unwrap(), Some(&Value::Bool(false)));
    }

    #[test]
    fn compiled_path_enforces_strict_policies() {
        let bp = parse("blueprint t view known endview endblueprint").unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let id = db.create_oid(Oid::new("b", "mystery", 1)).unwrap();
        let compiled = CompiledBlueprint::compile(&bp);
        let mut engine = RuntimeEngine::new(Policy::signoff());
        let ev = QueuedEvent::target("ckin", Direction::Up, id, "t");
        let err = engine
            .process_compiled(&compiled, &mut db, &mut audit, ev)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Policy(PolicyViolation::UnknownView { .. })
        ));
    }

    #[test]
    fn notify_renders_message() {
        let bp = parse(
            r#"blueprint t view v
                when checkin do notify "$owner: Your oid $OID has been modified" done
            endview endblueprint"#,
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::retaining();
        let id = db.create_oid(Oid::new("reg", "v", 4)).unwrap();
        db.set_prop(id, "owner", Value::Str("salma".into()))
            .unwrap();
        let mut engine = RuntimeEngine::default();
        let ev = QueuedEvent::target("checkin", Direction::Up, id, "yves");
        let outcome = engine.process(&bp, &mut db, &mut audit, ev).unwrap();
        assert_eq!(outcome.invocations.len(), 1);
        assert!(outcome.invocations[0].notify);
        assert_eq!(
            outcome.invocations[0].args[0],
            "salma: Your oid reg,v,4 has been modified"
        );
    }
}

//! The run-time half of the project BluePrint: event queue, rule engine,
//! template application, policies, audit trail and the project server
//! façade — plus the typed command protocol ([`api`], [`service`]) and
//! journal-tail replication ([`tail`], [`follower`]) built on top of it.

pub mod api;
pub mod audit;
pub mod compile;
pub mod error;
pub mod eval;
pub mod event;
pub mod exec;
pub mod fleet;
pub mod follower;
pub mod invoke;
pub mod policy;
pub mod queue;
pub mod runtime;
pub mod server;
pub mod service;
pub mod tail;
pub mod tasks;
pub mod template;
pub mod trace;

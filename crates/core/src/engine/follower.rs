//! The read-only replication follower: applies a leader's journal-tail
//! stream and serves read requests from the replicated image.
//!
//! A follower is a [`ProjectService`] whose single mutator is the
//! leader's committed op stream. One loop thread owns the service and
//! drains a single queue carrying **both** kinds of input — decoded
//! [`TailFrame`]s from the leader connection and client [`Envelope`]s
//! from the follower's own front door — so tail application and read
//! serving are serialized without locks, exactly like the leader's
//! command loop:
//!
//! * [`TailFrame::Reset`] → adopt the snapshot wholesale
//!   ([`ProjectServer::adopt_replica_image`]), rebuild the link-tag map
//!   in image order, cursor to `(epoch, 0)`;
//! * [`TailFrame::Record`] → verify checksum+sequence
//!   ([`journal::decode_record`]) and apply through the normal database
//!   API ([`ProjectServer::apply_replica_op`]);
//! * [`TailFrame::Epoch`] → the leader checkpointed; the follower's image
//!   already equals the new snapshot, so only re-tag links and move the
//!   cursor — no data transfer;
//! * read-only client requests (`Query`, `Show`, `Snapshot`, `Summary`,
//!   `Dump`, `Stat`, …) → answered from the replica; **mutations are
//!   rejected** with [`ApiError::ReadOnly`] naming the leader, and reads
//!   before the first bootstrap with [`ApiError::Lagging`].
//!
//! The loop is transport-agnostic: frames arrive through the same
//! channel whether a test hand-feeds them or the `damocles_server
//! --follow` runtime pumps them from a `RemoteWrapper` tail stream. A
//! lost leader connection degrades the follower to stale reads (loudly,
//! via [`FollowerStatus`]); the pump reconnects and resumes from the
//! cursor, and a divergent or garbled stream simply re-bootstraps.
//!
//! # Terms, fencing and promotion
//!
//! Every substantive frame carries the leadership **term** it was
//! committed under (`DESIGN.md` §13). The loop tracks the highest term
//! it has seen and refuses older frames — counted in
//! [`FollowerStatus::stale_frames`] — so a deposed leader's stream can
//! never overwrite state the new reign replicated. Applied frames are
//! **re-published** through the node's own [`TailHub`] under the same
//! term, so replicas form a tree: a follower's follower tails it exactly
//! as it tails the leader.
//!
//! [`Request::Promote`] turns a caught-up follower into a leader: the
//! loop enables a local journal at its cursor (the epoch floor is one
//! above `cursor.epoch`, so the new reign never reuses a coordinate the
//! old one published) under a term that must strictly exceed every term
//! the stream has shown. From then on the loop serves the **full** request
//! surface through its service — mutations journal locally, the hub
//! republishes under the bumped term (re-parenting any subtree tailing
//! this node), and frames still arriving from the old leader are refused
//! as stale.
//!
//! [`TailHub`]: crate::engine::tail::TailHub
//! [`Request::Promote`]: crate::engine::api::Request::Promote
//!
//! [`ProjectServer`]: crate::engine::server::ProjectServer
//! [`ProjectServer::adopt_replica_image`]: crate::engine::server::ProjectServer::adopt_replica_image
//! [`ProjectServer::apply_replica_op`]: crate::engine::server::ProjectServer::apply_replica_op

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use damocles_meta::journal;
use damocles_meta::LinkId;

use crate::engine::api::{ApiError, NodeRole, Request, Response, SessionId};
use crate::engine::exec::ScriptExecutor;
use crate::engine::service::{loop_gone, Envelope, ProjectService, RequestSink};
use crate::engine::tail::TailFrame;

/// One input to the follower loop: a stream element from the leader or a
/// request from a local client.
#[derive(Debug)]
pub enum FollowerMsg {
    /// A decoded tail frame from the leader connection.
    Frame(TailFrame),
    /// A local client request (read-only surface).
    Client(Envelope),
    /// The leader connection broke; the pump will retry. The follower
    /// keeps serving (possibly stale) reads.
    LeaderGone {
        /// Why the connection ended.
        reason: String,
    },
    /// Test/ops introspection: reply with the replica's full project
    /// image ([`crate::engine::server::ProjectServer::project_image`]).
    Inspect(Sender<String>),
}

/// Shared, observable replication state: the applied cursor, whether the
/// follower has bootstrapped, and whether the leader link is up. Tests
/// and operators wait on it; the loop publishes every change.
#[derive(Debug, Default)]
pub struct FollowerStatus {
    state: Mutex<StatusState>,
    wake: Condvar,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct StatusState {
    epoch: u64,
    seq: u64,
    bootstrapped: bool,
    leader_up: bool,
    /// The replica diverged (an apply or bootstrap failed): incremental
    /// frames can no longer repair it, only a fresh `tail-reset` can.
    needs_reset: bool,
    /// Highest leadership term observed in the stream (or taken by
    /// promotion); frames from older terms are refused.
    term: u64,
    /// Frames refused because they carried a stale term — the split-brain
    /// witness counter.
    stale_frames: u64,
    /// Set by a successful [`Request::Promote`](crate::engine::api::Request::Promote):
    /// this node is now a leader.
    promoted: bool,
}

impl FollowerStatus {
    /// `(epoch, seq)` of the next record the follower expects.
    pub fn cursor(&self) -> (u64, u64) {
        let st = self.state.lock().expect("follower status lock");
        (st.epoch, st.seq)
    }

    /// Whether a snapshot bootstrap has completed (reads are served).
    pub fn bootstrapped(&self) -> bool {
        self.state
            .lock()
            .expect("follower status lock")
            .bootstrapped
    }

    /// The highest leadership term this node has observed (0 before the
    /// first term-bearing frame).
    pub fn term(&self) -> u64 {
        self.state.lock().expect("follower status lock").term
    }

    /// Frames refused because they carried a term older than the highest
    /// observed — each one is a deposed leader's write that fencing kept
    /// out of the replica.
    pub fn stale_frames(&self) -> u64 {
        self.state
            .lock()
            .expect("follower status lock")
            .stale_frames
    }

    /// Whether a `Promote` turned this node into a leader.
    pub fn promoted(&self) -> bool {
        self.state.lock().expect("follower status lock").promoted
    }

    /// Whether the leader connection is currently up.
    pub fn leader_up(&self) -> bool {
        self.state.lock().expect("follower status lock").leader_up
    }

    /// Whether the replica needs a full snapshot re-bootstrap (an apply
    /// or bootstrap failure made incremental frames useless). A pump
    /// seeing this should drop its connection and re-handshake.
    pub fn needs_reset(&self) -> bool {
        self.state.lock().expect("follower status lock").needs_reset
    }

    /// The cursor a (re)connecting pump should hand to `tailfrom`: the
    /// applied position normally, or an unservable sentinel when the
    /// replica needs a re-bootstrap — the leader answers an unservable
    /// cursor with a full `tail-reset`, never with incremental records.
    pub fn handshake_cursor(&self) -> (u64, u64) {
        let st = self.state.lock().expect("follower status lock");
        if st.needs_reset {
            (u64::MAX, 0)
        } else {
            (st.epoch, st.seq)
        }
    }

    /// Blocks until the follower has applied everything up to
    /// `(epoch, seq)` (or moved past that epoch), or `timeout` elapses.
    /// Returns whether the position was reached.
    pub fn wait_applied(&self, epoch: u64, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("follower status lock");
        loop {
            let reached =
                st.bootstrapped && (st.epoch > epoch || (st.epoch == epoch && st.seq >= seq));
            if reached {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .wake
                .wait_timeout(st, left.min(Duration::from_millis(50)))
                .expect("follower status lock");
            st = guard;
        }
    }

    fn set(&self, update: impl FnOnce(&mut StatusState)) {
        let mut st = self.state.lock().expect("follower status lock");
        update(&mut st);
        drop(st);
        self.wake.notify_all();
    }
}

/// A cloneable handle to a running follower loop: opens client sessions,
/// feeds the tail pump, and exposes replication status.
#[derive(Debug, Clone)]
pub struct FollowerHandle {
    tx: Sender<FollowerMsg>,
    next_session: Arc<AtomicU64>,
    status: Arc<FollowerStatus>,
}

impl FollowerHandle {
    /// Opens a new tagged client session (read-only surface).
    pub fn session(&self) -> FollowerSession {
        FollowerSession {
            id: SessionId(self.next_session.fetch_add(1, Ordering::Relaxed)),
            tx: self.tx.clone(),
        }
    }

    /// The input side for a tail pump: send [`FollowerMsg::Frame`] /
    /// [`FollowerMsg::LeaderGone`] as the leader connection produces
    /// them.
    pub fn feed(&self) -> Sender<FollowerMsg> {
        self.tx.clone()
    }

    /// The shared replication status.
    pub fn status(&self) -> Arc<FollowerStatus> {
        Arc::clone(&self.status)
    }

    /// The replica's full project image, serialized by the loop between
    /// applied records — the byte-identity witness tests compare against
    /// the leader. `None` when the loop is gone.
    pub fn image(&self) -> Option<String> {
        let (tx, rx) = unbounded();
        self.tx.send(FollowerMsg::Inspect(tx)).ok()?;
        rx.recv()
    }
}

/// One client session at the follower loop — the follower-side
/// counterpart of [`ClientSession`](crate::engine::service::ClientSession).
#[derive(Debug, Clone)]
pub struct FollowerSession {
    id: SessionId,
    tx: Sender<FollowerMsg>,
}

impl FollowerSession {
    /// Submits a request and waits for its response.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request)
            .recv()
            .unwrap_or_else(|| Response::Error(loop_gone()))
    }
}

impl RequestSink for FollowerSession {
    fn id(&self) -> SessionId {
        self.id
    }

    fn submit(&self, request: Request) -> Receiver<Response> {
        let (reply, rx) = unbounded();
        let envelope = Envelope::new(self.id, request, reply.clone());
        if self.tx.send(FollowerMsg::Client(envelope)).is_err() {
            let _ = reply.send(Response::Error(loop_gone()));
        }
        rx
    }
}

/// Spawns a follower loop around `service` (already `Init`ed with the
/// project blueprint) on its own thread. `leader` is the address named
/// in [`ApiError::ReadOnly`] rejections. The loop exits when every
/// handle, session and feed sender is dropped.
pub fn spawn_follower_loop<E>(
    service: ProjectService<E>,
    leader: impl Into<String>,
) -> (FollowerHandle, std::thread::JoinHandle<()>)
where
    E: ScriptExecutor + Default + Send + 'static,
{
    let (tx, rx) = unbounded();
    let leader = leader.into();
    let status = Arc::new(FollowerStatus::default());
    let loop_status = Arc::clone(&status);
    let join = std::thread::spawn(move || run_follower_loop(service, &rx, &leader, &loop_status));
    (
        FollowerHandle {
            tx,
            next_session: Arc::new(AtomicU64::new(1)),
            status,
        },
        join,
    )
}

/// The follower loop body: apply frames, answer reads, reject writes —
/// until a `Promote` turns it into a leader loop. Exposed for callers
/// that want the loop on a thread they own.
#[allow(clippy::too_many_lines)]
pub fn run_follower_loop<E>(
    mut service: ProjectService<E>,
    rx: &Receiver<FollowerMsg>,
    leader: &str,
    status: &FollowerStatus,
) where
    E: ScriptExecutor + Default,
{
    // The follower's link-tag map: the same tag → address assignment the
    // leader's journal uses, rebuilt at every bootstrap and rollover.
    let mut tags: HashMap<u64, LinkId> = HashMap::new();
    let mut bootstrapped = false;
    let mut cursor = (0u64, 0u64);
    // Highest leadership term observed; frames below it are refused.
    let mut seen_term = 0u64;
    // Set by a successful Promote: this loop now serves the full leader
    // surface and refuses every upstream frame.
    let mut promoted = false;
    // The node's own publication hub (fan-out): applied frames republish
    // here under their term, so replicas form a tree.
    let hub = service.tail_hub();
    // Refuses a frame from a reign older than the highest seen — or any
    // substantive frame once this node leads. Returns true when stale.
    let stale = |frame_term: u64, seen: u64, promoted: bool, status: &FollowerStatus| -> bool {
        if frame_term < seen || (promoted && frame_term <= seen) {
            status.set(|st| st.stale_frames += 1);
            return true;
        }
        if promoted {
            // A term above our own while we lead: a newer reign exists.
            // This loop does not re-demote itself; operators fence it.
            eprintln!("promoted node: ignoring frame from newer term {frame_term} (fence me)");
            status.set(|st| st.stale_frames += 1);
            return true;
        }
        false
    };
    while let Some(msg) = rx.recv() {
        match msg {
            FollowerMsg::Frame(TailFrame::Reset { epoch, term, image }) => {
                if stale(term, seen_term, promoted, status) {
                    continue;
                }
                let adopted = service
                    .server_mut()
                    .ok_or_else(|| "no blueprint loaded".to_string())
                    .and_then(|srv| srv.adopt_replica_image(&image).map_err(|e| e.to_string()));
                match adopted {
                    Ok(_) => {
                        let srv = service.server_mut().expect("adopted above");
                        tags = srv.replica_link_tags();
                        bootstrapped = true;
                        cursor = (epoch, 0);
                        seen_term = term;
                        // Re-publish the bootstrap for our own subtree.
                        hub.publish_enable(epoch, term, image);
                        status.set(|st| {
                            st.epoch = epoch;
                            st.seq = 0;
                            st.bootstrapped = true;
                            st.leader_up = true;
                            st.needs_reset = false;
                            st.term = term;
                        });
                    }
                    Err(reason) => {
                        eprintln!("follower: snapshot bootstrap failed: {reason}");
                        bootstrapped = false;
                        // Our subtree must not trust a diverged image.
                        hub.publish_disable();
                        status.set(|st| {
                            st.bootstrapped = false;
                            st.needs_reset = true;
                        });
                    }
                }
            }
            FollowerMsg::Frame(TailFrame::Epoch { epoch, term }) => {
                if stale(term, seen_term, promoted, status) {
                    continue;
                }
                if bootstrapped && term == seen_term {
                    // The stream guarantees every record of the folded
                    // epoch preceded this marker, so our image equals the
                    // new snapshot; mirror the leader's re-tagging and
                    // checkpoint our own stream (seamless: everything we
                    // folded was republished first).
                    let srv = service.server_mut().expect("bootstrapped");
                    tags = srv.replica_link_tags();
                    let image = srv.project_image();
                    cursor = (epoch, 0);
                    hub.publish_checkpoint(epoch, term, image, true);
                    status.set(|st| {
                        st.epoch = epoch;
                        st.seq = 0;
                        st.leader_up = true;
                    });
                }
                // A marker from a NEWER term than the stream bootstrapped
                // us into cannot be trusted as seamless — wait for the
                // reset the new reign must send.
            }
            FollowerMsg::Frame(TailFrame::Record { epoch, term, line }) => {
                if stale(term, seen_term, promoted, status) {
                    continue;
                }
                if !bootstrapped || epoch != cursor.0 || term != seen_term {
                    // A frame from before a reset raced in, or a newer
                    // reign's record arrived without its bootstrap; the
                    // stream will re-bootstrap us.
                    continue;
                }
                let applied = journal::decode_record(&line, cursor.1).and_then(|op| {
                    service
                        .server_mut()
                        .ok_or_else(|| "no blueprint loaded".to_string())
                        .and_then(|srv| {
                            srv.apply_replica_op(&op, &mut tags)
                                .map_err(|e| e.to_string())
                        })
                });
                match applied {
                    Ok(()) => {
                        cursor.1 += 1;
                        hub.publish_records([line]);
                        status.set(|st| {
                            st.seq = cursor.1;
                            st.leader_up = true;
                        });
                    }
                    Err(reason) => {
                        // Divergence (or a garbled stream): this image
                        // cannot be repaired incrementally. Flag the
                        // status so the pump drops its connection and
                        // re-handshakes with the unservable sentinel
                        // cursor, which the leader answers with a full
                        // snapshot reset.
                        eprintln!("follower: record {}/{} failed: {reason}", epoch, cursor.1);
                        bootstrapped = false;
                        hub.publish_disable();
                        status.set(|st| {
                            st.bootstrapped = false;
                            st.needs_reset = true;
                        });
                    }
                }
            }
            FollowerMsg::Frame(TailFrame::Ping) => {
                if !promoted {
                    status.set(|st| st.leader_up = true);
                }
            }
            FollowerMsg::LeaderGone { reason } => {
                if !promoted {
                    eprintln!("follower: leader connection lost ({reason}); serving stale reads");
                    status.set(|st| st.leader_up = false);
                }
            }
            FollowerMsg::Inspect(reply) => {
                let image = service
                    .server()
                    .map(|srv| srv.project_image())
                    .unwrap_or_default();
                let _ = reply.send(image);
            }
            FollowerMsg::Client(envelope) => {
                if promoted {
                    // Full leader surface: the loop owns the service, so
                    // requests route straight through it (mutations
                    // journal locally and republish via the hub).
                    envelope.respond_with(|request| service.call(request));
                    continue;
                }
                if let Request::Promote { .. } = &envelope.request {
                    let (resp, now_leading) = promote(
                        &mut service,
                        &envelope.request,
                        bootstrapped,
                        cursor,
                        seen_term,
                        status,
                    );
                    if let Some((epoch, term)) = now_leading {
                        promoted = true;
                        seen_term = term;
                        cursor = (epoch, 0);
                    }
                    envelope.respond(resp);
                    continue;
                }
                // respond_with moves the request out of the envelope —
                // no clone of (possibly payload-heavy) requests just to
                // bounce them.
                envelope.respond_with(|request| {
                    follower_call(
                        &mut service,
                        request,
                        leader,
                        bootstrapped,
                        cursor,
                        seen_term,
                    )
                });
            }
        }
    }
}

/// Executes a [`Request::Promote`] against a (not yet promoted) follower
/// loop: refuse before bootstrap or under a non-advancing term, otherwise
/// enable the local journal above the consumed cursor. Returns the reply
/// and, on success, the `(epoch, term)` the node now leads under.
fn promote<E>(
    service: &mut ProjectService<E>,
    request: &Request,
    bootstrapped: bool,
    cursor: (u64, u64),
    seen_term: u64,
    status: &FollowerStatus,
) -> (Response, Option<(u64, u64)>)
where
    E: ScriptExecutor + Default,
{
    let Request::Promote { dir, every, term } = request else {
        unreachable!("caller matched Promote");
    };
    if !bootstrapped {
        return (
            Response::Error(ApiError::Lagging {
                epoch: cursor.0,
                seq: cursor.1,
            }),
            None,
        );
    }
    if *term <= seen_term {
        return (
            Response::Error(ApiError::StaleTerm {
                term: *term,
                current: seen_term,
            }),
            None,
        );
    }
    // The epoch floor: our reign's first epoch strictly exceeds the one
    // we consumed, so no (epoch, seq) coordinate is ever published twice
    // with different contents.
    let promoted = service.server_mut().expect("bootstrapped").promote_journal(
        dir,
        *every,
        cursor.0 + 1,
        *term,
    );
    match promoted {
        Ok(epoch) => {
            status.set(|st| {
                st.epoch = epoch;
                st.seq = 0;
                st.term = *term;
                st.promoted = true;
                st.leader_up = true;
                st.needs_reset = false;
            });
            (
                Response::Promoted { epoch, term: *term },
                Some((epoch, *term)),
            )
        }
        Err(e) => (Response::Error(e.into()), None),
    }
}

/// Executes one client request under follower rules: mutations are
/// rejected toward the leader, reads wait for the first bootstrap, and
/// everything else runs against the replica. [`Request::Snapshot`] is
/// allowed — configurations are service-local pins, not database
/// mutations — so analysts can pin closures on a replica.
/// [`Request::TailFrom`] is accepted once bootstrapped: the fan-out
/// handshake — downstream replicas tail this node's hub exactly as it
/// tails the leader.
fn follower_call<E>(
    service: &mut ProjectService<E>,
    request: Request,
    leader: &str,
    bootstrapped: bool,
    cursor: (u64, u64),
    term: u64,
) -> Response
where
    E: ScriptExecutor + Default,
{
    if matches!(request, Request::TailFrom { .. }) {
        // The hub republishes exactly what the loop applied, so the
        // committed fan-out position IS the applied cursor.
        return if bootstrapped {
            Response::Tailing {
                epoch: cursor.0,
                seq: cursor.1,
            }
        } else {
            Response::Error(ApiError::Lagging {
                epoch: cursor.0,
                seq: cursor.1,
            })
        };
    }
    let read_only = !request.is_mutation() || matches!(request, Request::Snapshot { .. });
    if !read_only {
        return Response::Error(ApiError::ReadOnly {
            leader: leader.to_string(),
        });
    }
    if !bootstrapped {
        return Response::Error(ApiError::Lagging {
            epoch: cursor.0,
            seq: cursor.1,
        });
    }
    match service.call(request) {
        Response::Stat { mut stat } => {
            // The service reports the server's own (journal-less) view;
            // the loop knows the replication truth.
            stat.term = term;
            stat.role = NodeRole::Follower;
            stat.cursor_epoch = cursor.0;
            stat.cursor_seq = cursor.1;
            Response::Stat { stat }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::api::Request;
    use crate::engine::server::ProjectServer;
    use damocles_meta::Oid;

    const SIMPLE: &str = r#"
        blueprint demo
        view default
            property uptodate default true
            when ckin do uptodate = true; post outofdate down done
            when outofdate do uptodate = false done
        endview
        view HDL_model endview
        view schematic
            link_from HDL_model move propagates outofdate type derived
        endview
        endblueprint
    "#;

    /// Drives a journaled leader and hand-pumps its hub frames into a
    /// follower loop — the whole replication path minus the socket.
    #[test]
    fn follower_replays_hub_frames_to_byte_identity() {
        let dir = std::env::temp_dir().join("damocles-follower-unit");
        let _ = std::fs::remove_dir_all(&dir);
        let mut leader: ProjectService = ProjectService::new();
        assert!(!leader
            .call(Request::Init {
                source: SIMPLE.into()
            })
            .is_error());
        assert!(!leader
            .call(Request::EnableJournal {
                dir: dir.display().to_string(),
                every: 1_000_000,
            })
            .is_error());
        let hub = leader.tail_hub();

        let follower_service: ProjectService =
            ProjectService::with_server(ProjectServer::from_source(SIMPLE).unwrap());
        let (handle, join) = spawn_follower_loop(follower_service, "leader:0");
        let feed = handle.feed();

        // Mutate the leader; pump whatever the hub committed. The cursor
        // persists across pumps, like a live subscriber's would.
        let mut tail_cursor = crate::engine::tail::TailCursor { epoch: 0, seq: 0 };
        let mut pump = |feed: &Sender<FollowerMsg>| loop {
            match hub.next_frames(&mut tail_cursor, Duration::from_millis(1)) {
                Ok(frames) => {
                    let mut progressed = false;
                    for frame in frames {
                        if !matches!(frame, TailFrame::Ping) {
                            progressed = true;
                            feed.send(FollowerMsg::Frame(frame)).unwrap();
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                Err(e) => panic!("{e:?}"),
            }
        };
        for i in 0..4 {
            let resp = leader.call(Request::Checkin {
                block: format!("blk{i}"),
                view: "HDL_model".into(),
                user: "yves".into(),
                payload: vec![i],
            });
            assert!(!resp.is_error(), "{resp:?}");
        }
        assert!(!leader.call(Request::ProcessAll).is_error());
        pump(&feed);

        let status = handle.status();
        let target = leader
            .server()
            .map(|s| (s.journal_epoch().unwrap(), s.journal_records().unwrap()))
            .unwrap();
        assert!(status.wait_applied(target.0, target.1, Duration::from_secs(5)));
        assert_eq!(
            handle.image().unwrap(),
            leader.server().unwrap().project_image(),
            "follower image is byte-identical to the leader's"
        );

        // Reads are served from the replica; mutations bounce.
        let session = handle.session();
        match session.call(Request::Show {
            oid: Oid::new("blk0", "HDL_model", 1),
        }) {
            Response::Props { .. } => {}
            other => panic!("{other:?}"),
        }
        match session.call(Request::Checkin {
            block: "x".into(),
            view: "HDL_model".into(),
            user: "eve".into(),
            payload: vec![],
        }) {
            Response::Error(ApiError::ReadOnly { leader }) => assert_eq!(leader, "leader:0"),
            other => panic!("{other:?}"),
        }

        // A checkpoint rolls the epoch; the caught-up follower takes the
        // cheap marker and stays byte-identical.
        assert!(matches!(
            leader.call(Request::Checkpoint),
            Response::Epoch { .. }
        ));
        leader.call(Request::Checkin {
            block: "post-fold".into(),
            view: "HDL_model".into(),
            user: "yves".into(),
            payload: vec![9],
        });
        leader.call(Request::ProcessAll);
        pump(&feed);
        let target = leader
            .server()
            .map(|s| (s.journal_epoch().unwrap(), s.journal_records().unwrap()))
            .unwrap();
        assert!(status.wait_applied(target.0, target.1, Duration::from_secs(5)));
        assert_eq!(
            handle.image().unwrap(),
            leader.server().unwrap().project_image()
        );

        drop((session, feed, handle));
        join.join().unwrap();
    }

    /// A record that fails verification poisons the replica: the status
    /// demands a reset (with an unservable handshake cursor so the
    /// leader must answer with a snapshot), reads degrade to `Lagging`,
    /// and a fresh `Reset` frame fully recovers the follower.
    #[test]
    fn divergent_record_flags_reset_and_recovers() {
        let dir = std::env::temp_dir().join("damocles-follower-diverge");
        let _ = std::fs::remove_dir_all(&dir);
        let mut leader: ProjectService = ProjectService::new();
        leader.call(Request::Init {
            source: SIMPLE.into(),
        });
        leader.call(Request::EnableJournal {
            dir: dir.display().to_string(),
            every: 1_000_000,
        });
        let hub = leader.tail_hub();
        let (epoch, snapshot_image) = {
            let srv = leader.server().unwrap();
            (srv.journal_epoch().unwrap(), srv.project_image())
        };

        let follower_service: ProjectService =
            ProjectService::with_server(ProjectServer::from_source(SIMPLE).unwrap());
        let (handle, join) = spawn_follower_loop(follower_service, "leader:2");
        let feed = handle.feed();
        let status = handle.status();
        feed.send(FollowerMsg::Frame(TailFrame::Reset {
            epoch,
            term: 1,
            image: snapshot_image.clone(),
        }))
        .unwrap();
        assert!(status.wait_applied(epoch, 0, Duration::from_secs(5)));
        assert!(!status.needs_reset());

        // A garbled record (bad checksum) cannot apply.
        feed.send(FollowerMsg::Frame(TailFrame::Record {
            epoch,
            term: 1,
            line: "0000000000000000 0 create bad,v,1".into(),
        }))
        .unwrap();
        let session = handle.session();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !status.needs_reset() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(status.needs_reset(), "divergence demands a reset");
        assert_eq!(status.handshake_cursor(), (u64::MAX, 0));
        assert!(hub.position().is_some_and(|(e, _)| e < u64::MAX));
        match session.call(Request::Stat) {
            Response::Error(ApiError::Lagging { .. }) => {}
            other => panic!("{other:?}"),
        }

        // The reset repairs the replica and clears the flag.
        feed.send(FollowerMsg::Frame(TailFrame::Reset {
            epoch,
            term: 1,
            image: snapshot_image,
        }))
        .unwrap();
        assert!(status.wait_applied(epoch, 0, Duration::from_secs(5)));
        assert!(!status.needs_reset());
        assert!(matches!(session.call(Request::Stat), Response::Stat { .. }));
        drop((session, feed, handle));
        join.join().unwrap();
    }

    #[test]
    fn reads_before_bootstrap_are_lagging() {
        let service: ProjectService =
            ProjectService::with_server(ProjectServer::from_source(SIMPLE).unwrap());
        let (handle, join) = spawn_follower_loop(service, "leader:1");
        let session = handle.session();
        match session.call(Request::Stat) {
            Response::Error(ApiError::Lagging { epoch: 0, seq: 0 }) => {}
            other => panic!("{other:?}"),
        }
        // Fan-out handshakes also wait for the bootstrap.
        match session.call(Request::TailFrom { epoch: 0, seq: 0 }) {
            Response::Error(ApiError::Lagging { .. }) => {}
            other => panic!("{other:?}"),
        }
        drop((session, handle));
        join.join().unwrap();
    }

    /// Promotion end-to-end on the loop: a caught-up follower refuses a
    /// non-advancing term, accepts a strictly higher one, then serves the
    /// full mutation surface under its own journal — and refuses frames
    /// the deposed leader keeps sending (split-brain witness).
    #[test]
    fn promotion_takes_over_and_fences_the_old_stream() {
        let dir = std::env::temp_dir().join("damocles-follower-promote");
        let _ = std::fs::remove_dir_all(&dir);
        let leader_dir = dir.join("leader");
        let promoted_dir = dir.join("promoted");
        let mut leader: ProjectService = ProjectService::new();
        leader.call(Request::Init {
            source: SIMPLE.into(),
        });
        leader.call(Request::EnableJournal {
            dir: leader_dir.display().to_string(),
            every: 1_000_000,
        });
        leader.call(Request::Checkin {
            block: "pre".into(),
            view: "HDL_model".into(),
            user: "yves".into(),
            payload: vec![1],
        });
        leader.call(Request::ProcessAll);
        let hub = leader.tail_hub();

        let follower_service: ProjectService =
            ProjectService::with_server(ProjectServer::from_source(SIMPLE).unwrap());
        let (handle, join) = spawn_follower_loop(follower_service, "leader:9");
        let feed = handle.feed();
        let status = handle.status();
        let session = handle.session();

        // Promotion before bootstrap is refused: nothing to lead yet.
        match session.call(Request::Promote {
            dir: promoted_dir.display().to_string(),
            every: 1_000_000,
            term: 2,
        }) {
            Response::Error(ApiError::Lagging { .. }) => {}
            other => panic!("{other:?}"),
        }

        // Catch the follower up off the live hub (a Reset and the
        // records come from separate pulls, like a live subscriber's).
        let mut tail_cursor = crate::engine::tail::TailCursor { epoch: 0, seq: 0 };
        let consumed = {
            let srv = leader.server().unwrap();
            (srv.journal_epoch().unwrap(), srv.journal_records().unwrap())
        };
        loop {
            let frames = hub
                .next_frames(&mut tail_cursor, Duration::from_millis(1))
                .unwrap();
            let mut progressed = false;
            for frame in frames {
                if !matches!(frame, TailFrame::Ping) {
                    progressed = true;
                    feed.send(FollowerMsg::Frame(frame)).unwrap();
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(status.wait_applied(consumed.0, consumed.1, Duration::from_secs(5)));
        assert_eq!(status.term(), 1);

        // A term that does not strictly advance the reign is refused.
        match session.call(Request::Promote {
            dir: promoted_dir.display().to_string(),
            every: 1_000_000,
            term: 1,
        }) {
            Response::Error(ApiError::StaleTerm {
                term: 1,
                current: 1,
            }) => {}
            other => panic!("{other:?}"),
        }
        assert!(!status.promoted());

        // Term 2 takes over: epoch strictly above the consumed one.
        let new_epoch = match session.call(Request::Promote {
            dir: promoted_dir.display().to_string(),
            every: 1_000_000,
            term: 2,
        }) {
            Response::Promoted { epoch, term: 2 } => epoch,
            other => panic!("{other:?}"),
        };
        assert!(new_epoch > consumed.0);
        assert!(status.promoted());
        assert_eq!(status.term(), 2);

        // Full leader surface: mutations commit locally now.
        let resp = session.call(Request::Checkin {
            block: "post-promote".into(),
            view: "HDL_model".into(),
            user: "amy".into(),
            payload: vec![2],
        });
        assert!(!resp.is_error(), "{resp:?}");
        match session.call(Request::Stat) {
            Response::Stat { stat } => {
                assert_eq!(stat.term, 2);
                assert_eq!(stat.role, NodeRole::Leader);
            }
            other => panic!("{other:?}"),
        }

        // The deposed leader's stream is refused, loudly counted.
        let before = status.stale_frames();
        feed.send(FollowerMsg::Frame(TailFrame::Record {
            epoch: consumed.0,
            term: 1,
            line: "deadbeef 99 junk".into(),
        }))
        .unwrap();
        feed.send(FollowerMsg::Frame(TailFrame::Epoch {
            epoch: consumed.0 + 7,
            term: 1,
        }))
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while status.stale_frames() < before + 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(status.stale_frames(), before + 2);
        // The refused frames changed nothing.
        match session.call(Request::Stat) {
            Response::Stat { stat } => assert_eq!(stat.term, 2),
            other => panic!("{other:?}"),
        }
        drop((session, feed, handle));
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Stale-term frames never touch a (not promoted) follower either:
    /// once the stream shows term 2, a term-1 record is refused and
    /// counted rather than applied.
    #[test]
    fn stale_term_frames_are_refused_and_counted() {
        let follower_service: ProjectService =
            ProjectService::with_server(ProjectServer::from_source(SIMPLE).unwrap());
        let (handle, join) = spawn_follower_loop(follower_service, "leader:3");
        let feed = handle.feed();
        let status = handle.status();
        let image = ProjectServer::from_source(SIMPLE).unwrap().project_image();
        feed.send(FollowerMsg::Frame(TailFrame::Reset {
            epoch: 5,
            term: 2,
            image,
        }))
        .unwrap();
        assert!(status.wait_applied(5, 0, Duration::from_secs(5)));
        assert_eq!(status.term(), 2);

        feed.send(FollowerMsg::Frame(TailFrame::Record {
            epoch: 5,
            term: 1,
            line: "deadbeef 0 junk".into(),
        }))
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while status.stale_frames() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(status.stale_frames(), 1);
        assert_eq!(status.cursor(), (5, 0), "the stale record did not apply");
        drop((feed, handle));
        join.join().unwrap();
    }
}

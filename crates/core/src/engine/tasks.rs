//! Design tasks: the paper's stated future work, implemented.
//!
//! "We are currently investigating ways to incorporate the notion of design
//! tasks to the project BluePrint which gives a higher level of description
//! of design activities and their environment." — Section 5.
//!
//! A [`DesignTask`] bundles a sequence of design activities with the project
//! state it *requires* (preconditions, checked against the meta-database the
//! way wrapper programs request permission in Section 3.3) and the state it
//! *promises* (postconditions, verified after the event queue drains). Tasks
//! compose into ordered plans via [`run_plan`], giving the project
//! administrator a milestone-level view on top of the event-level BluePrint.

use std::fmt;

use damocles_meta::Value;

use crate::engine::error::EngineError;
use crate::engine::exec::ScriptExecutor;
use crate::engine::server::{ProcessReport, ProjectServer};

/// A predicate over project state, checked against the latest version of a
/// `(block, view)` chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// The chain has at least one live version.
    Exists {
        /// Block name.
        block: String,
        /// View name.
        view: String,
    },
    /// The named property on the latest version is truthy.
    PropTruthy {
        /// Block name.
        block: String,
        /// View name.
        view: String,
        /// Property to test.
        prop: String,
    },
    /// The named property equals an expected atom (loose comparison).
    PropEquals {
        /// Block name.
        block: String,
        /// View name.
        view: String,
        /// Property to test.
        prop: String,
        /// Expected value atom.
        expected: String,
    },
}

impl Condition {
    /// Builder: the chain exists.
    pub fn exists(block: &str, view: &str) -> Self {
        Condition::Exists {
            block: block.to_string(),
            view: view.to_string(),
        }
    }

    /// Builder: the property is truthy.
    pub fn truthy(block: &str, view: &str, prop: &str) -> Self {
        Condition::PropTruthy {
            block: block.to_string(),
            view: view.to_string(),
            prop: prop.to_string(),
        }
    }

    /// Builder: the property equals `expected`.
    pub fn equals(block: &str, view: &str, prop: &str, expected: &str) -> Self {
        Condition::PropEquals {
            block: block.to_string(),
            view: view.to_string(),
            prop: prop.to_string(),
            expected: expected.to_string(),
        }
    }

    /// Evaluates the condition against a server.
    pub fn holds<E: ScriptExecutor>(&self, server: &ProjectServer<E>) -> bool {
        let latest = |block: &str, view: &str| server.db().latest_version(block, view);
        match self {
            Condition::Exists { block, view } => latest(block, view).is_some(),
            Condition::PropTruthy { block, view, prop } => latest(block, view)
                .and_then(|id| server.db().get_prop(id, prop).ok().flatten())
                .is_some_and(Value::is_truthy),
            Condition::PropEquals {
                block,
                view,
                prop,
                expected,
            } => latest(block, view)
                .and_then(|id| server.db().get_prop(id, prop).ok().flatten())
                .is_some_and(|v| v.loose_eq(&Value::from_atom(expected))),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Exists { block, view } => write!(f, "{block}.{view} exists"),
            Condition::PropTruthy { block, view, prop } => {
                write!(f, "{block}.{view}.{prop} is satisfied")
            }
            Condition::PropEquals {
                block,
                view,
                prop,
                expected,
            } => write!(f, "{block}.{view}.{prop} == {expected}"),
        }
    }
}

/// One activity inside a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStep {
    /// Check in new design data.
    Checkin {
        /// Block name.
        block: String,
        /// View name.
        view: String,
        /// Acting designer.
        user: String,
        /// Design payload.
        payload: Vec<u8>,
    },
    /// Post a raw `postEvent` line.
    PostLine {
        /// The wire line.
        line: String,
        /// Posting user.
        user: String,
    },
    /// Relate the latest versions of two chains (template-filled link).
    Connect {
        /// Source block.
        from_block: String,
        /// Source view.
        from_view: String,
        /// Target block.
        to_block: String,
        /// Target view.
        to_view: String,
    },
}

/// A higher-level description of a design activity and its environment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DesignTask {
    /// Task name (e.g. `"netlist-signoff"`).
    pub name: String,
    /// Human-readable intent.
    pub description: String,
    /// State required before the task may run.
    pub preconditions: Vec<Condition>,
    /// The activities, in order.
    pub steps: Vec<TaskStep>,
    /// State promised once the queue drains.
    pub postconditions: Vec<Condition>,
}

impl DesignTask {
    /// Starts a task definition.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        DesignTask {
            name: name.into(),
            description: description.into(),
            ..Default::default()
        }
    }

    /// Adds a precondition (builder style).
    pub fn requires(mut self, condition: Condition) -> Self {
        self.preconditions.push(condition);
        self
    }

    /// Adds a check-in step (builder style).
    pub fn checkin(mut self, block: &str, view: &str, user: &str, payload: &[u8]) -> Self {
        self.steps.push(TaskStep::Checkin {
            block: block.to_string(),
            view: view.to_string(),
            user: user.to_string(),
            payload: payload.to_vec(),
        });
        self
    }

    /// Adds an event-post step (builder style).
    pub fn post(mut self, line: &str, user: &str) -> Self {
        self.steps.push(TaskStep::PostLine {
            line: line.to_string(),
            user: user.to_string(),
        });
        self
    }

    /// Adds a connect step relating the latest versions of two chains
    /// (builder style).
    pub fn connect(mut self, from: (&str, &str), to: (&str, &str)) -> Self {
        self.steps.push(TaskStep::Connect {
            from_block: from.0.to_string(),
            from_view: from.1.to_string(),
            to_block: to.0.to_string(),
            to_view: to.1.to_string(),
        });
        self
    }

    /// Adds a postcondition (builder style).
    pub fn promises(mut self, condition: Condition) -> Self {
        self.postconditions.push(condition);
        self
    }
}

/// How a task run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStatus {
    /// Preconditions and postconditions all held.
    Completed,
    /// A precondition failed; no step ran.
    Blocked,
    /// Steps ran but a postcondition failed.
    Unverified,
}

impl fmt::Display for TaskStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TaskStatus::Completed => "completed",
            TaskStatus::Blocked => "blocked",
            TaskStatus::Unverified => "unverified",
        })
    }
}

/// Outcome of one task run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskReport {
    /// Task name.
    pub name: String,
    /// Final status.
    pub status: TaskStatus,
    /// Preconditions that failed (rendered), if blocked.
    pub failed_preconditions: Vec<String>,
    /// Postconditions that failed (rendered), if unverified.
    pub failed_postconditions: Vec<String>,
    /// Queue activity while the task ran.
    pub process: ProcessReport,
}

/// Runs one task: check preconditions, apply steps, drain the queue, verify
/// postconditions.
///
/// # Errors
///
/// Propagates server errors from steps (e.g. frozen views, bad wire lines);
/// condition failures are reported, not raised — the tracking system stays
/// non-obstructive.
pub fn run_task<E: ScriptExecutor>(
    server: &mut ProjectServer<E>,
    task: &DesignTask,
) -> Result<TaskReport, EngineError> {
    let failed_preconditions: Vec<String> = task
        .preconditions
        .iter()
        .filter(|c| !c.holds(server))
        .map(ToString::to_string)
        .collect();
    if !failed_preconditions.is_empty() {
        return Ok(TaskReport {
            name: task.name.clone(),
            status: TaskStatus::Blocked,
            failed_preconditions,
            failed_postconditions: Vec::new(),
            process: ProcessReport::default(),
        });
    }

    for step in &task.steps {
        match step {
            TaskStep::Checkin {
                block,
                view,
                user,
                payload,
            } => {
                server.checkin(block, view, user, payload.clone())?;
            }
            TaskStep::PostLine { line, user } => {
                server.post_line(line, user)?;
            }
            TaskStep::Connect {
                from_block,
                from_view,
                to_block,
                to_view,
            } => {
                let from = server
                    .db()
                    .latest_version(from_block, from_view)
                    .ok_or_else(|| damocles_meta::MetaError::UnknownOid {
                        oid: damocles_meta::Oid::new(from_block.as_str(), from_view.as_str(), 0),
                    })?;
                let to = server
                    .db()
                    .latest_version(to_block, to_view)
                    .ok_or_else(|| damocles_meta::MetaError::UnknownOid {
                        oid: damocles_meta::Oid::new(to_block.as_str(), to_view.as_str(), 0),
                    })?;
                server.connect(from, to)?;
            }
        }
    }
    let process = server.process_all()?;

    let failed_postconditions: Vec<String> = task
        .postconditions
        .iter()
        .filter(|c| !c.holds(server))
        .map(ToString::to_string)
        .collect();
    let status = if failed_postconditions.is_empty() {
        TaskStatus::Completed
    } else {
        TaskStatus::Unverified
    };
    Ok(TaskReport {
        name: task.name.clone(),
        status,
        failed_preconditions: Vec::new(),
        failed_postconditions,
        process,
    })
}

/// Runs tasks in order, stopping at the first one that does not complete —
/// a milestone plan over the design flow.
///
/// # Errors
///
/// Propagates server errors.
pub fn run_plan<E: ScriptExecutor>(
    server: &mut ProjectServer<E>,
    tasks: &[DesignTask],
) -> Result<Vec<TaskReport>, EngineError> {
    let mut reports = Vec::new();
    for task in tasks {
        let report = run_task(server, task)?;
        let done = report.status == TaskStatus::Completed;
        reports.push(report);
        if !done {
            break;
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BP: &str = r#"blueprint t
        view default
            property uptodate default true
            when ckin do uptodate = true; post outofdate down done
            when outofdate do uptodate = false done
        endview
        view HDL_model
            property sim_result default bad
            when hdl_sim do sim_result = $arg done
        endview
        view schematic
            link_from HDL_model move propagates outofdate type derived
        endview
        endblueprint"#;

    fn server() -> ProjectServer {
        ProjectServer::from_source(BP).unwrap()
    }

    fn model_task() -> DesignTask {
        DesignTask::new("model", "write and validate the HDL model")
            .checkin("CPU", "HDL_model", "yves", b"module cpu;")
            .post("postEvent hdl_sim up CPU,HDL_model,1 \"good\"", "sim")
            .promises(Condition::equals("CPU", "HDL_model", "sim_result", "good"))
    }

    #[test]
    fn completed_task_reports_green() {
        let mut s = server();
        let report = run_task(&mut s, &model_task()).unwrap();
        assert_eq!(report.status, TaskStatus::Completed);
        assert!(report.failed_postconditions.is_empty());
        assert!(report.process.events >= 2);
    }

    #[test]
    fn blocked_task_runs_no_steps() {
        let mut s = server();
        let task = DesignTask::new("synth", "synthesize the model")
            .requires(Condition::equals("CPU", "HDL_model", "sim_result", "good"))
            .checkin("CPU", "schematic", "synth", b"sch");
        let report = run_task(&mut s, &task).unwrap();
        assert_eq!(report.status, TaskStatus::Blocked);
        assert_eq!(report.failed_preconditions.len(), 1);
        assert!(s.db().latest_version("CPU", "schematic").is_none());
    }

    #[test]
    fn unverified_task_reports_failures() {
        let mut s = server();
        let task = DesignTask::new("model", "simulate badly")
            .checkin("CPU", "HDL_model", "yves", b"module cpu; BUG")
            .post("postEvent hdl_sim up CPU,HDL_model,1 \"3 errors\"", "sim")
            .promises(Condition::equals("CPU", "HDL_model", "sim_result", "good"));
        let report = run_task(&mut s, &task).unwrap();
        assert_eq!(report.status, TaskStatus::Unverified);
        assert_eq!(report.failed_postconditions.len(), 1);
    }

    #[test]
    fn plan_stops_at_first_incomplete_task() {
        let mut s = server();
        let plan = [
            model_task(),
            // Blocked: requires a property nothing sets.
            DesignTask::new("impossible", "never satisfiable").requires(Condition::truthy(
                "CPU",
                "HDL_model",
                "ghost_prop",
            )),
            model_task(),
        ];
        let reports = run_plan(&mut s, &plan).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].status, TaskStatus::Completed);
        assert_eq!(reports[1].status, TaskStatus::Blocked);
    }

    #[test]
    fn conditions_evaluate_against_latest_version() {
        let mut s = server();
        run_task(&mut s, &model_task()).unwrap();
        // New version resets sim_result to default bad.
        s.checkin("CPU", "HDL_model", "yves", b"v2".to_vec())
            .unwrap();
        s.process_all().unwrap();
        assert!(!Condition::equals("CPU", "HDL_model", "sim_result", "good").holds(&s));
        assert!(Condition::exists("CPU", "HDL_model").holds(&s));
        assert!(Condition::truthy("CPU", "HDL_model", "uptodate").holds(&s));
    }

    #[test]
    fn condition_display_is_readable() {
        assert_eq!(
            Condition::equals("a", "v", "p", "x").to_string(),
            "a.v.p == x"
        );
        assert_eq!(Condition::exists("a", "v").to_string(), "a.v exists");
    }
}

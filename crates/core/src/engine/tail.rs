//! Live journal tailing: the publication side of journal-aware
//! replication.
//!
//! A journaling leader already writes every mutation as a checksummed
//! journal record (`damocles_meta::journal`); replication is "merely"
//! making that record stream consumable by other nodes *as it is
//! committed*. This module provides the in-process half:
//!
//! * [`TailHub`] — a shared buffer of the current epoch's **committed**
//!   journal records plus the checkpoint snapshot they extend. The
//!   [`ProjectServer`](crate::engine::server::ProjectServer) publishes
//!   into it at exactly three points: journal enable, each group-commit
//!   flush (*after* the fsync — a record a tailer sees is always on the
//!   leader's stable storage), and each checkpoint (epoch rollover).
//! * [`TailFrame`] — the line-framed stream elements a subscriber
//!   receives: a full snapshot bootstrap, a committed record, an epoch
//!   rollover marker, or a keep-alive ping.
//! * [`TailCursor`] — a subscriber's `(epoch, seq)` position;
//!   [`TailHub::next_frames`] blocks until the hub has something past it.
//!
//! # Catch-up semantics
//!
//! A subscriber at `(epoch, seq)` is served incrementally when possible
//! and re-bootstrapped when not:
//!
//! * same epoch, `seq` ≤ committed count → the records from `seq` on;
//! * exactly at the end of the *previous* epoch when a checkpoint rolled
//!   it over → a cheap [`TailFrame::Epoch`] marker (the follower's own
//!   image already equals the new snapshot, so only the cursor moves);
//! * anything else (stale epoch, future position, brand-new follower) →
//!   [`TailFrame::Reset`] carrying the current checkpoint snapshot, then
//!   records from sequence 0.
//!
//! The hub retains only the current epoch's records (bounded by the
//! checkpoint fold policy) plus one `(epoch, final-count)` pair for the
//! marker optimization — memory stays O(checkpoint interval), never
//! O(history).
//!
//! # Terms
//!
//! Every substantive frame carries the leadership **term** the publisher
//! journals under (see `DESIGN.md` §13). Subscribers track the highest
//! term they have seen and refuse frames from an older one — a deposed
//! leader's stream, however it reaches them, can never overwrite state
//! the new reign replicated. The hub is node-agnostic: a promoted
//! follower republishes through its own hub under the bumped term, so
//! replicas form a tree and a mid-tree promotion re-parents its subtree.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

// The request codec's word helpers (`%` = empty string, shared
// percent-escaping) — one implementation per crate, so the frame codec
// cannot drift from the request codec.
use crate::engine::api::{dec_str, enc_str};

/// One element of a tail stream, in its line-framed wire form (see
/// `PROTOCOL.md` §5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailFrame {
    /// Adopt this checkpoint snapshot (a `persist` project image) as the
    /// follower's whole state; records of `epoch` follow from sequence 0.
    Reset {
        /// The snapshot's checkpoint epoch.
        epoch: u64,
        /// The leadership term the publisher journals under.
        term: u64,
        /// The full project image (`damocles_meta::persist::save_project`
        /// text plus the epoch/term marker lines).
        image: String,
    },
    /// One committed journal record of `epoch`, exactly as it sits in the
    /// leader's journal file: `<fnv1a> <seq> <op…>` (verify and decode
    /// with [`damocles_meta::journal::decode_record`]).
    Record {
        /// The epoch this record extends.
        epoch: u64,
        /// The leadership term the record was committed under.
        term: u64,
        /// The record line (no trailing newline).
        line: String,
    },
    /// The leader checkpointed: every record streamed so far is folded
    /// into the snapshot at `epoch`. A caught-up follower's image already
    /// equals that snapshot — reset the cursor to `(epoch, 0)` and re-tag
    /// links in image order, exactly like the leader did.
    Epoch {
        /// The new checkpoint epoch.
        epoch: u64,
        /// The leadership term the checkpoint was written under.
        term: u64,
    },
    /// Keep-alive: nothing new within the wait window. Lets the leader
    /// detect dead tailer connections and followers detect stalls.
    Ping,
}

impl TailFrame {
    /// Renders the single-line wire form (no trailing newline).
    ///
    /// ```
    /// use blueprint_core::engine::tail::TailFrame;
    ///
    /// let frame = TailFrame::Epoch { epoch: 4, term: 2 };
    /// assert_eq!(frame.encode(), "tail-epoch 4 2");
    /// assert_eq!(TailFrame::decode("tail-epoch 4 2"), Ok(frame));
    /// ```
    pub fn encode(&self) -> String {
        match self {
            TailFrame::Reset { epoch, term, image } => {
                format!("tail-reset {epoch} {term} {}", enc_str(image))
            }
            TailFrame::Record { epoch, term, line } => format!("tail-rec {epoch} {term} {line}"),
            TailFrame::Epoch { epoch, term } => format!("tail-epoch {epoch} {term}"),
            TailFrame::Ping => "tail-ping".to_string(),
        }
    }

    /// Parses the single-line wire form.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the line is not a tail frame (a
    /// follower treats that as a broken stream and reconnects).
    pub fn decode(line: &str) -> Result<TailFrame, String> {
        let (keyword, rest) = match line.split_once(' ') {
            Some((k, r)) => (k, r),
            None => (line, ""),
        };
        let num = |what: &str, w: &str| {
            w.parse::<u64>()
                .map_err(|_| format!("bad tail {what} `{w}`"))
        };
        // `<epoch> <term> <rest…>` — the shared prefix of every
        // substantive frame.
        let coords = |rest: &'_ str| -> Result<(u64, u64, String), String> {
            let mut words = rest.splitn(3, ' ');
            let epoch = num("epoch", words.next().unwrap_or(""))?;
            let term = num(
                "term",
                words.next().ok_or_else(|| "missing term".to_string())?,
            )?;
            Ok((epoch, term, words.next().unwrap_or("").to_string()))
        };
        match keyword {
            "tail-reset" => {
                let (epoch, term, image) = coords(rest).map_err(|e| format!("tail-reset: {e}"))?;
                if image.is_empty() {
                    return Err("tail-reset missing image".to_string());
                }
                Ok(TailFrame::Reset {
                    epoch,
                    term,
                    image: dec_str(&image)?,
                })
            }
            "tail-rec" => {
                let (epoch, term, line) = coords(rest).map_err(|e| format!("tail-rec: {e}"))?;
                if line.is_empty() {
                    return Err("tail-rec missing record".to_string());
                }
                Ok(TailFrame::Record { epoch, term, line })
            }
            "tail-epoch" => {
                let (epoch, term, extra) = coords(rest).map_err(|e| format!("tail-epoch: {e}"))?;
                if !extra.is_empty() {
                    return Err(format!("tail-epoch trailing `{extra}`"));
                }
                Ok(TailFrame::Epoch { epoch, term })
            }
            "tail-ping" => Ok(TailFrame::Ping),
            other => Err(format!("unknown tail frame `{other}`")),
        }
    }
}

/// A subscriber's position in the stream: the next record it expects is
/// `seq` of `epoch`. A brand-new follower starts at `(0, 0)` and lets the
/// first [`TailFrame::Reset`] place it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailCursor {
    /// The checkpoint epoch the follower is applying records of.
    pub epoch: u64,
    /// The next record sequence number expected.
    pub seq: u64,
}

/// Why a tail subscription ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailEnded {
    /// Journaling was disabled on the leader (poisoned or the project was
    /// swapped); there is no committed stream to follow any more.
    Disabled,
    /// The leader's command loop shut down.
    Closed,
}

#[derive(Debug, Default)]
struct TailState {
    enabled: bool,
    closed: bool,
    epoch: u64,
    /// Leadership term the published records are committed under.
    term: u64,
    snapshot: String,
    /// Committed record lines of `epoch` (`<fnv1a> <seq> <op…>`), index ==
    /// sequence number. Only fsynced records are ever pushed here.
    records: Vec<String>,
    /// `(epoch, final record count)` of the epoch the last checkpoint
    /// folded — the seamless-marker fast path for caught-up subscribers.
    prev: Option<(u64, u64)>,
}

/// The shared publication point between one journaling leader and any
/// number of tail subscribers. See the module docs for the protocol.
#[derive(Debug, Default)]
pub struct TailHub {
    state: Mutex<TailState>,
    wake: Condvar,
}

impl TailHub {
    /// A hub with no journal behind it (subscriptions end with
    /// [`TailEnded::Disabled`] until a journal is enabled).
    pub fn new() -> Self {
        Self::default()
    }

    fn notify(&self) {
        self.wake.notify_all();
    }

    /// Journaling was (re-)enabled: `snapshot` is the initial checkpoint
    /// image at `epoch`, journaled under leadership `term`, and the
    /// journal is empty.
    pub fn publish_enable(&self, epoch: u64, term: u64, snapshot: String) {
        let mut st = self.state.lock().expect("tail hub lock");
        st.enabled = true;
        st.epoch = epoch;
        st.term = term;
        st.snapshot = snapshot;
        st.records.clear();
        st.prev = None;
        drop(st);
        self.notify();
    }

    /// A batch of records reached stable storage (the group-commit fsync
    /// returned). `lines` are the record lines in sequence order,
    /// continuing the current epoch's count.
    pub fn publish_records(&self, lines: impl IntoIterator<Item = String>) {
        let mut st = self.state.lock().expect("tail hub lock");
        if !st.enabled {
            return;
        }
        st.records.extend(lines);
        drop(st);
        self.notify();
    }

    /// A checkpoint folded the journal into `snapshot` at `epoch`, under
    /// leadership `term`. `seamless` means every previously committed
    /// record is represented in the stream (nothing was dropped outside
    /// it), so a caught-up subscriber may take the cheap
    /// [`TailFrame::Epoch`] marker instead of re-bootstrapping.
    pub fn publish_checkpoint(&self, epoch: u64, term: u64, snapshot: String, seamless: bool) {
        let mut st = self.state.lock().expect("tail hub lock");
        // The marker shortcut only holds within one reign: a follower at
        // the fold point of an older term must re-bootstrap instead.
        st.prev = (seamless && st.term == term).then_some((st.epoch, st.records.len() as u64));
        st.enabled = true;
        st.epoch = epoch;
        st.term = term;
        st.snapshot = snapshot;
        st.records.clear();
        drop(st);
        self.notify();
    }

    /// Journaling was disabled (poisoned, or the project server was
    /// swapped out). Live subscriptions end with [`TailEnded::Disabled`].
    pub fn publish_disable(&self) {
        let mut st = self.state.lock().expect("tail hub lock");
        st.enabled = false;
        st.snapshot.clear();
        st.records.clear();
        st.prev = None;
        drop(st);
        self.notify();
    }

    /// The leader is shutting down; all subscriptions end.
    pub fn close(&self) {
        self.state.lock().expect("tail hub lock").closed = true;
        self.notify();
    }

    /// The committed stream position `(epoch, record count)`, or `None`
    /// when no journal is enabled — the [`Tailing`] handshake payload.
    ///
    /// [`Tailing`]: crate::engine::api::Response::Tailing
    pub fn position(&self) -> Option<(u64, u64)> {
        let st = self.state.lock().expect("tail hub lock");
        st.enabled.then_some((st.epoch, st.records.len() as u64))
    }

    /// The leadership term the published stream is committed under, or
    /// `None` when no journal is enabled.
    pub fn term(&self) -> Option<u64> {
        let st = self.state.lock().expect("tail hub lock");
        st.enabled.then_some(st.term)
    }

    /// Blocks until the stream has something past `cursor` (or `timeout`
    /// elapses — then a single [`TailFrame::Ping`] is returned so the
    /// caller can probe its transport). Advances `cursor` past whatever
    /// it returns.
    ///
    /// # Errors
    ///
    /// [`TailEnded`] when the stream is over; the subscriber should
    /// surface that to its follower and disconnect.
    pub fn next_frames(
        &self,
        cursor: &mut TailCursor,
        timeout: Duration,
    ) -> Result<Vec<TailFrame>, TailEnded> {
        let mut st = self.state.lock().expect("tail hub lock");
        loop {
            if st.closed {
                return Err(TailEnded::Closed);
            }
            if !st.enabled {
                return Err(TailEnded::Disabled);
            }
            if cursor.epoch != st.epoch {
                if st.prev == Some((cursor.epoch, cursor.seq)) {
                    // Caught up to the fold point: the follower's image
                    // already equals the new snapshot.
                    cursor.epoch = st.epoch;
                    cursor.seq = 0;
                    return Ok(vec![TailFrame::Epoch {
                        epoch: st.epoch,
                        term: st.term,
                    }]);
                }
                cursor.epoch = st.epoch;
                cursor.seq = 0;
                return Ok(vec![TailFrame::Reset {
                    epoch: st.epoch,
                    term: st.term,
                    image: st.snapshot.clone(),
                }]);
            }
            let committed = st.records.len() as u64;
            if cursor.seq > committed {
                // A position we never committed (foreign or future
                // cursor): re-bootstrap rather than guess.
                cursor.seq = 0;
                return Ok(vec![TailFrame::Reset {
                    epoch: st.epoch,
                    term: st.term,
                    image: st.snapshot.clone(),
                }]);
            }
            if cursor.seq < committed {
                let frames = st.records[cursor.seq as usize..]
                    .iter()
                    .map(|line| TailFrame::Record {
                        epoch: st.epoch,
                        term: st.term,
                        line: line.clone(),
                    })
                    .collect();
                cursor.seq = committed;
                return Ok(frames);
            }
            let (guard, wait) = self.wake.wait_timeout(st, timeout).expect("tail hub lock");
            st = guard;
            if wait.timed_out() {
                return Ok(vec![TailFrame::Ping]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damocles_meta::journal::{encode_record, JournalOp};
    use damocles_meta::Oid;

    fn record_line(seq: u64) -> String {
        let op = JournalOp::CreateOid {
            oid: Oid::new("blk", "v", seq as u32 + 1),
        };
        encode_record(seq, &op).trim_end().to_string()
    }

    #[test]
    fn frames_roundtrip() {
        let frames = vec![
            TailFrame::Reset {
                epoch: 3,
                term: 2,
                image: "damocles-db v1\noid a,v,1\n# epoch=3\n# term=2\n".into(),
            },
            TailFrame::Record {
                epoch: 3,
                term: 2,
                line: record_line(0),
            },
            TailFrame::Epoch { epoch: 4, term: 2 },
            TailFrame::Ping,
        ];
        for frame in frames {
            let line = frame.encode();
            assert!(!line.contains('\n'), "{line:?}");
            assert_eq!(TailFrame::decode(&line), Ok(frame), "{line}");
        }
        assert!(TailFrame::decode("blah 1").is_err());
        // Term-less frames are a different (pre-term) protocol: refused.
        assert!(TailFrame::decode("tail-epoch 4").is_err());
        assert!(TailFrame::decode("tail-epoch 4 2 junk").is_err());
        assert!(TailFrame::decode("tail-rec 3 2").is_err());
    }

    #[test]
    fn fresh_subscriber_bootstraps_then_streams() {
        let hub = TailHub::new();
        let mut cursor = TailCursor { epoch: 0, seq: 0 };
        // No journal yet: the subscription ends.
        assert_eq!(
            hub.next_frames(&mut cursor, Duration::from_millis(1)),
            Err(TailEnded::Disabled)
        );
        hub.publish_enable(1, 1, "image-e1".into());
        // Epoch 0 != 1: full bootstrap, then the committed records.
        let frames = hub
            .next_frames(&mut cursor, Duration::from_millis(1))
            .unwrap();
        assert_eq!(
            frames,
            vec![TailFrame::Reset {
                epoch: 1,
                term: 1,
                image: "image-e1".into()
            }]
        );
        hub.publish_records([record_line(0), record_line(1)]);
        let frames = hub
            .next_frames(&mut cursor, Duration::from_millis(1))
            .unwrap();
        assert_eq!(frames.len(), 2);
        assert!(matches!(
            &frames[0],
            TailFrame::Record { epoch: 1, term: 1, line } if *line == record_line(0)
        ));
        assert_eq!(cursor, TailCursor { epoch: 1, seq: 2 });
        // Caught up: the wait times out into a ping.
        assert_eq!(
            hub.next_frames(&mut cursor, Duration::from_millis(1)),
            Ok(vec![TailFrame::Ping])
        );
    }

    #[test]
    fn caught_up_subscriber_gets_the_cheap_rollover_marker() {
        let hub = TailHub::new();
        hub.publish_enable(1, 1, "image-e1".into());
        hub.publish_records([record_line(0)]);
        let mut caught_up = TailCursor { epoch: 1, seq: 1 };
        let mut behind = TailCursor { epoch: 1, seq: 0 };
        hub.publish_checkpoint(2, 1, "image-e2".into(), true);
        assert_eq!(
            hub.next_frames(&mut caught_up, Duration::from_millis(1)),
            Ok(vec![TailFrame::Epoch { epoch: 2, term: 1 }])
        );
        assert_eq!(caught_up, TailCursor { epoch: 2, seq: 0 });
        // The straggler missed record 0 of the folded epoch: full reset.
        assert_eq!(
            hub.next_frames(&mut behind, Duration::from_millis(1)),
            Ok(vec![TailFrame::Reset {
                epoch: 2,
                term: 1,
                image: "image-e2".into()
            }])
        );
    }

    #[test]
    fn cross_term_checkpoint_never_uses_the_marker() {
        let hub = TailHub::new();
        hub.publish_enable(1, 1, "image-e1".into());
        hub.publish_records([record_line(0)]);
        let mut caught_up = TailCursor { epoch: 1, seq: 1 };
        // A new reign checkpoints at the same fold point; even a fully
        // caught-up follower must re-bootstrap to adopt the new term's
        // image — the marker shortcut only holds within one term.
        hub.publish_checkpoint(2, 2, "image-t2".into(), true);
        assert_eq!(
            hub.next_frames(&mut caught_up, Duration::from_millis(1)),
            Ok(vec![TailFrame::Reset {
                epoch: 2,
                term: 2,
                image: "image-t2".into()
            }])
        );
        assert_eq!(hub.term(), Some(2));
    }

    #[test]
    fn non_seamless_checkpoint_forces_reset_even_when_caught_up() {
        let hub = TailHub::new();
        hub.publish_enable(1, 1, "image-e1".into());
        hub.publish_records([record_line(0)]);
        let mut caught_up = TailCursor { epoch: 1, seq: 1 };
        // Ops were folded without ever being streamed: the marker would
        // silently skip them.
        hub.publish_checkpoint(2, 1, "image-e2".into(), false);
        assert!(matches!(
            hub.next_frames(&mut caught_up, Duration::from_millis(1))
                .unwrap()
                .as_slice(),
            [TailFrame::Reset { epoch: 2, .. }]
        ));
    }

    #[test]
    fn future_cursor_is_reset_not_trusted() {
        let hub = TailHub::new();
        hub.publish_enable(1, 1, "image-e1".into());
        let mut cursor = TailCursor { epoch: 1, seq: 99 };
        assert!(matches!(
            hub.next_frames(&mut cursor, Duration::from_millis(1))
                .unwrap()
                .as_slice(),
            [TailFrame::Reset { epoch: 1, .. }]
        ));
        assert_eq!(cursor, TailCursor { epoch: 1, seq: 0 });
    }

    #[test]
    fn disable_and_close_end_subscriptions() {
        let hub = TailHub::new();
        hub.publish_enable(1, 1, "image".into());
        let mut cursor = TailCursor { epoch: 1, seq: 0 };
        hub.publish_disable();
        assert_eq!(
            hub.next_frames(&mut cursor, Duration::from_millis(1)),
            Err(TailEnded::Disabled)
        );
        assert_eq!(hub.position(), None);
        hub.close();
        assert_eq!(
            hub.next_frames(&mut cursor, Duration::from_millis(1)),
            Err(TailEnded::Closed)
        );
    }

    #[test]
    fn blocked_subscriber_wakes_on_publish() {
        use std::sync::Arc;
        let hub = Arc::new(TailHub::new());
        hub.publish_enable(1, 1, "image".into());
        let waiter = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                let mut cursor = TailCursor { epoch: 1, seq: 0 };
                hub.next_frames(&mut cursor, Duration::from_secs(10))
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        hub.publish_records([record_line(0)]);
        let frames = waiter.join().unwrap().unwrap();
        assert!(matches!(frames.as_slice(), [TailFrame::Record { .. }]));
    }
}

//! The FIFO design-event message queue of Fig. 1.
//!
//! "the design activities are converted to events and sent to the project
//! BluePrint, where they are queued. … Events are processed sequentially,
//! first-in first-out." — Section 3.1.
//!
//! The queue is single-consumer (the engine), but producers may be many
//! concurrent wrapper programs; [`EventQueue::sender`] hands out a cheap
//! cloneable handle backed by a crossbeam channel that [`EventQueue::drain_inbox`]
//! folds into the FIFO order.

use std::collections::VecDeque;

use crossbeam::channel::{unbounded, Receiver, Sender};
use damocles_meta::EventMessage;

use crate::engine::event::QueuedEvent;

/// Aggregate queue counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever enqueued.
    pub enqueued: u64,
    /// Events ever dequeued.
    pub dequeued: u64,
    /// High-water mark of queue length.
    pub high_water: usize,
}

/// A network message paired with the posting user, as sent by wrappers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posted {
    /// The wire message.
    pub message: EventMessage,
    /// Who posted it.
    pub user: String,
}

/// The engine's FIFO event queue.
#[derive(Debug)]
pub struct EventQueue {
    queue: VecDeque<QueuedEvent>,
    inbox_tx: Sender<Posted>,
    inbox_rx: Receiver<Posted>,
    stats: QueueStats,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let (inbox_tx, inbox_rx) = unbounded();
        EventQueue {
            queue: VecDeque::new(),
            inbox_tx,
            inbox_rx,
            stats: QueueStats::default(),
        }
    }

    /// Number of events currently waiting (excluding undrained inbox).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are waiting (excluding undrained inbox).
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Appends an event at the back.
    pub fn enqueue(&mut self, event: QueuedEvent) {
        self.queue.push_back(event);
        self.stats.enqueued += 1;
        self.stats.high_water = self.stats.high_water.max(self.queue.len());
    }

    /// Puts events back at the FRONT of the queue, preserving their order
    /// (the first element of `events` dequeues first again). Used by the
    /// sharded batch path when an error truncates a batch: the events the
    /// sequential path would never have reached return to the queue
    /// exactly as if they had not been taken.
    pub fn requeue_front(&mut self, events: impl DoubleEndedIterator<Item = QueuedEvent>) {
        for ev in events.rev() {
            self.queue.push_front(ev);
            // They were already counted at their original enqueue; undo
            // the dequeue accounting of the batch take.
            self.stats.dequeued = self.stats.dequeued.saturating_sub(1);
        }
        self.stats.high_water = self.stats.high_water.max(self.queue.len());
    }

    /// Read-only walk of the waiting events, front to back — the durable
    /// queue uses this to re-journal still-pending work at a checkpoint.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedEvent> {
        self.queue.iter()
    }

    /// Mutable walk of the waiting events, front to back — used to stamp
    /// durable sequence numbers onto events queued before journaling was
    /// enabled.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut QueuedEvent> {
        self.queue.iter_mut()
    }

    /// Pops the oldest event.
    pub fn dequeue(&mut self) -> Option<QueuedEvent> {
        let ev = self.queue.pop_front();
        if ev.is_some() {
            self.stats.dequeued += 1;
        }
        ev
    }

    /// A cloneable handle for concurrent wrapper programs to post through.
    /// Messages sent through it are folded into FIFO order by
    /// [`EventQueue::drain_inbox`].
    pub fn sender(&self) -> Sender<Posted> {
        self.inbox_tx.clone()
    }

    /// Drains everything wrappers have posted so far, returning the raw
    /// postings in arrival order (resolution against the database happens in
    /// the engine, which owns the database).
    pub fn drain_inbox(&mut self) -> Vec<Posted> {
        let mut posted = Vec::new();
        self.drain_inbox_into(&mut posted);
        posted
    }

    /// Allocation-reusing form of [`EventQueue::drain_inbox`]: appends the
    /// postings to a caller-owned buffer (not cleared first), so a polling
    /// loop can recycle one buffer instead of allocating a `Vec` per poll.
    pub fn drain_inbox_into(&mut self, out: &mut Vec<Posted>) {
        while let Ok(p) = self.inbox_rx.try_recv() {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damocles_meta::{Direction, MetaDb, Oid};

    fn ev(db: &mut MetaDb, name: &str, n: u32) -> QueuedEvent {
        let id = db.create_oid(Oid::new(format!("b{n}"), "v", 1)).unwrap();
        QueuedEvent::target(name, Direction::Down, id, "t")
    }

    #[test]
    fn fifo_order_is_strict() {
        let mut db = MetaDb::new();
        let mut q = EventQueue::new();
        q.enqueue(ev(&mut db, "first", 1));
        q.enqueue(ev(&mut db, "second", 2));
        q.enqueue(ev(&mut db, "third", 3));
        assert_eq!(q.dequeue().unwrap().event, "first");
        assert_eq!(q.dequeue().unwrap().event, "second");
        assert_eq!(q.dequeue().unwrap().event, "third");
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn stats_track_traffic() {
        let mut db = MetaDb::new();
        let mut q = EventQueue::new();
        q.enqueue(ev(&mut db, "a", 1));
        q.enqueue(ev(&mut db, "b", 2));
        q.dequeue();
        let s = q.stats();
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.dequeued, 1);
        assert_eq!(s.high_water, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn concurrent_senders_feed_the_inbox() {
        // The queue stays alive in scope while producer threads run (it used
        // to be `std::mem::forget`-leaked here; keeping it live also lets the
        // test assert the messages actually arrive).
        let mut q = EventQueue::new();
        let q_tx = q.sender();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = q_tx.clone();
                std::thread::spawn(move || {
                    let msg: EventMessage =
                        format!("postEvent e{i} down b{i},v,1").parse().unwrap();
                    tx.send(Posted {
                        message: msg,
                        user: format!("u{i}"),
                    })
                    .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.drain_inbox().len(), 4);
    }

    #[test]
    fn drain_inbox_preserves_arrival_order() {
        let mut q = EventQueue::new();
        let tx = q.sender();
        for i in 0..3 {
            tx.send(Posted {
                message: format!("postEvent e{i} down b,v,1").parse().unwrap(),
                user: "u".into(),
            })
            .unwrap();
        }
        let drained = q.drain_inbox();
        let names: Vec<&str> = drained.iter().map(|p| p.message.event.as_str()).collect();
        assert_eq!(names, vec!["e0", "e1", "e2"]);
        assert!(q.drain_inbox().is_empty());
    }

    #[test]
    fn drain_inbox_into_reuses_the_buffer() {
        let mut q = EventQueue::new();
        let tx = q.sender();
        let mut buf: Vec<Posted> = Vec::new();
        for round in 0..3 {
            for i in 0..2 {
                tx.send(Posted {
                    message: format!("postEvent r{round}e{i} down b,v,1")
                        .parse()
                        .unwrap(),
                    user: "u".into(),
                })
                .unwrap();
            }
            buf.clear();
            q.drain_inbox_into(&mut buf);
            assert_eq!(buf.len(), 2);
        }
        let final_capacity = buf.capacity();
        assert!(final_capacity >= 2);
    }
}

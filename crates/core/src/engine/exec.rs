//! Script execution: the engine side of tool integration.
//!
//! `exec` and `notify` actions leave the tracking system through this
//! boundary. "The invocation of the tools is encapsulated into shell scripts
//! called wrapper programs. These scripts post event messages to the
//! BluePrint." — Section 3.1.
//!
//! The run-time engine does **not** run scripts while it is mid-wave; it
//! collects [`ScriptInvocation`]s, and the project server dispatches them
//! afterwards through a [`ScriptExecutor`]. The executor receives a
//! [`ToolCtx`] giving it the same powers a real wrapper program has against
//! the project server: create design objects (with template application),
//! relate them, store design data, and post event messages — which the
//! server feeds back into its FIFO queue, closing the automatic tool
//! invocation loop of Section 3.3.

use damocles_meta::{EventMessage, MetaDb, MetaError, Oid, OidId, Workspace};

use crate::engine::audit::AuditLog;
use crate::engine::template;
use crate::lang::ast::Blueprint;

/// A fully interpolated `exec`/`notify` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptInvocation {
    /// Script (wrapper program) name.
    pub script: String,
    /// Arguments after `$` interpolation.
    pub args: Vec<String>,
    /// True when this came from a `notify` action.
    pub notify: bool,
    /// The OID whose rule fired, as `block,view,version`.
    pub origin: String,
    /// The event that fired the rule.
    pub event: String,
}

/// What a wrapper program may do to the project while it runs.
///
/// This is the in-process equivalent of the paper's wrapper-to-server
/// protocol: queries against the meta-database, creation of new design
/// objects (template rules apply immediately, as "the BluePrint is informed
/// of a new OID being created"), and link instantiation.
pub struct ToolCtx<'a> {
    /// The meta-database.
    pub db: &'a mut MetaDb,
    /// The workspace holding design-data payloads.
    pub workspace: &'a mut Workspace,
    /// The active blueprint (for template application).
    pub blueprint: &'a Blueprint,
    /// The audit log.
    pub audit: &'a mut AuditLog,
}

impl ToolCtx<'_> {
    /// Creates the next version of `(block, view)` with `payload`, applying
    /// template rules to the new OID.
    ///
    /// # Errors
    ///
    /// Propagates database errors.
    pub fn create_versioned(
        &mut self,
        block: &str,
        view: &str,
        user: &str,
        payload: Vec<u8>,
    ) -> Result<(OidId, Oid), MetaError> {
        let (id, oid) = self
            .workspace
            .checkin(self.db, block, view, user, payload)?;
        template::apply_on_create(self.blueprint, self.db, id, self.audit)?;
        // Tool-created design data must survive recovery exactly like a
        // designer's check-in: journal the payload alongside the creation
        // ops (a no-op when the database has no journal attached).
        // Without this, a recovered project has the OID but an empty
        // workspace datum, and re-dispatched invocations that re-read the
        // payload (LVS, simulation) would compute on missing data.
        if let Some(datum) = self.workspace.datum(id) {
            self.db
                .record_extra(damocles_meta::journal::JournalOp::Data {
                    oid: oid.clone(),
                    payload: datum.content.clone(),
                });
        }
        Ok((id, oid))
    }

    /// Relates two existing OIDs, attaching the template's PROPAGATE/TYPE.
    ///
    /// # Errors
    ///
    /// Propagates database errors.
    pub fn connect(&mut self, from: OidId, to: OidId) -> Result<damocles_meta::LinkId, MetaError> {
        template::instantiate_link(self.blueprint, self.db, from, to)
    }

    /// The newest version of `(block, view)`, if any — the query a wrapper
    /// performs before running ("the wrapper makes sure that the input
    /// netlist is up to date", Section 3.3).
    pub fn latest(&self, block: &str, view: &str) -> Option<OidId> {
        self.db.latest_version(block, view)
    }

    /// Whether `prop` on the latest version of `(block, view)` is truthy —
    /// the permission predicate of Section 3.3.
    pub fn permitted(&self, block: &str, view: &str, prop: &str) -> bool {
        self.latest(block, view)
            .and_then(|id| self.db.get_prop(id, prop).ok().flatten())
            .is_some_and(damocles_meta::Value::is_truthy)
    }
}

/// A self-contained tool run detached from the command loop: everything it
/// needs from the database was captured when it was prepared, so a worker
/// thread can run (and re-run) it without any engine access. The argument
/// is the zero-based attempt number; an `Err` is a *retryable* failure the
/// invocation pool feeds back through its [`RetryPolicy`].
///
/// [`RetryPolicy`]: crate::engine::invoke::RetryPolicy
pub type DetachedJob = Box<dyn Fn(u32) -> Result<Vec<EventMessage>, String> + Send>;

/// What [`ScriptExecutor::prepare`] decided to do with an invocation.
pub enum PreparedRun {
    /// The invocation ran to completion on the command loop; these are its
    /// result messages (the classic synchronous path).
    Inline(Vec<EventMessage>),
    /// The invocation was captured as a detached job for the worker pool;
    /// its result messages arrive later through the event queue.
    Detached(DetachedJob),
}

impl std::fmt::Debug for PreparedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreparedRun::Inline(msgs) => f.debug_tuple("Inline").field(msgs).finish(),
            PreparedRun::Detached(_) => f.write_str("Detached(..)"),
        }
    }
}

/// Executes wrapper scripts on behalf of the project server.
pub trait ScriptExecutor {
    /// Runs one invocation, returning any event messages the wrapper posts.
    fn execute(
        &mut self,
        invocation: &ScriptInvocation,
        ctx: &mut ToolCtx<'_>,
    ) -> Vec<EventMessage>;

    /// Prepares one invocation: either run it inline (the default, which
    /// simply delegates to [`ScriptExecutor::execute`]) or capture it as a
    /// [`DetachedJob`] the server hands to its async invocation pool.
    /// Database reads happen *here*, on the command loop; a detached job
    /// must carry everything it needs by value.
    fn prepare(&mut self, invocation: &ScriptInvocation, ctx: &mut ToolCtx<'_>) -> PreparedRun {
        PreparedRun::Inline(self.execute(invocation, ctx))
    }
}

/// Discards every invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullExecutor;

impl ScriptExecutor for NullExecutor {
    fn execute(
        &mut self,
        _invocation: &ScriptInvocation,
        _ctx: &mut ToolCtx<'_>,
    ) -> Vec<EventMessage> {
        Vec::new()
    }
}

/// Records every invocation; test helper.
#[derive(Debug, Clone, Default)]
pub struct RecordingExecutor {
    invocations: Vec<ScriptInvocation>,
    replies: Vec<(String, Vec<EventMessage>)>,
}

impl RecordingExecutor {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers messages to return whenever `script` is invoked.
    pub fn reply_with(
        &mut self,
        script: impl Into<String>,
        messages: Vec<EventMessage>,
    ) -> &mut Self {
        self.replies.push((script.into(), messages));
        self
    }

    /// Everything recorded so far.
    pub fn invocations(&self) -> &[ScriptInvocation] {
        &self.invocations
    }

    /// Invocations of one script.
    pub fn invocations_of(&self, script: &str) -> Vec<&ScriptInvocation> {
        self.invocations
            .iter()
            .filter(|i| i.script == script)
            .collect()
    }

    /// Notification messages (rendered), in order.
    pub fn notifications(&self) -> Vec<String> {
        self.invocations
            .iter()
            .filter(|i| i.notify)
            .map(|i| i.args.join(" "))
            .collect()
    }
}

impl ScriptExecutor for RecordingExecutor {
    fn execute(
        &mut self,
        invocation: &ScriptInvocation,
        _ctx: &mut ToolCtx<'_>,
    ) -> Vec<EventMessage> {
        self.invocations.push(invocation.clone());
        self.replies
            .iter()
            .find(|(name, _)| *name == invocation.script)
            .map(|(_, msgs)| msgs.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;
    use damocles_meta::Value;

    fn invocation(script: &str) -> ScriptInvocation {
        ScriptInvocation {
            script: script.to_string(),
            args: vec!["cpu,schematic,1".into()],
            notify: false,
            origin: "cpu,schematic,1".into(),
            event: "ckin".into(),
        }
    }

    fn harness() -> (MetaDb, Workspace, Blueprint, AuditLog) {
        let bp = parse(
            "blueprint t view default property uptodate default true endview view schematic endview view netlist link_from schematic propagates outofdate type derived endview endblueprint",
        )
        .unwrap();
        (
            MetaDb::new(),
            Workspace::new("w"),
            bp,
            AuditLog::counters_only(),
        )
    }

    #[test]
    fn null_executor_returns_nothing() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let mut ex = NullExecutor;
        assert!(ex.execute(&invocation("netlister"), &mut ctx).is_empty());
    }

    #[test]
    fn recorder_keeps_invocations_and_replies() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let mut ex = RecordingExecutor::new();
        let msg: EventMessage = "postEvent nl_sim down cpu,netlist,1 \"good\""
            .parse()
            .unwrap();
        ex.reply_with("simulator", vec![msg.clone()]);
        assert!(ex.execute(&invocation("netlister"), &mut ctx).is_empty());
        assert_eq!(ex.execute(&invocation("simulator"), &mut ctx), vec![msg]);
        assert_eq!(ex.invocations().len(), 2);
        assert_eq!(ex.invocations_of("simulator").len(), 1);
    }

    #[test]
    fn tool_ctx_creates_versioned_objects_with_templates() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let (id, oid) = ctx
            .create_versioned("cpu", "netlist", "netlister", b"netlist-v1".to_vec())
            .unwrap();
        assert_eq!(oid.version, 1);
        // Default-view template property applied.
        assert_eq!(
            ctx.db.get_prop(id, "uptodate").unwrap(),
            Some(&Value::Bool(true))
        );
        assert!(ctx.workspace.datum(id).is_some());
    }

    #[test]
    fn tool_ctx_connect_uses_templates() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let (sch, _) = ctx
            .create_versioned("cpu", "schematic", "synth", b"s".to_vec())
            .unwrap();
        let (net, _) = ctx
            .create_versioned("cpu", "netlist", "netlister", b"n".to_vec())
            .unwrap();
        let link = ctx.connect(sch, net).unwrap();
        assert!(ctx.db.link(link).unwrap().allows("outofdate"));
    }

    #[test]
    fn permission_predicate() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        assert!(!ctx.permitted("cpu", "schematic", "uptodate"));
        let (id, _) = ctx
            .create_versioned("cpu", "schematic", "yves", b"s".to_vec())
            .unwrap();
        assert!(ctx.permitted("cpu", "schematic", "uptodate"));
        ctx.db.set_prop(id, "uptodate", Value::Bool(false)).unwrap();
        assert!(!ctx.permitted("cpu", "schematic", "uptodate"));
    }

    #[test]
    fn notifications_are_collected() {
        let (mut db, mut ws, bp, mut audit) = harness();
        let mut ctx = ToolCtx {
            db: &mut db,
            workspace: &mut ws,
            blueprint: &bp,
            audit: &mut audit,
        };
        let mut ex = RecordingExecutor::new();
        let mut inv = invocation("notify");
        inv.notify = true;
        inv.args = vec!["yves: Your oid cpu,schematic,1 has been modified".into()];
        ex.execute(&inv, &mut ctx);
        assert_eq!(ex.notifications().len(), 1);
        assert!(ex.notifications()[0].contains("has been modified"));
    }
}

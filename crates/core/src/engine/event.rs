//! Internal event representation used by the run-time engine.
//!
//! External `postEvent` messages ([`damocles_meta::EventMessage`]) are
//! resolved against the meta-database into [`QueuedEvent`]s before entering
//! the FIFO queue.

use damocles_meta::{Direction, EventMessage, MetaDb, MetaError, OidId};

/// How an event reaches the design graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The event is targeted at this OID: its rules execute, then the event
    /// propagates outwards (a wrapper's `postEvent` message).
    Target(OidId),
    /// The event was posted *from* this OID by a `post <event> <dir>` rule:
    /// it does not execute on the origin, only propagates outwards
    /// (Section 3.2, and required for `when ckin do uptodate = true; post
    /// outofdate down` not to clear its own flag).
    PropagateFrom(OidId),
}

impl Delivery {
    /// The OID anchoring the delivery.
    pub fn anchor(self) -> OidId {
        match self {
            Delivery::Target(id) | Delivery::PropagateFrom(id) => id,
        }
    }
}

/// An event waiting in (or travelling out of) the engine's FIFO queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedEvent {
    /// Event name.
    pub event: String,
    /// Up/down through the links.
    pub direction: Direction,
    /// Where and how it lands.
    pub delivery: Delivery,
    /// Arguments; the first is `$arg`.
    pub args: Vec<String>,
    /// The designer (or tool) on whose behalf the event was produced; the
    /// `$user` of run-time rules.
    pub user: String,
    /// Durable-queue sequence number, stamped by the server when the event
    /// was journaled as accepted work (`None` on a non-journaled server).
    pub seq: Option<u64>,
}

impl QueuedEvent {
    /// Creates a targeted event.
    pub fn target(
        event: impl Into<String>,
        direction: Direction,
        id: OidId,
        user: impl Into<String>,
    ) -> Self {
        QueuedEvent {
            event: event.into(),
            direction,
            delivery: Delivery::Target(id),
            args: Vec::new(),
            user: user.into(),
            seq: None,
        }
    }

    /// Adds an argument (builder style).
    pub fn with_arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// The `$arg` value.
    pub fn arg(&self) -> Option<&str> {
        self.args.first().map(String::as_str)
    }

    /// Resolves an external wire message against the database.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::UnknownOid`] if the message targets a triplet the
    /// database does not hold.
    pub fn from_message(
        db: &MetaDb,
        msg: &EventMessage,
        user: impl Into<String>,
    ) -> Result<Self, MetaError> {
        let id = db.require(&msg.target)?;
        Ok(QueuedEvent {
            event: msg.event.clone(),
            direction: msg.direction,
            delivery: Delivery::Target(id),
            args: msg.args.clone(),
            user: user.into(),
            seq: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damocles_meta::Oid;

    #[test]
    fn from_message_resolves_target() {
        let mut db = MetaDb::new();
        let id = db.create_oid(Oid::new("reg", "verilog", 4)).unwrap();
        let msg: EventMessage = r#"postEvent ckin up reg,verilog,4 "logic sim passed""#
            .parse()
            .unwrap();
        let ev = QueuedEvent::from_message(&db, &msg, "yves").unwrap();
        assert_eq!(ev.delivery, Delivery::Target(id));
        assert_eq!(ev.arg(), Some("logic sim passed"));
        assert_eq!(ev.user, "yves");
    }

    #[test]
    fn from_message_unknown_target_fails() {
        let db = MetaDb::new();
        let msg: EventMessage = "postEvent ckin up reg,verilog,4".parse().unwrap();
        assert!(matches!(
            QueuedEvent::from_message(&db, &msg, "yves"),
            Err(MetaError::UnknownOid { .. })
        ));
    }

    #[test]
    fn delivery_anchor() {
        let mut db = MetaDb::new();
        let id = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        assert_eq!(Delivery::Target(id).anchor(), id);
        assert_eq!(Delivery::PropagateFrom(id).anchor(), id);
    }

    #[test]
    fn builder_style() {
        let mut db = MetaDb::new();
        let id = db.create_oid(Oid::new("a", "v", 1)).unwrap();
        let ev = QueuedEvent::target("drc", Direction::Down, id, "tool").with_arg("ok");
        assert_eq!(ev.event, "drc");
        assert_eq!(ev.arg(), Some("ok"));
    }
}

//! Template-rule application: the configuration half of the BluePrint.
//!
//! "Template rules are used by the BluePrint to setup new OIDs and Links as
//! they are created by design activities. Each time the BluePrint is informed
//! of a new OID being created, it finds the corresponding view in the
//! BluePrint and attaches properties and Links to the new OID." — Section 3.2.
//!
//! Two entry points:
//!
//! * [`apply_on_create`] — a new OID appeared: attach template properties
//!   (default / `copy` / `move` from the previous version, Fig. 2) and shift
//!   or duplicate `move`/`copy` links from the previous version (Fig. 3).
//! * [`instantiate_link`] — a design activity relates two OIDs: find the
//!   matching link template and attach its PROPAGATE/TYPE annotation to the
//!   new link.

use damocles_meta::{LinkClass, LinkKind, MetaDb, MetaError, OidId, Value};

use crate::engine::audit::{AuditLog, AuditRecord};
use crate::lang::ast::{Blueprint, LinkDef, LinkSource, PropertyDef, Transfer, ViewDef};

/// What [`apply_on_create`] did, for tests and audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateReport {
    /// Properties attached to the new OID.
    pub props_attached: usize,
    /// Links shifted from the previous version (`move`).
    pub links_moved: usize,
    /// Links duplicated from the previous version (`copy`).
    pub links_copied: usize,
}

/// The property templates governing `view`, default-view entries first so
/// view-specific definitions win on name collision.
fn property_templates<'bp>(bp: &'bp Blueprint, view: &str) -> Vec<&'bp PropertyDef> {
    let mut by_name: Vec<&PropertyDef> = Vec::new();
    let mut push = |def: &'bp PropertyDef| {
        if let Some(slot) = by_name.iter_mut().find(|d| d.name == def.name) {
            *slot = def;
        } else {
            by_name.push(def);
        }
    };
    if let Some(default) = bp.default_view() {
        for p in &default.properties {
            push(p);
        }
    }
    if view != "default" {
        if let Some(v) = bp.view(view) {
            for p in &v.properties {
                push(p);
            }
        }
    }
    by_name
}

/// The use-link template governing `view` (view-specific wins over default).
fn use_link_template<'bp>(bp: &'bp Blueprint, view: &str) -> Option<&'bp LinkDef> {
    bp.view(view)
        .and_then(ViewDef::use_link)
        .or_else(|| bp.default_view().and_then(ViewDef::use_link))
}

/// The `link_from` template for a derive link `from_view -> to_view`.
fn derive_link_template<'bp>(
    bp: &'bp Blueprint,
    from_view: &str,
    to_view: &str,
) -> Option<&'bp LinkDef> {
    bp.view(to_view).and_then(|v| v.link_from(from_view))
}

/// Applies template rules to a freshly created OID.
///
/// Properties are attached per their transfer mode; links incident to the
/// previous version are shifted (`move`) or duplicated (`copy`) according to
/// the template that governs each link. Links with no governing template, or
/// whose template has no transfer keyword, stay on the old version.
///
/// # Errors
///
/// Propagates database errors (stale handles); an OID whose view the
/// blueprint does not mention gets default-view properties only.
pub fn apply_on_create(
    bp: &Blueprint,
    db: &mut MetaDb,
    id: OidId,
    audit: &mut AuditLog,
) -> Result<TemplateReport, MetaError> {
    let oid = db.oid(id)?.clone();
    let predecessor = db.predecessor(&oid);
    let mut report = TemplateReport::default();

    // --- properties (Fig. 2) ---
    for def in property_templates(bp, oid.view.as_str()) {
        let value = match (def.transfer, predecessor) {
            (Transfer::Copy, Some(prev)) => db
                .get_prop(prev, &def.name)?
                .cloned()
                .unwrap_or_else(|| Value::from_atom(&def.default)),
            (Transfer::Move, Some(prev)) => db
                .remove_prop(prev, &def.name)?
                .unwrap_or_else(|| Value::from_atom(&def.default)),
            _ => Value::from_atom(&def.default),
        };
        let old = db.set_prop(id, &def.name, value.clone())?;
        audit.push(AuditRecord::Assigned {
            oid: oid.clone(),
            prop: def.name.clone(),
            old,
            new: value,
        });
        report.props_attached += 1;
    }

    // --- links (Fig. 3) ---
    if let Some(prev) = predecessor {
        let incident: Vec<_> = db
            .links_of(prev)?
            .into_iter()
            .map(|(lid, link)| (lid, link.clone()))
            .collect();
        for (link_id, link) in incident {
            let template = match link.class {
                LinkClass::Use => use_link_template(bp, oid.view.as_str()),
                LinkClass::Derive => {
                    let from_view = db.oid(link.from)?.view.to_string();
                    let to_view = db.oid(link.to)?.view.to_string();
                    derive_link_template(bp, &from_view, &to_view)
                }
            };
            match template.map(|t| t.transfer) {
                Some(Transfer::Move) => {
                    db.move_link_end(link_id, prev, id)?;
                    report.links_moved += 1;
                }
                Some(Transfer::Copy) => {
                    db.copy_link_to(link_id, prev, id)?;
                    report.links_copied += 1;
                }
                _ => {}
            }
        }
    }

    audit.push(AuditRecord::TemplateApplied {
        oid,
        props_attached: report.props_attached,
        links_moved: report.links_moved,
        links_copied: report.links_copied,
    });
    Ok(report)
}

/// Creates a link between two existing OIDs, attaching the template's
/// PROPAGATE set and TYPE.
///
/// Resolution order:
///
/// 1. same view on both ends → the view's `use_link` template (hierarchy);
/// 2. `to`'s view declares `link_from <from's view>` → that derive template;
/// 3. `from`'s view declares `link_from <to's view>` → the caller passed the
///    ends backwards; the link is created in template orientation
///    (`to → from`);
/// 4. no template → a bare derive link with an empty PROPAGATE set (the
///    non-obstructive default: the relation is recorded but carries nothing).
///
/// # Errors
///
/// Propagates database errors (stale handles, self-links).
pub fn instantiate_link(
    bp: &Blueprint,
    db: &mut MetaDb,
    from: OidId,
    to: OidId,
) -> Result<damocles_meta::LinkId, MetaError> {
    let from_view = db.oid(from)?.view.to_string();
    let to_view = db.oid(to)?.view.to_string();

    if from_view == to_view {
        let template = use_link_template(bp, &from_view);
        let propagates = template.map(|t| t.propagates.clone()).unwrap_or_default();
        return db.add_link_with(from, to, LinkClass::Use, LinkKind::Composition, propagates);
    }

    if let Some(template) = derive_link_template(bp, &from_view, &to_view) {
        let kind = kind_of(template);
        return db.add_link_with(
            from,
            to,
            LinkClass::Derive,
            kind,
            template.propagates.clone(),
        );
    }

    if let Some(template) = derive_link_template(bp, &to_view, &from_view) {
        let kind = kind_of(template);
        return db.add_link_with(
            to,
            from,
            LinkClass::Derive,
            kind,
            template.propagates.clone(),
        );
    }

    db.add_link(from, to, LinkClass::Derive, LinkKind::DeriveFrom)
}

fn kind_of(template: &LinkDef) -> LinkKind {
    template
        .kind
        .as_deref()
        .map(|k| k.parse().expect("LinkKind::from_str is infallible"))
        .unwrap_or(LinkKind::DeriveFrom)
}

/// Whether `template` matches a `link_from` declaration (used by tests).
pub fn is_link_from(template: &LinkDef, view: &str) -> bool {
    matches!(&template.source, LinkSource::View(v) if v == view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;
    use damocles_meta::{Direction, Oid};

    fn fig2_blueprint() -> Blueprint {
        parse("blueprint f2 view GDSII property DRC default bad copy endview endblueprint").unwrap()
    }

    #[test]
    fn fig2_property_copy_across_versions() {
        // Fig. 2: <alu,GDSII,5> has DRC=ok; creating version 6 copies it.
        let bp = fig2_blueprint();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let v5 = db.create_oid(Oid::new("alu", "GDSII", 5)).unwrap();
        apply_on_create(&bp, &mut db, v5, &mut audit).unwrap();
        // First version gets the default...
        assert_eq!(db.get_prop(v5, "DRC").unwrap().unwrap().as_atom(), "bad");
        // ...designer later validates it.
        db.set_prop(v5, "DRC", Value::from_atom("ok")).unwrap();

        let v6 = db.create_oid(Oid::new("alu", "GDSII", 6)).unwrap();
        let report = apply_on_create(&bp, &mut db, v6, &mut audit).unwrap();
        assert_eq!(report.props_attached, 1);
        assert_eq!(db.get_prop(v6, "DRC").unwrap().unwrap().as_atom(), "ok");
        // copy leaves the old version annotated.
        assert_eq!(db.get_prop(v5, "DRC").unwrap().unwrap().as_atom(), "ok");
    }

    #[test]
    fn move_property_strips_the_old_version() {
        let bp = parse("blueprint t view V property tag default none move endview endblueprint")
            .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let v1 = db.create_oid(Oid::new("b", "V", 1)).unwrap();
        apply_on_create(&bp, &mut db, v1, &mut audit).unwrap();
        db.set_prop(v1, "tag", Value::from_atom("golden")).unwrap();
        let v2 = db.create_oid(Oid::new("b", "V", 2)).unwrap();
        apply_on_create(&bp, &mut db, v2, &mut audit).unwrap();
        assert_eq!(db.get_prop(v2, "tag").unwrap().unwrap().as_atom(), "golden");
        assert_eq!(db.get_prop(v1, "tag").unwrap(), None);
    }

    #[test]
    fn create_transfer_resets_to_default() {
        let bp = parse("blueprint t view V property uptodate default true endview endblueprint")
            .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let v1 = db.create_oid(Oid::new("b", "V", 1)).unwrap();
        apply_on_create(&bp, &mut db, v1, &mut audit).unwrap();
        db.set_prop(v1, "uptodate", Value::Bool(false)).unwrap();
        let v2 = db.create_oid(Oid::new("b", "V", 2)).unwrap();
        apply_on_create(&bp, &mut db, v2, &mut audit).unwrap();
        assert_eq!(
            db.get_prop(v2, "uptodate").unwrap(),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn default_view_properties_apply_to_all_views() {
        let bp = parse(
            "blueprint t view default property uptodate default true endview view V property x default y endview endblueprint",
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let id = db.create_oid(Oid::new("b", "V", 1)).unwrap();
        let report = apply_on_create(&bp, &mut db, id, &mut audit).unwrap();
        assert_eq!(report.props_attached, 2);
        assert_eq!(
            db.get_prop(id, "uptodate").unwrap(),
            Some(&Value::Bool(true))
        );
        assert_eq!(db.get_prop(id, "x").unwrap().unwrap().as_atom(), "y");
        // Unknown views still get the default-view properties.
        let ghost = db.create_oid(Oid::new("b", "Ghost", 1)).unwrap();
        let report = apply_on_create(&bp, &mut db, ghost, &mut audit).unwrap();
        assert_eq!(report.props_attached, 1);
    }

    #[test]
    fn view_specific_property_overrides_default_view() {
        let bp = parse(
            "blueprint t view default property p default one endview view V property p default two endview endblueprint",
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let id = db.create_oid(Oid::new("b", "V", 1)).unwrap();
        let report = apply_on_create(&bp, &mut db, id, &mut audit).unwrap();
        assert_eq!(report.props_attached, 1, "one property, view def wins");
        assert_eq!(db.get_prop(id, "p").unwrap().unwrap().as_atom(), "two");
    }

    #[test]
    fn fig3_derive_link_moves_to_new_version() {
        // Fig. 3: NetList.8 -> GDSII.5 shifts to NetList.8 -> GDSII.6.
        let bp = parse(
            "blueprint f3 view NetList endview view GDSII link_from NetList propagates OutOfDate type derive_from move endview endblueprint",
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let nl = db.create_oid(Oid::new("alu", "NetList", 8)).unwrap();
        let g5 = db.create_oid(Oid::new("alu", "GDSII", 5)).unwrap();
        let link = instantiate_link(&bp, &mut db, nl, g5).unwrap();
        assert!(db.link(link).unwrap().allows("OutOfDate"));

        let g6 = db.create_oid(Oid::new("alu", "GDSII", 6)).unwrap();
        let report = apply_on_create(&bp, &mut db, g6, &mut audit).unwrap();
        assert_eq!(report.links_moved, 1);
        let l = db.link(link).unwrap();
        assert_eq!(l.from, nl);
        assert_eq!(l.to, g6);
        assert!(db.entry(g5).unwrap().link_ids().is_empty());
    }

    #[test]
    fn move_applies_when_source_end_versions_too() {
        // The §3.4 walkthrough: hdl.2 -> sch.1; creating hdl.3 must shift the
        // link so later outofdate posts from hdl.3 reach the schematic.
        let bp = parse(
            "blueprint t view HDL_model endview view schematic link_from HDL_model move propagates outofdate type derived endview endblueprint",
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let h2 = db.create_oid(Oid::new("cpu", "HDL_model", 2)).unwrap();
        let s1 = db.create_oid(Oid::new("cpu", "schematic", 1)).unwrap();
        let link = instantiate_link(&bp, &mut db, h2, s1).unwrap();
        let h3 = db.create_oid(Oid::new("cpu", "HDL_model", 3)).unwrap();
        let report = apply_on_create(&bp, &mut db, h3, &mut audit).unwrap();
        assert_eq!(report.links_moved, 1);
        let l = db.link(link).unwrap();
        assert_eq!(l.from, h3);
        assert_eq!(l.to, s1);
    }

    #[test]
    fn use_link_shift_matches_the_papers_example() {
        // "if a new OID <REG.schematic.2> were created, the use link between
        // <CPU.schematic.1> and <REG.schematic.1> would be shifted to link
        // <CPU.schematic.1> to <REG.schematic.2>."
        let bp = parse(
            "blueprint t view schematic use_link move propagates outofdate endview endblueprint",
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let cpu = db.create_oid(Oid::new("CPU", "schematic", 1)).unwrap();
        let reg1 = db.create_oid(Oid::new("REG", "schematic", 1)).unwrap();
        let link = instantiate_link(&bp, &mut db, cpu, reg1).unwrap();
        assert_eq!(db.link(link).unwrap().class, LinkClass::Use);

        let reg2 = db.create_oid(Oid::new("REG", "schematic", 2)).unwrap();
        apply_on_create(&bp, &mut db, reg2, &mut audit).unwrap();
        let l = db.link(link).unwrap();
        assert_eq!(l.from, cpu);
        assert_eq!(l.to, reg2);
    }

    #[test]
    fn copy_link_keeps_both_versions_linked() {
        let bp = parse(
            "blueprint t view A endview view B link_from A copy propagates e type derived endview endblueprint",
        )
        .unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let a = db.create_oid(Oid::new("x", "A", 1)).unwrap();
        let b1 = db.create_oid(Oid::new("x", "B", 1)).unwrap();
        instantiate_link(&bp, &mut db, a, b1).unwrap();
        let b2 = db.create_oid(Oid::new("x", "B", 2)).unwrap();
        let report = apply_on_create(&bp, &mut db, b2, &mut audit).unwrap();
        assert_eq!(report.links_copied, 1);
        assert_eq!(
            db.neighbors(a, Direction::Down, Some("e")).unwrap().len(),
            2
        );
    }

    #[test]
    fn untemplated_link_stays_on_old_version() {
        let bp = parse("blueprint t view A endview view B endview endblueprint").unwrap();
        let mut db = MetaDb::new();
        let mut audit = AuditLog::counters_only();
        let a = db.create_oid(Oid::new("x", "A", 1)).unwrap();
        let b1 = db.create_oid(Oid::new("x", "B", 1)).unwrap();
        let link = instantiate_link(&bp, &mut db, a, b1).unwrap();
        let b2 = db.create_oid(Oid::new("x", "B", 2)).unwrap();
        let report = apply_on_create(&bp, &mut db, b2, &mut audit).unwrap();
        assert_eq!(report.links_moved + report.links_copied, 0);
        assert_eq!(db.link(link).unwrap().to, b1);
    }

    #[test]
    fn instantiate_link_reverses_backwards_calls() {
        let bp = parse(
            "blueprint t view A endview view B link_from A propagates e type derived endview endblueprint",
        )
        .unwrap();
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("x", "A", 1)).unwrap();
        let b = db.create_oid(Oid::new("x", "B", 1)).unwrap();
        // Caller says (b, a) but the template orientation is A -> B.
        let link = instantiate_link(&bp, &mut db, b, a).unwrap();
        let l = db.link(link).unwrap();
        assert_eq!(l.from, a);
        assert_eq!(l.to, b);
        assert!(l.allows("e"));
    }

    #[test]
    fn instantiate_link_kind_mapping() {
        let bp = parse(
            "blueprint t view A endview view B link_from A propagates e type equivalence endview endblueprint",
        )
        .unwrap();
        let mut db = MetaDb::new();
        let a = db.create_oid(Oid::new("x", "A", 1)).unwrap();
        let b = db.create_oid(Oid::new("x", "B", 1)).unwrap();
        let link = instantiate_link(&bp, &mut db, a, b).unwrap();
        assert_eq!(db.link(link).unwrap().kind, LinkKind::Equivalence);
    }
}

//! Audit trail of everything the run-time engine does.
//!
//! DAMOCLES is an *observer*: its value is the record it keeps. The audit log
//! doubles as the measurement instrument for the reproduction experiments —
//! every bench in `crates/bench` reads propagation work out of
//! [`AuditSummary`].

use damocles_meta::{Direction, Oid, Value};

/// One recorded engine action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditRecord {
    /// An event was delivered to an OID and its rules executed.
    Delivered {
        /// Receiving object.
        oid: Oid,
        /// Event name.
        event: String,
    },
    /// A property changed value through a rule or template.
    Assigned {
        /// Object whose property changed.
        oid: Oid,
        /// Property name.
        prop: String,
        /// Previous value, if any.
        old: Option<Value>,
        /// New value.
        new: Value,
    },
    /// A continuous assignment was re-evaluated.
    Reevaluated {
        /// Object owning the `let`.
        oid: Oid,
        /// Derived property name.
        name: String,
        /// Result value.
        value: Value,
    },
    /// A script / tool wrapper was invoked through an `exec` or `notify`.
    ScriptInvoked {
        /// Script name after interpolation.
        script: String,
        /// Arguments after interpolation.
        args: Vec<String>,
        /// True for `notify` actions.
        notify: bool,
    },
    /// A rule posted a new event.
    EventPosted {
        /// Origin object.
        from: Oid,
        /// Event name.
        event: String,
        /// Direction it travels.
        direction: Direction,
        /// `post … to <view>` target, if any.
        to_view: Option<String>,
    },
    /// An event crossed a link to another OID.
    Propagated {
        /// Sender end.
        from: Oid,
        /// Receiver end.
        to: Oid,
        /// Event name.
        event: String,
    },
    /// A delivery was skipped because the (OID, event) pair was already
    /// visited in this wave (cycle guard).
    CycleSkipped {
        /// The object that would have received the event again.
        oid: Oid,
        /// Event name.
        event: String,
    },
    /// A post cascade exceeded the policy depth limit and was truncated.
    DepthTruncated {
        /// Event that was dropped.
        event: String,
    },
    /// Template rules ran for a freshly created OID.
    TemplateApplied {
        /// The new object.
        oid: Oid,
        /// Properties attached.
        props_attached: usize,
        /// Links moved from the previous version.
        links_moved: usize,
        /// Links copied from the previous version.
        links_copied: usize,
    },
    /// An event targeted a view with no rules anywhere (strict policies may
    /// reject this instead).
    UnmatchedEvent {
        /// Receiving object.
        oid: Oid,
        /// Event name.
        event: String,
    },
}

/// The discriminant of an [`AuditRecord`], used by the run-time engine's
/// allocation-free counting path: when record retention is off, the engine
/// reports [`AuditLog::note`] with a kind instead of building a full record
/// (which would clone the OID and event name per delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// See [`AuditRecord::Delivered`].
    Delivered,
    /// See [`AuditRecord::Assigned`].
    Assigned,
    /// See [`AuditRecord::Reevaluated`].
    Reevaluated,
    /// See [`AuditRecord::ScriptInvoked`].
    ScriptInvoked,
    /// See [`AuditRecord::EventPosted`].
    EventPosted,
    /// See [`AuditRecord::Propagated`].
    Propagated,
    /// See [`AuditRecord::CycleSkipped`].
    CycleSkipped,
    /// See [`AuditRecord::DepthTruncated`].
    DepthTruncated,
    /// See [`AuditRecord::TemplateApplied`].
    TemplateApplied,
    /// See [`AuditRecord::UnmatchedEvent`].
    UnmatchedEvent,
    /// A detached tool invocation attempt failed and was pushed back for
    /// a retry (note-only: retries happen on pool workers, where building
    /// a record would mean cloning the script name per failure).
    InvokeRetried,
    /// A detached tool invocation attempt exceeded its wall-clock budget
    /// (note-only; every timeout also counts as a retry or an
    /// exhaustion).
    InvokeTimedOut,
    /// A detached tool invocation exhausted its whole retry budget and
    /// failed for good (note-only; the failure itself also lands in-band
    /// as a `tool_failed` event).
    InvokeExhausted,
}

impl AuditRecord {
    /// This record's counting discriminant.
    pub fn kind(&self) -> AuditKind {
        match self {
            AuditRecord::Delivered { .. } => AuditKind::Delivered,
            AuditRecord::Assigned { .. } => AuditKind::Assigned,
            AuditRecord::Reevaluated { .. } => AuditKind::Reevaluated,
            AuditRecord::ScriptInvoked { .. } => AuditKind::ScriptInvoked,
            AuditRecord::EventPosted { .. } => AuditKind::EventPosted,
            AuditRecord::Propagated { .. } => AuditKind::Propagated,
            AuditRecord::CycleSkipped { .. } => AuditKind::CycleSkipped,
            AuditRecord::DepthTruncated { .. } => AuditKind::DepthTruncated,
            AuditRecord::TemplateApplied { .. } => AuditKind::TemplateApplied,
            AuditRecord::UnmatchedEvent { .. } => AuditKind::UnmatchedEvent,
        }
    }
}

/// Aggregate counters over an [`AuditLog`].
///
/// Summaries are additive: merging per-worker wave buffers sums them (see
/// [`AuditLog::absorb`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditSummary {
    /// Rule-executing deliveries.
    pub deliveries: u64,
    /// Property writes.
    pub assignments: u64,
    /// Continuous-assignment evaluations.
    pub reevaluations: u64,
    /// Script invocations (exec + notify).
    pub scripts: u64,
    /// Events posted by rules.
    pub posts: u64,
    /// Link crossings.
    pub propagations: u64,
    /// Cycle-guard skips.
    pub cycle_skips: u64,
    /// Depth truncations.
    pub depth_truncations: u64,
    /// Template applications.
    pub templates: u64,
    /// Detached invocation attempts retried after a failure.
    pub invoke_retries: u64,
    /// Detached invocation attempts that exceeded their wall-clock
    /// budget.
    pub invoke_timeouts: u64,
    /// Detached invocations that exhausted their whole retry budget.
    pub invoke_exhaustions: u64,
}

impl AuditSummary {
    /// Adds another summary's counters into this one.
    pub fn add(&mut self, other: &AuditSummary) {
        self.deliveries += other.deliveries;
        self.assignments += other.assignments;
        self.reevaluations += other.reevaluations;
        self.scripts += other.scripts;
        self.posts += other.posts;
        self.propagations += other.propagations;
        self.cycle_skips += other.cycle_skips;
        self.depth_truncations += other.depth_truncations;
        self.templates += other.templates;
        self.invoke_retries += other.invoke_retries;
        self.invoke_timeouts += other.invoke_timeouts;
        self.invoke_exhaustions += other.invoke_exhaustions;
    }
}

/// An append-only audit log with optional record retention.
///
/// With retention off (the default for benches) only the counters are kept,
/// so measurement does not pay allocation costs per record.
#[derive(Debug, Default)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
    retain: bool,
    summary: AuditSummary,
}

impl AuditLog {
    /// A log that keeps counters only.
    pub fn counters_only() -> Self {
        AuditLog::default()
    }

    /// A log that also retains every record.
    pub fn retaining() -> Self {
        AuditLog {
            retain: true,
            ..Default::default()
        }
    }

    /// Whether full records are retained.
    pub fn is_retaining(&self) -> bool {
        self.retain
    }

    /// Whether callers should build full [`AuditRecord`]s at all — an alias
    /// of [`AuditLog::is_retaining`] named for the hot path's question. When
    /// this is `false` the engine reports [`AuditLog::note`] instead,
    /// skipping every per-record OID/string clone; counters stay exact
    /// either way.
    pub fn enabled(&self) -> bool {
        self.is_retaining()
    }

    /// Counts an action without materializing its record — the
    /// allocation-free path used when retention is off.
    pub fn note(&mut self, kind: AuditKind) {
        match kind {
            AuditKind::Delivered => self.summary.deliveries += 1,
            AuditKind::Assigned => self.summary.assignments += 1,
            AuditKind::Reevaluated => self.summary.reevaluations += 1,
            AuditKind::ScriptInvoked => self.summary.scripts += 1,
            AuditKind::EventPosted => self.summary.posts += 1,
            AuditKind::Propagated => self.summary.propagations += 1,
            AuditKind::CycleSkipped => self.summary.cycle_skips += 1,
            AuditKind::DepthTruncated => self.summary.depth_truncations += 1,
            AuditKind::TemplateApplied => self.summary.templates += 1,
            AuditKind::UnmatchedEvent => {}
            AuditKind::InvokeRetried => self.summary.invoke_retries += 1,
            AuditKind::InvokeTimedOut => self.summary.invoke_timeouts += 1,
            AuditKind::InvokeExhausted => self.summary.invoke_exhaustions += 1,
        }
    }

    /// Appends a record, updating counters.
    pub fn push(&mut self, record: AuditRecord) {
        self.note(record.kind());
        if self.retain {
            self.records.push(record);
        }
    }

    /// The counters.
    pub fn summary(&self) -> AuditSummary {
        self.summary
    }

    /// Retained records (empty unless [`AuditLog::retaining`]).
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Clears records and counters.
    pub fn reset(&mut self) {
        self.records.clear();
        self.summary = AuditSummary::default();
    }

    /// A fresh, empty buffer with this log's retention setting — what each
    /// wave worker records into during a sharded batch. Buffers come back
    /// through [`AuditLog::absorb`] in the deterministic post-wave merge
    /// order (ascending batch event index; within one event, wave order),
    /// so the merged log is byte-identical to sequential execution's.
    pub fn buffer(&self) -> AuditLog {
        AuditLog {
            records: Vec::new(),
            retain: self.retain,
            summary: AuditSummary::default(),
        }
    }

    /// Merges a worker buffer into this log: counters are summed and
    /// retained records appended in the buffer's order.
    pub fn absorb(&mut self, mut buffer: AuditLog) {
        self.summary.add(&buffer.summary);
        if self.retain {
            self.records.append(&mut buffer.records);
        }
    }

    /// Retained records matching a predicate.
    pub fn filtered<'a>(
        &'a self,
        pred: impl Fn(&AuditRecord) -> bool + 'a,
    ) -> impl Iterator<Item = &'a AuditRecord> + 'a {
        self.records.iter().filter(move |r| pred(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid() -> Oid {
        Oid::new("cpu", "schematic", 1)
    }

    #[test]
    fn counters_without_retention() {
        let mut log = AuditLog::counters_only();
        log.push(AuditRecord::Delivered {
            oid: oid(),
            event: "ckin".into(),
        });
        log.push(AuditRecord::Propagated {
            from: oid(),
            to: Oid::new("reg", "schematic", 1),
            event: "outofdate".into(),
        });
        assert_eq!(log.summary().deliveries, 1);
        assert_eq!(log.summary().propagations, 1);
        assert!(log.records().is_empty());
    }

    #[test]
    fn retention_keeps_records_in_order() {
        let mut log = AuditLog::retaining();
        log.push(AuditRecord::Delivered {
            oid: oid(),
            event: "ckin".into(),
        });
        log.push(AuditRecord::Assigned {
            oid: oid(),
            prop: "uptodate".into(),
            old: Some(Value::Bool(false)),
            new: Value::Bool(true),
        });
        assert_eq!(log.records().len(), 2);
        assert!(matches!(log.records()[0], AuditRecord::Delivered { .. }));
        assert_eq!(log.summary().assignments, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut log = AuditLog::retaining();
        log.push(AuditRecord::DepthTruncated {
            event: "spin".into(),
        });
        log.reset();
        assert_eq!(log.summary(), AuditSummary::default());
        assert!(log.records().is_empty());
    }

    #[test]
    fn invocation_fault_notes_count_without_retention() {
        let mut log = AuditLog::counters_only();
        log.note(AuditKind::InvokeRetried);
        log.note(AuditKind::InvokeRetried);
        log.note(AuditKind::InvokeTimedOut);
        log.note(AuditKind::InvokeExhausted);
        assert_eq!(log.summary().invoke_retries, 2);
        assert_eq!(log.summary().invoke_timeouts, 1);
        assert_eq!(log.summary().invoke_exhaustions, 1);
        assert!(log.records().is_empty());

        let mut main = AuditLog::counters_only();
        main.absorb(log);
        assert_eq!(main.summary().invoke_retries, 2);
    }

    #[test]
    fn filtered_selects_by_kind() {
        let mut log = AuditLog::retaining();
        log.push(AuditRecord::Delivered {
            oid: oid(),
            event: "a".into(),
        });
        log.push(AuditRecord::ScriptInvoked {
            script: "netlister".into(),
            args: vec!["cpu,schematic,1".into()],
            notify: false,
        });
        let scripts: Vec<_> = log
            .filtered(|r| matches!(r, AuditRecord::ScriptInvoked { .. }))
            .collect();
        assert_eq!(scripts.len(), 1);
    }
}
